"""The cascading interpreter harness: engines, meta-dispatch, REPL."""

import io

import pytest

from repro.errors import AnnotationError
from repro.runtime.failure import FAIL
from repro.harness.engine import PythonEngine
from repro.harness.meta import MetaInterpreter
from repro.harness.repl import Repl, render


class TestPythonEngine:
    def test_expression_evaluates(self):
        engine = PythonEngine()
        assert engine.execute("1 + 2") == 3

    def test_statements_execute(self):
        engine = PythonEngine()
        assert engine.execute("x = 5") is None
        assert engine.namespace["x"] == 5

    def test_namespace_persists(self):
        engine = PythonEngine()
        engine.execute("a = 1")
        assert engine.execute("a + 1") == 2


class TestMetaInterpreter:
    def test_default_junicon(self):
        meta = MetaInterpreter()
        assert meta.execute("2 + 3") == 5

    def test_declarations_persist(self):
        meta = MetaInterpreter()
        meta.execute("def sq(x) { return x * x; }")
        assert meta.execute("sq(6)") == 36

    def test_python_region_dispatch(self):
        meta = MetaInterpreter()
        meta.execute('@<script lang="python">host = 21@</script>')
        assert meta.execute("host * 2") == 42

    def test_junicon_sees_python_definitions_and_back(self):
        meta = MetaInterpreter()
        meta.execute('@<script lang="python">\ndef triple(x):\n    return 3 * x\n@</script>')
        meta.execute("def nine(x) { return triple(triple(x)); }")
        assert meta.execute("nine(1)") == 9
        # and python sees the junicon method
        assert meta.execute(
            '@<script lang="python">nine(2).first()@</script>'
        ) == 18

    def test_mixed_input_interleaves(self):
        meta = MetaInterpreter()
        result = meta.execute(
            'a := 1\n@<script lang="python">b = 2@</script>\na + b'
        )
        assert result == 3

    def test_python_default_language(self):
        meta = MetaInterpreter(default_lang="python")
        assert meta.execute("40 + 2") == 42

    def test_unknown_default_rejected(self):
        with pytest.raises(AnnotationError):
            MetaInterpreter(default_lang="cobol")

    def test_execute_file(self, tmp_path):
        path = tmp_path / "prog.py.jun"
        path.write_text(
            '@<script lang="junicon">\n'
            "def halve(x) { return x / 2; }\n"
            "@</script>\n"
            "result = halve(10).first()\n"
        )
        meta = MetaInterpreter()
        meta.execute_file(str(path))
        assert meta.namespace["result"] == 5


class TestRender:
    def test_failure(self):
        assert render(FAIL) == "«failure»"

    def test_null(self):
        assert render(None) == "&null"

    def test_string_image(self):
        assert render("hi") == '"hi"'

    def test_number(self):
        assert render(5) == "5"


class TestRepl:
    def _run(self, text):
        repl = Repl()
        stdout = io.StringIO()
        repl.run(io.StringIO(text), stdout)
        return stdout.getvalue()

    def test_evaluates_expression(self):
        out = self._run("6 * 7\n:quit\n")
        assert "42" in out

    def test_multiline_definition(self):
        out = self._run("def d(x) {\n  return 2 * x;\n}\nd(4)\n:quit\n")
        assert "8" in out

    def test_failure_rendering(self):
        out = self._run("1 < 0\n:quit\n")
        assert "«failure»" in out

    def test_error_reported_not_fatal(self):
        out = self._run("1 +\n+ 1\n2 + 2\n:quit\n")
        assert "4" in out

    def test_python_directive(self):
        out = self._run(":python 1 + 1\n:quit\n")
        assert "2" in out

    def test_unknown_directive(self):
        out = self._run(":wat\n:quit\n")
        assert "unknown directive" in out

    def test_help(self):
        out = self._run(":help\n:quit\n")
        assert "directives" in out.lower() or "translate" in out

    def test_eof_exits(self):
        out = self._run("1\n")
        assert "1" in out

    def test_load_directive(self, tmp_path):
        path = tmp_path / "lib.jun.py"
        path.write_text(
            '@<script lang="junicon">\ndef nine() { return 9; }\n@</script>\n'
        )
        repl = Repl()
        stdout = io.StringIO()
        repl.run(io.StringIO(f":load {path}\nnine()\n:quit\n"), stdout)
        assert "9" in stdout.getvalue()

    def test_translate_directive(self, tmp_path):
        path = tmp_path / "t.py"
        path.write_text('@<script lang="junicon">\ndef t() { return 1; }\n@</script>\n')
        repl = Repl()
        stdout = io.StringIO()
        repl.run(io.StringIO(f":translate {path}\n:quit\n"), stdout)
        assert "IconMethodBody" in stdout.getvalue()
