"""The event-loop server: one loop, many sessions, same wire contract.

:class:`AsyncGeneratorServer` speaks the exact protocol of the threaded
:class:`GeneratorServer` — every test here drives it with the
*unmodified* sync client stack (RemotePipe, source_pipe
``backend="remote"``, ServerPool, HealthProber), so passing means
nothing on the wire reveals which substrate answered.  On top of the
parity suite this file pins the eager-drain rule: a health probe's
death verdict wakes the in-flight watchdogs *now*, so failover latency
is bounded by a poll slice, not a heartbeat timeout.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.coexpr.patterns import source_pipe
from repro.coexpr.scheduler import PipeScheduler, default_scheduler
from repro.coexpr.supervision import NO_BACKOFF, supervise
from repro.coexpr.wire import _HEADER, WIRE_CALL, WIRE_CREDIT, SocketFramer
from repro.errors import (
    PipeConnectionLost,
    PipeError,
    PipeServerBusy,
)
from repro.monitor import EventKind, Tracer
from repro.net import (
    AsyncGeneratorServer,
    GeneratorServer,
    RemotePipe,
    ServerPool,
    probe_address,
)
from repro.runtime.failure import FAIL


def counter(n):
    return iter(range(n))


def ticker(delay=0.02):
    i = 0
    while True:
        yield i
        i += 1
        time.sleep(delay)


def crasher(n):
    yield from range(n)
    raise ValueError("factory crashed")


@pytest.fixture
def server():
    srv = AsyncGeneratorServer()
    srv.register("counter", counter)
    srv.register("ticker", ticker)
    srv.register("crasher", crasher)
    with srv:
        yield srv


def wait_active(server, count, timeout=5.0):
    limit = time.monotonic() + timeout
    while server.stats["active"] != count and time.monotonic() < limit:
        time.sleep(0.01)
    return server.stats["active"]


class TestLifecycle:
    def test_ephemeral_port_resolved_on_start(self, server):
        host, port = server.address
        assert host == "127.0.0.1"
        assert port != 0

    def test_start_is_idempotent(self, server):
        assert server.start() is server

    def test_start_after_shutdown_rejected(self):
        srv = AsyncGeneratorServer().start()
        srv.shutdown()
        with pytest.raises(PipeError, match="shut-down"):
            srv.start()

    def test_shutdown_is_idempotent(self, server):
        server.shutdown()
        server.shutdown()

    def test_repr_names_the_substrate(self, server):
        assert "AsyncGeneratorServer" in repr(server)


class TestSyncClientInterop:
    """The unmodified sync client, end to end over loopback TCP."""

    def test_remote_pipe_drains_factory(self, server):
        pipe = RemotePipe(server.address, "counter", args=(10,))
        assert list(pipe.iterate()) == list(range(10))

    def test_batched_stream_preserves_order(self, server):
        pipe = RemotePipe(server.address, "counter", args=(100,), batch=8)
        assert list(pipe.iterate()) == list(range(100))

    def test_bounded_channel_stream(self, server):
        # capacity=4 keeps the client replenishing small credit windows:
        # the loop-side sender must park on credit, not drop or reorder.
        pipe = RemotePipe(server.address, "counter", args=(50,), capacity=4)
        assert list(pipe.iterate()) == list(range(50))

    def test_take_surface(self, server):
        pipe = RemotePipe(server.address, "counter", args=(2,))
        assert pipe.take() == 0
        assert pipe.take() == 1
        assert pipe.take() is FAIL

    def test_spawned_body_streams(self, server):
        piped = source_pipe(
            range(12), backend="remote", remote_address=server.address
        ).start()
        assert piped.degraded is None
        assert list(piped.iterate()) == list(range(12))

    def test_factory_error_propagates_after_data(self, server):
        pipe = RemotePipe(server.address, "crasher", args=(5,))
        seen = []
        with pytest.raises(ValueError, match="factory crashed"):
            while True:
                item = pipe.take()
                if item is FAIL:
                    break
                seen.append(item)
        assert seen == list(range(5))

    def test_unknown_factory_is_a_pipe_error(self, server):
        pipe = RemotePipe(server.address, "no-such-factory")
        with pytest.raises(PipeError, match="no factory"):
            pipe.take()

    def test_many_concurrent_sessions_on_one_loop(self, server):
        # The tentpole claim in miniature: one loop thread multiplexes
        # every session; no per-session threads appear server-side.
        pipes = [
            RemotePipe(server.address, "counter", args=(40,)).start()
            for _ in range(20)
        ]
        results = [list(p.iterate()) for p in pipes]
        assert results == [list(range(40))] * 20
        assert server.stats["served"] == 20

    def test_spawn_rejected_when_disabled(self):
        with AsyncGeneratorServer(allow_spawn=False) as srv:
            piped = source_pipe(
                range(5), backend="remote", remote_address=srv.address
            ).start()
            assert piped.degraded is None
            with pytest.raises(PipeError, match="allow_spawn"):
                list(piped.iterate())

    def test_named_factories_still_served_when_spawn_disabled(self):
        with AsyncGeneratorServer(allow_spawn=False) as srv:
            srv.register("counter", counter)
            pipe = RemotePipe(srv.address, "counter", args=(7,))
            assert list(pipe.iterate()) == list(range(7))


class TestControlSessions:
    """PING/PONG and PEERS answered by the loop: membership tooling
    works against either substrate without knowing which it probed."""

    def test_probe_address_succeeds(self, server):
        assert probe_address(server.address)

    def test_probe_does_not_disturb_a_serving_session(self, server):
        pipe = RemotePipe(server.address, "ticker", capacity=2)
        assert pipe.take() == 0
        assert probe_address(server.address)
        assert pipe.take() == 1
        pipe.cancel(join=True, timeout=5.0)

    def test_gossip_exchange_is_push_pull(self, server):
        with AsyncGeneratorServer(name="peer") as other:
            other.add_peer(("10.0.0.9", 4000), weight=3.0)
            merged = other.announce([server.address])
            assert merged >= 1
            peers = [tuple(entry[:2]) for entry in server.known_peers()]
            assert ("10.0.0.9", 4000) in peers
            assert other.address[:2] in peers

    def test_mixed_fleet_gossip(self, server):
        # Threaded and event-loop replicas in one fleet: gossip crosses
        # the substrate boundary both ways.
        with GeneratorServer(name="legacy") as legacy:
            legacy.announce([server.address])
            peers = [tuple(entry[:2]) for entry in server.known_peers()]
            assert legacy.address[:2] in peers


class TestOverload:
    def test_over_capacity_dial_is_shed_with_retry_hint(self):
        with AsyncGeneratorServer(max_sessions=1, retry_after=0.25) as server:
            blocker = source_pipe(
                range(100_000),
                backend="remote",
                remote_address=server.address,
                capacity=1,
            ).start()
            assert blocker.take() == 0  # session established loop-side
            tracer = Tracer()
            with tracer.lifecycle():
                shed = source_pipe(
                    range(10), backend="remote", remote_address=server.address
                ).start()
                with pytest.raises(PipeServerBusy) as excinfo:
                    shed.take()
            assert excinfo.value.retry_after == 0.25
            assert excinfo.value.address == server.address
            assert server.stats["shed"] == 1
            assert server.stats["active"] == 1  # the blocker kept its slot
            health = tracer.health_stats()[f"server:{server.name}"]
            assert health["shed"] == 1
            blocker.cancel(join=True, timeout=5.0)

    def test_greedy_quota_serves_unbounded_clients(self):
        with AsyncGeneratorServer(max_credit=4) as server:
            piped = source_pipe(
                range(100), backend="remote", remote_address=server.address
            ).start()
            assert list(piped.iterate()) == list(range(100))

    def test_batch_clamped_to_server_cap(self):
        with AsyncGeneratorServer(max_batch=3) as server:
            piped = source_pipe(
                range(40),
                backend="remote",
                remote_address=server.address,
                batch=32,
            ).start()
            assert list(piped.iterate()) == list(range(40))


class TestShutdownAndChaos:
    def test_graceful_shutdown_closes_open_streams(self, server):
        pipe = RemotePipe(server.address, "ticker", capacity=2)
        assert pipe.take() == 0
        assert pipe.take() == 1
        server.shutdown(wait=False)
        # The stream ends cleanly: in-flight values delivered, then close.
        while True:
            item = pipe.take(timeout=5.0)
            if item is FAIL:
                break
        assert wait_active(server, 0) == 0

    def test_kill_sessions_surfaces_connection_lost(self, server):
        pipe = RemotePipe(server.address, "ticker", capacity=2)
        assert pipe.take() == 0
        deadline = time.monotonic() + 5.0
        while not server.active_sessions():
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert server.kill_sessions() == 1
        with pytest.raises(PipeConnectionLost):
            while pipe.take(timeout=5.0) is not FAIL:
                pass

    def test_server_tracked_by_scheduler(self, server):
        # The loop thread is ONE scheduler session however many streams
        # it serves — plus one pump per client.
        pipes = [
            RemotePipe(server.address, "ticker", capacity=2).start()
            for _ in range(3)
        ]
        for pipe in pipes:
            assert pipe.take() == 0
        assert default_scheduler().tracked_sessions >= 4
        for pipe in pipes:
            pipe.cancel(join=True, timeout=5.0)

    def test_scheduler_shutdown_reaps_loop_and_sessions(self):
        scheduler = PipeScheduler()
        srv = AsyncGeneratorServer(scheduler=scheduler)
        srv.register("ticker", ticker)
        srv.start()
        pipe = RemotePipe(
            srv.address, "ticker", capacity=2, scheduler=scheduler
        )
        assert pipe.take() == 0
        scheduler.shutdown(timeout=5.0)
        assert scheduler.leaked() == []
        srv.shutdown(wait=False)

    def test_mid_frame_stall_kills_session(self):
        srv = AsyncGeneratorServer(heartbeat_interval=0.05)
        srv.register("counter", counter)
        with srv:
            sock = socket.create_connection(srv.address)
            try:
                framer = SocketFramer(sock)
                framer.send((WIRE_CALL, {"name": "counter", "args": (3,)}))
                framer.send((WIRE_CREDIT, None))
                deadline = time.monotonic() + 5.0
                while not srv.stats["served"]:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                # Half a frame, then silence: the resumable reader must
                # notice the stalled mid-frame read and kill the session.
                sock.sendall(_HEADER.pack(100) + b"stalled")
                deadline = time.monotonic() + 5.0
                while srv.stats["active"]:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
            finally:
                sock.close()

    def test_exactly_once_replay_after_kill(self, server):
        # Abrupt session death mid-stream: supervision reconnects to the
        # same loop and the replay skips the delivered prefix.
        piped = supervise(
            source_pipe(range(60)).coexpr,
            backend="remote",
            remote_address=server.address,
            capacity=2,
            backoff=NO_BACKOFF,
            max_retries=5,
        )
        it = piped.iterate()
        head = [next(it) for _ in range(5)]
        server.kill_sessions()
        assert head + list(it) == list(range(60))
        assert piped.failures >= 1


class TestMonitorEvents:
    def test_session_events_carry_both_kinds(self, server):
        tracer = Tracer()
        with tracer.lifecycle():
            pipe = RemotePipe(server.address, "counter", args=(5,))
            assert list(pipe.iterate()) == list(range(5))
        kinds = [e.kind for e in tracer.events]
        assert EventKind.NET_CONNECT in kinds
        assert EventKind.NET_SESSION in kinds  # substrate-blind accounting
        assert EventKind.ASYNC_SESSION in kinds  # substrate-aware detail
        stats = tracer.net_stats()
        assert stats["pipe:counter"]["sessions"] == 1


class TestEagerDrain:
    """Satellite: a probe's MEMBER_DOWN verdict wakes in-flight
    watchdogs immediately — failover starts well inside one heartbeat."""

    def test_probe_verdict_wakes_the_watchdog(self, server):
        with AsyncGeneratorServer() as backup:
            pool = ServerPool([server.address, backup.address])
            # A huge heartbeat budget: without the eager drain, the pump
            # would sit on this stream for ~30s before noticing anything.
            pipe = RemotePipe(
                server.address, "ticker", capacity=1, heartbeat_interval=3.0
            )
            assert pipe.take() == 0
            started = time.monotonic()
            assert pool.mark_down(server.address, "probe missed 3 pings")
            with pytest.raises(PipeConnectionLost, match="marked down"):
                while pipe.take(timeout=5.0) is not FAIL:
                    pass
            elapsed = time.monotonic() - started
            assert elapsed < 1.0, f"drain took {elapsed:.2f}s"

    def test_failover_latency_under_one_heartbeat(self):
        # The replica stays ALIVE but the prober declares it down: only
        # the eager drain makes the stream leave it at all.  The whole
        # failover — loss, redial, exactly-once replay — must complete
        # in a fraction of the 20s heartbeat budget.
        with AsyncGeneratorServer() as victim, AsyncGeneratorServer() as backup:
            pool = ServerPool([victim.address, backup.address])
            piped = supervise(
                source_pipe(range(5000)).coexpr,
                backend="remote",
                remote_address=pool,
                capacity=2,
                backoff=NO_BACKOFF,
                max_retries=3,
                heartbeat_interval=2.0,
            )
            it = piped.iterate()
            head = [next(it) for _ in range(5)]
            primary = pool.last_address("source")
            verdict = time.monotonic()
            assert pool.mark_down(primary, "probe missed 3 pings")
            tail = list(it)
            elapsed = time.monotonic() - verdict
            assert head + tail == list(range(5000))  # exactly-once
            assert piped.failures == 1
            assert pool.stats()["failovers"] == 1
            assert pool.last_address("source") != primary
            assert elapsed < 2.0, f"failover took {elapsed:.2f}s"


class TestCli:
    def test_async_serve_round_trip_and_sigterm(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.net.cli", "--async", "--serve",
             "range=builtins:range", "--port", "0"],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("listening on ")
            host, port = line.removeprefix("listening on ").rsplit(":", 1)
            address = (host, int(port))
            assert probe_address(address)
            pipe = RemotePipe(address, "range", args=(8,))
            assert list(pipe.iterate()) == list(range(8))
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=10)
            assert proc.returncode == 0
            assert "shutdown complete" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
