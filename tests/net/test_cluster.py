"""The cluster tier: consistent-hash routing, failover, exactly-once.

Three layers of coverage:

* **Ring properties** (hypothesis) — balance (no member owns more than
  2x its fair share of keys) and minimal remap (removing a member moves
  only the keys it owned; adding one steals keys only for itself).
* **Pool unit tests** — normalization shapes, suspicion reordering,
  failover accounting, membership changes.
* **Integration** — real servers behind a :class:`ServerPool`:
  transparent pipes and pipelines over replica lists, deterministic
  failover via :class:`FaultPlan` chaos rules (dropped connections,
  killed servers), DataParallel chunk stealing with the
  replica → next replica → threads degradation order, and RemotePipe
  over a pool.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coexpr.dataparallel import DataParallel
from repro.coexpr.patterns import pipeline, source_pipe
from repro.coexpr.supervision import NO_BACKOFF, FaultPlan, supervise
from repro.errors import PipeConnectionLost
from repro.monitor import Tracer
from repro.net import GeneratorServer, HashRing, RemotePipe, ServerPool
from repro.net.cluster import normalize_remote_address


# Module-level bodies: remote payloads pickle functions by qualified name.

def double(x):
    return 2 * x


def increment(x):
    return x + 1


def count_to(n):
    yield from range(n)


@pytest.fixture
def servers():
    with GeneratorServer() as one, GeneratorServer() as two, \
            GeneratorServer() as three:
        yield [one, two, three]


# A strategy of distinct (host, port) fleets, 2-8 replicas.
addresses = st.lists(
    st.integers(min_value=1024, max_value=65535).map(
        lambda port: ("10.0.0.1", port)
    ),
    min_size=2,
    max_size=8,
    unique=True,
)


class TestHashRingProperties:
    @settings(max_examples=25, deadline=None)
    @given(addresses)
    def test_balance_within_two_x_of_fair_share(self, nodes):
        ring = HashRing(nodes)
        keys = [f"stream-{i}" for i in range(2000)]
        counts: dict = {node: 0 for node in nodes}
        for key in keys:
            counts[ring.node_for(key)] += 1
        fair = len(keys) / len(nodes)
        assert max(counts.values()) <= 2 * fair

    @settings(max_examples=25, deadline=None)
    @given(addresses, st.integers(min_value=0, max_value=7))
    def test_removal_remaps_only_the_removed_nodes_keys(self, nodes, pick):
        ring = HashRing(nodes)
        keys = [f"stream-{i}" for i in range(500)]
        before = {key: ring.node_for(key) for key in keys}
        victim = nodes[pick % len(nodes)]
        ring.remove(victim)
        for key in keys:
            if before[key] != victim:
                assert ring.node_for(key) == before[key]

    @settings(max_examples=25, deadline=None)
    @given(addresses)
    def test_addition_steals_keys_only_for_the_new_node(self, nodes):
        ring = HashRing(nodes[:-1])
        keys = [f"stream-{i}" for i in range(500)]
        before = {key: ring.node_for(key) for key in keys}
        ring.add(nodes[-1])
        for key in keys:
            after = ring.node_for(key)
            if after != before[key]:
                assert after == nodes[-1]

    @settings(max_examples=25, deadline=None)
    @given(addresses)
    def test_preference_is_the_minimal_remap_failover_order(self, nodes):
        # preference[1] must be where the key would land if the primary
        # vanished: failing over along the walk IS the minimal remap.
        ring = HashRing(nodes)
        for key in ("a", "b", "stream-42"):
            order = ring.preference(key)
            assert order[0] == ring.node_for(key)
            assert sorted(order) == sorted(nodes)
            ring.remove(order[0])
            assert ring.node_for(key) == order[1]
            ring.add(order[0])


class TestNormalization:
    def test_none_and_pool_pass_through(self):
        assert normalize_remote_address(None) is None
        pool = ServerPool([("127.0.0.1", 1)])
        assert normalize_remote_address(pool) is pool

    def test_single_pair_stays_a_tuple(self):
        assert normalize_remote_address(("127.0.0.1", 9)) == ("127.0.0.1", 9)
        assert normalize_remote_address(["127.0.0.1", 9]) == ("127.0.0.1", 9)

    def test_list_of_pairs_becomes_a_pool(self):
        pool = normalize_remote_address(
            [("127.0.0.1", 1), ("127.0.0.1", 2)]
        )
        assert isinstance(pool, ServerPool)
        assert pool.addresses == (("127.0.0.1", 1), ("127.0.0.1", 2))

    def test_bad_member_rejected(self):
        with pytest.raises(ValueError, match="not a cluster member"):
            normalize_remote_address([("127.0.0.1", 1), "nonsense"])

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one address"):
            ServerPool([])

    def test_duplicates_collapse(self):
        pool = ServerPool([("127.0.0.1", 1), ("127.0.0.1", 1)])
        assert len(pool) == 1


class TestServerPool:
    def test_suspicion_reorders_but_never_excludes(self):
        pool = ServerPool(
            [("127.0.0.1", 1), ("127.0.0.1", 2), ("127.0.0.1", 3)]
        )
        primary = pool.primary("k")
        assert pool.dial_candidates("k")[0] == primary
        pool.note_lost("k", primary, "killed")
        candidates = pool.dial_candidates("k")
        assert candidates[-1] == primary          # demoted, not dropped
        assert sorted(candidates) == sorted(pool.addresses)
        pool.note_healthy(primary)
        assert pool.dial_candidates("k")[0] == primary

    def test_suspicion_expiry_restores_original_preference_order(self):
        # Regression: suspicion re-orders the walk (suspects to the
        # tail); once every window expires the *full original ring
        # order* must come back — not just the head — or placement
        # would drift after any transient blip.
        pool = ServerPool(
            [("127.0.0.1", 1), ("127.0.0.1", 2), ("127.0.0.1", 3)],
            suspicion=0.05,
        )
        original = pool.dial_candidates("k")
        pool.note_lost("k", original[0], "killed")
        pool.note_dial_failure("k", original[1], OSError("refused"))
        demoted = pool.dial_candidates("k")
        assert demoted != original
        assert sorted(demoted) == sorted(original)  # re-ordered, never excluded
        assert demoted[-2:] in ([original[0], original[1]],
                                [original[1], original[0]])
        time.sleep(0.08)
        assert pool.dial_candidates("k") == original

    def test_suspicion_expires(self):
        pool = ServerPool(
            [("127.0.0.1", 1), ("127.0.0.1", 2)], suspicion=0.05
        )
        primary = pool.primary("k")
        pool.note_lost("k", primary, "killed")
        assert pool.suspected(primary)
        time.sleep(0.08)
        assert not pool.suspected(primary)
        assert pool.dial_candidates("k")[0] == primary

    def test_failover_is_lost_then_reconnect_elsewhere(self):
        a, b = ("127.0.0.1", 1), ("127.0.0.1", 2)
        pool = ServerPool([a, b])
        pool.note_connect("k", a)
        assert pool.stats()["failovers"] == 0
        pool.note_lost("k", a, "killed")
        pool.note_connect("k", a)                 # same replica: a retry,
        assert pool.stats()["failovers"] == 0     # not a failover
        pool.note_lost("k", a, "killed")
        pool.note_connect("k", b)
        assert pool.stats()["failovers"] == 1
        assert pool.last_address("k") == b

    def test_membership_changes(self):
        a, b = ("127.0.0.1", 1), ("127.0.0.1", 2)
        pool = ServerPool([a])
        pool.add(b)
        pool.add(b)                               # idempotent
        assert pool.addresses == (a, b)
        pool.remove(a)
        assert pool.addresses == (b,)
        assert pool.primary("anything") == b

    def test_stats_shape(self):
        pool = ServerPool([("127.0.0.1", 1)])
        try:
            stats = pool.stats()
        finally:
            pool.close()
        assert set(stats) == {
            "addresses", "up", "down", "weights", "suspected",
            "failovers", "reroutes", "steals",
            "joins", "leaves", "ups", "downs",
        }


class TestClusterTransparency:
    def test_pipeline_over_replica_list(self, servers):
        expected = list(pipeline(range(40), increment, double).iterate())
        piped = pipeline(
            range(40),
            increment,
            double,
            backend="remote",
            remote_address=[srv.address for srv in servers],
        )
        assert list(piped.iterate()) == expected
        assert piped.degraded is None
        assert sum(srv.stats["served"] for srv in servers) == 1

    def test_dataparallel_chunks_fan_out_across_replicas(self, servers):
        data = list(range(80))
        dp = DataParallel(
            chunk_size=10,
            backend="remote",
            remote_address=[srv.address for srv in servers],
        )
        expected = list(DataParallel(chunk_size=10).map_flat(double, data))
        assert list(dp.map_flat(double, data)) == expected
        # Distinct route keys per chunk: the fleet served all 8 tasks.
        assert sum(srv.stats["served"] for srv in servers) == 8

    def test_all_replicas_down_degrades_to_threads(self):
        piped = source_pipe(
            range(5),
            backend="remote",
            remote_address=[("127.0.0.1", 1), ("127.0.0.1", 2)],
        ).start()
        assert piped.degraded is not None
        assert "no replica reachable" in piped.degraded
        assert list(piped.iterate()) == list(range(5))


class TestFailover:
    def test_dropped_connection_fails_over_exactly_once(self, servers):
        plan = FaultPlan()
        plan.drop_connection("source", on_attempts=(1,), after_items=3)
        pool = ServerPool(
            [servers[0].address, servers[1].address], fault_plan=plan
        )
        tracer = Tracer()
        with tracer.lifecycle():
            piped = supervise(
                source_pipe(range(30)).coexpr,
                backend="remote",
                remote_address=pool,
                capacity=2,
                backoff=NO_BACKOFF,
                max_retries=3,
            )
            got = list(piped.iterate())
        assert got == list(range(30))             # exactly-once, in order
        assert piped.failures == 1
        assert pool.stats()["failovers"] == 1
        stats = tracer.cluster_stats()[f"pool:{pool.name}"]
        assert stats["failovers"] == 1
        (transition,) = stats["transitions"]
        assert transition[0] != transition[1]
        assert set(transition) <= set(pool.addresses)

    def test_killed_server_fails_over_to_next_replica(self, servers):
        pool = ServerPool([srv.address for srv in servers])
        victim_address = pool.primary("source")
        (victim,) = [s for s in servers if s.address == victim_address]
        plan = FaultPlan()
        plan.kill_server("source", victim, on_attempts=(1,), after_items=5)
        pool.fault_plan = plan
        piped = supervise(
            source_pipe(range(50)).coexpr,
            backend="remote",
            remote_address=pool,
            capacity=2,
            backoff=NO_BACKOFF,
            max_retries=3,
        )
        assert list(piped.iterate()) == list(range(50))
        assert pool.stats()["failovers"] == 1
        assert pool.last_address("source") != victim_address

    def test_budget_survives_rerouting(self, servers):
        # The deadline wire rule composes with failover: the replay on
        # the second replica runs under the same (remaining) budget.
        plan = FaultPlan()
        plan.drop_connection("source", on_attempts=(1,), after_items=2)
        pool = ServerPool(
            [servers[0].address, servers[1].address], fault_plan=plan
        )
        piped = supervise(
            source_pipe(range(20)).coexpr,
            backend="remote",
            remote_address=pool,
            capacity=2,
            backoff=NO_BACKOFF,
            max_retries=3,
            deadline=30.0,
        )
        assert list(piped.iterate()) == list(range(20))
        assert pool.stats()["failovers"] == 1


class TestWorkStealing:
    def test_stranded_chunk_is_stolen_exactly_once(self, servers):
        plan = FaultPlan()
        plan.drop_connection("mapreduce-task-1", on_attempts=(1,), after_items=1)
        pool = ServerPool(
            [servers[0].address, servers[1].address], fault_plan=plan
        )
        data = list(range(40))
        dp = DataParallel(chunk_size=10, backend="remote", remote_address=pool)
        expected = list(DataParallel(chunk_size=10).map_flat(double, data))
        tracer = Tracer()
        with tracer.lifecycle():
            got = list(dp.map_flat(double, data))
        assert got == expected                    # ordered, no dup, no gap
        assert pool.stats()["steals"] == 1
        stats = tracer.cluster_stats()[f"pool:{pool.name}"]
        assert stats["stolen_keys"] == ["mapreduce-task-1"]

    def test_steal_budget_exhausts_to_thread_fallback(self, servers):
        # One replica, a connection that drops on every remote attempt:
        # after 2 * len(pool) steals the chunk re-runs on the thread
        # tier — degradation order replica -> next replica -> threads,
        # never silent loss.
        plan = FaultPlan()
        plan.drop_connection(
            "mapreduce-task-0", on_attempts=(1, 2, 3), after_items=0
        )
        pool = ServerPool([servers[0].address], fault_plan=plan)
        dp = DataParallel(chunk_size=100, backend="remote", remote_address=pool)
        assert list(dp.map_flat(double, range(10))) == [2 * x for x in range(10)]
        assert pool.stats()["steals"] == 3        # 2 remote retries + fallback


class TestRemotePipePool:
    def test_remote_pipe_over_replica_list(self, servers):
        for srv in servers:
            srv.register("count", count_to)
        piped = RemotePipe(
            [srv.address for srv in servers], "count", args=(12,)
        )
        assert isinstance(piped.address, ServerPool)
        assert list(piped.iterate()) == list(range(12))

    def test_remote_pipe_all_replicas_down_raises(self):
        piped = RemotePipe(
            [("127.0.0.1", 1), ("127.0.0.1", 2)], "count", args=(3,)
        )
        with pytest.raises(PipeConnectionLost, match="no replica reachable"):
            piped.start()
        piped.cancel()
