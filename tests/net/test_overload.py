"""Admission control, load shedding, and the client circuit breaker.

The overload contract: a :class:`GeneratorServer` at ``max_sessions``
answers a new dial with ``WIRE_BUSY(retry_after)`` and closes — it
*sheds* instead of hanging the client.  The client surfaces
:class:`~repro.errors.PipeServerBusy` (retryable), consecutive
busy/lost outcomes trip the per-address :class:`CircuitBreaker`, and
while the breaker is open ``backend="remote"`` degrades to the thread
tier without dropping or reordering anything already delivered.  Quota
knobs (``max_credit``, ``max_batch``) bound what one session can buffer
without changing the stream the client observes.
"""

from __future__ import annotations

import time

import pytest

from repro.coexpr.patterns import source_pipe
from repro.coexpr.supervision import NO_BACKOFF, supervise
from repro.errors import PipeServerBusy
from repro.monitor import EventKind, Tracer
from repro.net import CircuitBreaker, GeneratorServer, RemotePipe, breaker_for
from repro.net.client import _BREAKER_THRESHOLD


def occupy(server, n=100_000):
    """A live session pinning one capacity slot (capacity=1 keeps the
    server's sender credit-blocked, so the session stays open)."""
    blocker = source_pipe(
        range(n),
        backend="remote",
        remote_address=server.address,
        capacity=1,
    ).start()
    assert blocker.take() == 0  # session established server-side
    assert blocker.degraded is None
    return blocker


def wait_active(server, count, timeout=2.0):
    limit = time.monotonic() + timeout
    while server.stats["active"] != count and time.monotonic() < limit:
        time.sleep(0.01)
    return server.stats["active"]


class TestLoadShedding:
    def test_over_capacity_dial_is_shed_with_retry_hint(self):
        with GeneratorServer(max_sessions=1, retry_after=0.25) as server:
            blocker = occupy(server)
            tracer = Tracer()
            with tracer.lifecycle():
                shed = source_pipe(
                    range(10),
                    backend="remote",
                    remote_address=server.address,
                ).start()
                with pytest.raises(PipeServerBusy) as excinfo:
                    shed.take()
            # The dial never hangs: it is answered, with the hint.
            assert excinfo.value.retry_after == 0.25
            assert excinfo.value.address == server.address
            assert server.stats["shed"] == 1
            assert server.stats["active"] == 1  # the blocker kept its slot
            health = tracer.health_stats()[f"server:{server.name}"]
            assert health["shed"] == 1
            blocker.cancel(join=True, timeout=5.0)

    def test_capacity_freed_admits_the_next_dial(self):
        with GeneratorServer(max_sessions=1) as server:
            blocker = occupy(server)
            blocker.cancel(join=True, timeout=5.0)
            assert wait_active(server, 0) == 0
            admitted = source_pipe(
                range(15), backend="remote", remote_address=server.address
            ).start()
            assert list(admitted.iterate()) == list(range(15))
            assert admitted.degraded is None

    def test_cancel_mid_stream_releases_the_session(self):
        with GeneratorServer() as server:
            piped = source_pipe(
                range(100_000),
                backend="remote",
                remote_address=server.address,
                capacity=2,
            ).start()
            assert piped.take() == 0
            piped.cancel(join=True, timeout=5.0)
            # The server-side producer is actively reclaimed, not left
            # credit-blocked until the heartbeat gives up on the socket.
            assert wait_active(server, 0) == 0


class TestQuotas:
    def test_greedy_quota_serves_unbounded_clients(self):
        # An unbounded client grants unlimited credit once and never
        # replenishes; the quota converts that to self-replenishing
        # quota-sized slices — the stream must still be exact.
        with GeneratorServer(max_credit=4) as server:
            piped = source_pipe(
                range(100), backend="remote", remote_address=server.address
            ).start()
            assert list(piped.iterate()) == list(range(100))

    def test_bounded_credit_is_clamped_to_quota(self):
        with GeneratorServer(max_credit=2) as server:
            piped = source_pipe(
                range(50),
                backend="remote",
                remote_address=server.address,
                capacity=64,
            ).start()
            assert list(piped.iterate()) == list(range(50))

    def test_batch_clamped_to_server_cap(self):
        with GeneratorServer(max_batch=3) as server:
            piped = source_pipe(
                range(40),
                backend="remote",
                remote_address=server.address,
                batch=32,
            ).start()
            assert list(piped.iterate()) == list(range(40))


class TestCircuitBreaker:
    def test_state_machine_and_events(self):
        breaker = CircuitBreaker(("127.0.0.1", 65000), threshold=3)
        tracer = Tracer()
        with tracer.lifecycle():
            assert breaker.allow()
            breaker.record_failure(retry_after=0.1)
            breaker.record_failure(retry_after=0.1)
            assert breaker.state == CircuitBreaker.CLOSED  # under threshold
            breaker.record_failure(retry_after=0.1)
            assert breaker.state == CircuitBreaker.OPEN
            assert not breaker.allow()  # open: fail fast
            assert 0.0 < breaker.remaining() <= 0.1
            time.sleep(0.12)
            assert breaker.allow()      # the half-open probe
            assert breaker.state == CircuitBreaker.HALF_OPEN
            assert not breaker.allow()  # only ONE probe is admitted
            breaker.record_success()
            assert breaker.state == CircuitBreaker.CLOSED
            assert breaker.allow()
        kinds = [e.kind for e in tracer.events]
        assert kinds.count(EventKind.BREAKER_OPEN) == 1
        assert kinds.count(EventKind.BREAKER_PROBE) == 1
        assert kinds.count(EventKind.BREAKER_CLOSE) == 1

    def test_failed_probe_reopens_immediately(self):
        breaker = CircuitBreaker(("127.0.0.1", 65001), threshold=3)
        for _ in range(3):
            breaker.record_failure(retry_after=0.05)
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure(retry_after=0.05)  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN

    def test_shed_storm_trips_the_breaker_then_degrades(self):
        with GeneratorServer(max_sessions=1, retry_after=30.0) as server:
            blocker = occupy(server)
            for _ in range(_BREAKER_THRESHOLD):
                shed = source_pipe(
                    range(5), backend="remote", remote_address=server.address
                ).start()
                with pytest.raises(PipeServerBusy):
                    shed.take()
            breaker = breaker_for(server.address)
            assert breaker.state == CircuitBreaker.OPEN
            # Breaker open: the next pipe degrades to the thread tier
            # without even dialing — and still yields the exact stream.
            degraded = source_pipe(
                range(5), backend="remote", remote_address=server.address
            ).start()
            assert degraded.degraded is not None
            assert "circuit breaker" in degraded.degraded
            assert list(degraded.iterate()) == list(range(5))
            assert server.stats["shed"] == _BREAKER_THRESHOLD  # no 4th dial
            blocker.cancel(join=True, timeout=5.0)

    def test_supervision_rides_the_breaker_to_thread_tier(self):
        # Supervision keeps retrying retryable sheds; once the breaker
        # trips, the next restart degrades and completes on threads.
        with GeneratorServer(max_sessions=1, retry_after=30.0) as server:
            blocker = occupy(server)
            piped = supervise(
                source_pipe(range(40)).coexpr,
                backend="remote",
                remote_address=server.address,
                backoff=NO_BACKOFF,
                max_retries=10,
            )
            assert list(piped.iterate()) == list(range(40))
            assert piped.failures == _BREAKER_THRESHOLD
            assert breaker_for(server.address).state == CircuitBreaker.OPEN
            blocker.cancel(join=True, timeout=5.0)

    def test_delivered_items_survive_degradation(self):
        # Mid-stream server death: supervision reconnects, the dial
        # fails, and the stream finishes on the thread tier with the
        # already-delivered prefix neither dropped nor reordered.
        server = GeneratorServer().start()
        piped = supervise(
            source_pipe(range(60)).coexpr,
            backend="remote",
            remote_address=server.address,
            capacity=2,
            backoff=NO_BACKOFF,
            max_retries=5,
        )
        it = piped.iterate()
        head = [next(it) for _ in range(5)]
        # Abrupt kill + closed listener: the loss is a crash (not a
        # clean WIRE_CLOSE) and the reconnect dial is refused.
        server.kill_sessions()
        server.shutdown(wait=True)
        assert head + list(it) == list(range(60))
        assert piped.failures >= 1

    def test_probe_reconnects_once_capacity_frees(self):
        with GeneratorServer(max_sessions=1, retry_after=0.3) as server:
            blocker = occupy(server)
            for _ in range(_BREAKER_THRESHOLD):
                shed = source_pipe(
                    range(5), backend="remote", remote_address=server.address
                ).start()
                with pytest.raises(PipeServerBusy):
                    shed.take()
            assert breaker_for(server.address).state == CircuitBreaker.OPEN
            blocker.cancel(join=True, timeout=5.0)
            assert wait_active(server, 0) == 0
            time.sleep(0.35)  # past retry_after: the breaker admits a probe
            probe = source_pipe(
                range(20), backend="remote", remote_address=server.address
            ).start()
            assert probe.degraded is None
            assert list(probe.iterate()) == list(range(20))
            assert breaker_for(server.address).state == CircuitBreaker.CLOSED

    def test_remote_pipe_fails_fast_while_open(self):
        # RemotePipe has no local body to degrade to: an open breaker
        # surfaces PipeServerBusy (retryable) without touching the net.
        address = ("127.0.0.1", 65002)  # nothing listens here — no dial happens
        breaker = breaker_for(address)
        for _ in range(_BREAKER_THRESHOLD):
            breaker.record_failure(retry_after=30.0)
        proxy = RemotePipe(address, "whatever")
        with pytest.raises(PipeServerBusy) as excinfo:
            proxy.start()
        assert excinfo.value.retry_after > 0.0
