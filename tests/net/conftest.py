"""Network-tier fixtures: every test gets a leak-checked scheduler.

Mirrors the concurrency-layer conftest, but the leak check here also
covers *sessions* — open server sessions and client pump workers both
register with the scheduler's session accounting, so a test that
forgets to drain or shut down a connection fails its own teardown.
"""

from __future__ import annotations

import pytest

from repro.coexpr.scheduler import PipeScheduler, use_scheduler
from repro.net.client import reset_breakers


@pytest.fixture(autouse=True)
def pipe_scheduler():
    """A fresh default scheduler per test, leak-checked at teardown."""
    # Circuit breakers are keyed per address in a module-level registry;
    # one test tripping a breaker must not fail-fast the next test's dial.
    reset_breakers()
    scheduler = PipeScheduler()
    with use_scheduler(scheduler):
        yield scheduler
    leaked = scheduler.leaked(join_timeout=2.0)
    assert not leaked, (
        f"pipe workers or sessions leaked by this test: "
        f"{[getattr(t, 'name', t) for t in leaked]}"
    )
