"""Churn acceptance: the fleet changes under a live stream and the
stream never notices.

The PR's acceptance scenario with *real* process death and discovery:
three ``junicon-serve`` subprocesses behind a gossip-backed
:class:`ServerPool`, the replica currently serving the stream SIGKILLed
mid-flight, and a *fresh* replica started with ``--peer <survivor>`` so
gossip — not the client — introduces it to the pool.  The stream must
deliver the identical sequence exactly once with no client restart,
and ``Tracer.membership_stats()`` must show both the death (a probed
``MEMBER_DOWN``) and the replacement (a gossiped ``MEMBER_JOIN``).

The deterministic in-process analogue — sustained churn at exact
stream positions via ``FaultPlan.churn_membership`` — rides along, so
CI failure here localizes: subprocess test red + in-process green
points at discovery/probing, both red points at routing.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.coexpr.patterns import source_pipe
from repro.coexpr.supervision import NO_BACKOFF, FaultPlan, supervise
from repro.monitor import Tracer
from repro.net import GeneratorServer, GossipMembers, ServerPool


def _spawn_server(*extra: str) -> tuple:
    """One ``junicon-serve`` subprocess; returns (proc, (host, port))."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.net.cli", "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("listening on "), f"unexpected banner: {line!r}"
    host, port = line.removeprefix("listening on ").rsplit(":", 1)
    return proc, (host, int(port))


def _reap(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.kill()
    proc.stdout.close()
    proc.stderr.close()
    proc.wait(timeout=10)


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestChurnAcceptance:
    def test_kill_and_gossip_in_a_replacement_mid_stream(self):
        fleet = [_spawn_server() for _ in range(3)]
        replacement = None
        tracer = Tracer()
        pool = None
        try:
            addresses = [address for _, address in fleet]
            with tracer.lifecycle():
                pool = ServerPool(
                    membership=GossipMembers(addresses, timeout=0.5),
                    probe_interval=0.05,
                    probe_timeout=0.5,
                    probe_failures=2,
                    refresh_interval=0.05,
                )
                piped = supervise(
                    source_pipe(range(200)).coexpr,
                    backend="remote",
                    remote_address=pool,
                    capacity=2,
                    backoff=NO_BACKOFF,
                    max_retries=5,
                )
                it = piped.iterate()
                received = [next(it) for _ in range(5)]

                victim_address = pool.last_address("source")
                assert victim_address is not None
                (victim,) = [
                    proc for proc, address in fleet
                    if tuple(address) == tuple(victim_address)
                ]
                survivor = next(
                    address for address in addresses
                    if tuple(address) != tuple(victim_address)
                )
                victim.send_signal(signal.SIGKILL)
                victim.wait(timeout=10)

                # A *fresh* replica joins by announcing itself to a
                # survivor — the client never hears about it directly.
                replacement, fresh_address = _spawn_server(
                    "--peer", f"{survivor[0]}:{survivor[1]}"
                )

                # The pool must converge on its own: gossip introduces
                # the newcomer, the prober declares the corpse down.
                assert _wait_until(
                    lambda: tuple(fresh_address) in pool.addresses
                ), f"gossip never discovered {fresh_address}"
                assert _wait_until(
                    lambda: tuple(victim_address) in pool.down_addresses
                ), f"prober never declared {victim_address} down"

                # Drain the rest on the same client/iterator: identical
                # sequence, exactly once, no client restart.
                received += list(it)
            assert received == list(range(200))
            assert piped.failures >= 1
            assert pool.stats()["failovers"] >= 1

            stats = tracer.membership_stats()[f"pool:{pool.name}"]
            assert tuple(fresh_address) in stats["joined"]
            assert "gossip" in stats["sources"]
            assert tuple(victim_address) in stats["went_down"]
        finally:
            if pool is not None:
                pool.close()
            for proc, _ in fleet:
                _reap(proc)
            if replacement is not None:
                _reap(replacement)


class TestSustainedChurn:
    def test_stream_survives_churn_at_exact_positions(self):
        # The in-process sustained-churn rule: ghosts join and leave at
        # five exact stream positions while one real replica serves.
        # Membership churns 10 times under the stream; delivery stays
        # exactly-once and placement never leaves the live member.
        with GeneratorServer() as server:
            pool = ServerPool([server.address])
            ghosts = [("127.0.0.1", port) for port in range(2, 7)]
            plan = FaultPlan()
            for index, ghost in enumerate(ghosts):
                plan.churn_membership(
                    "source", pool,
                    join=(ghost,),
                    after_items=10 + 20 * index,
                )
                plan.churn_membership(
                    "source", pool,
                    leave=(ghost,),
                    after_items=20 + 20 * index,
                )
            pool.fault_plan = plan
            piped = supervise(
                source_pipe(range(120)).coexpr,
                backend="remote",
                remote_address=pool,
                capacity=2,
                backoff=NO_BACKOFF,
            )
            received = list(piped.iterate())
            assert received == list(range(120))
            stats = pool.stats()
            assert stats["joins"] == 5 and stats["leaves"] == 5
            assert pool.addresses == (tuple(server.address),)
            assert piped.failures == 0

    def test_churn_repeats_across_replay_attempts(self, tmp_path):
        # Churn composes with a real fault: attempt 1 drops the
        # connection after 30 items *and* churns at item 10; the replay
        # (attempt 2) churns again at its own item 10.  The sequence
        # still arrives exactly once.
        with GeneratorServer() as one, GeneratorServer() as two:
            pool = ServerPool([one.address])
            plan = (
                FaultPlan()
                .churn_membership(
                    "source", pool, join=(two.address,),
                    on_attempts=(1,), after_items=10,
                )
                .drop_connection("source", on_attempts=(1,), after_items=30)
                .churn_membership(
                    "source", pool, leave=(("127.0.0.1", 9),),
                    on_attempts=(2,), after_items=10,
                )
            )
            pool.fault_plan = plan
            pool.add(("127.0.0.1", 9))  # the member attempt 2 retires
            piped = supervise(
                source_pipe(range(80)).coexpr,
                backend="remote",
                remote_address=pool,
                capacity=2,
                backoff=NO_BACKOFF,
                max_retries=3,
            )
            received = list(piped.iterate())
            assert received == list(range(80))
            assert piped.failures == 1
            stats = pool.stats()
            # Two joins (the api-added ghost + the chaos-joined second
            # replica), one leave (attempt 2 retiring the ghost).
            assert stats["joins"] == 2 and stats["leaves"] == 1
            assert ("127.0.0.1", 9) not in pool.addresses


class TestOperatorSurface:
    def test_registry_file_drives_a_subprocess_fleet(self, tmp_path):
        # End to end through the string spelling: two real replicas in
        # a registry file, stream against "registry:/path", then update
        # the file mid-stream and watch the pool follow.
        fleet = [_spawn_server() for _ in range(2)]
        pool = None
        try:
            registry = tmp_path / "fleet.json"
            registry.write_text(
                json.dumps([list(address) for _, address in fleet])
            )
            pool = ServerPool(
                membership=f"registry:{registry}",
                probe_interval=0.1,
                probe_timeout=0.5,
                refresh_interval=0.05,
            )
            piped = supervise(
                source_pipe(range(50)).coexpr,
                backend="remote",
                remote_address=pool,
                capacity=2,
                backoff=NO_BACKOFF,
            )
            assert list(piped.iterate()) == list(range(50))
            # Operator retires the idle replica by editing the file.
            keep = pool.last_address("source")
            kept = [a for _, a in fleet if tuple(a) == tuple(keep)]
            registry.write_text(json.dumps([list(kept[0])]))
            os.utime(registry, (time.time() + 5, time.time() + 5))
            assert _wait_until(lambda: len(pool.addresses) == 1)
            assert pool.addresses == (tuple(keep),)
        finally:
            if pool is not None:
                pool.close()
            for proc, _ in fleet:
                _reap(proc)

    def test_advertise_flag_reaches_gossip(self):
        proc, address = _spawn_server(
            "--advertise", "203.0.113.7:4444", "--weight", "2.5"
        )
        try:
            from repro.net import exchange_peers

            fleet = exchange_peers(address, timeout=1.0)
            assert fleet[0] == (("203.0.113.7", 4444), 2.5)
        finally:
            _reap(proc)
