"""The wire vocabulary: error codec round-trips and socket framing.

Property layer (hypothesis): a framed envelope sequence round-trips
byte-identically through :class:`SocketFramer` no matter how the byte
stream is fragmented, and an error envelope never overtakes the data
framed before it.
"""

from __future__ import annotations

import pickle
import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coexpr.wire import (
    MAX_FRAME,
    WIRE_CLOSE,
    WIRE_DATA,
    WIRE_ERROR,
    FrameError,
    SocketFramer,
    _HEADER,
    decode_error,
    encode_error,
)
from repro.errors import PipeError


def raise_chained():
    try:
        raise KeyError("inner")
    except KeyError as inner:
        raise ValueError("outer") from inner


class Unpicklable(Exception):
    def __reduce__(self):
        raise TypeError("refuses to pickle")


class TestErrorCodec:
    def test_round_trip_preserves_type_and_args(self):
        try:
            raise RuntimeError("boom", 42)
        except RuntimeError as error:
            decoded = decode_error(encode_error(error))
        assert isinstance(decoded, RuntimeError)
        assert decoded.args == ("boom", 42)

    def test_cause_chain_survives(self):
        try:
            raise_chained()
        except ValueError as error:
            decoded = decode_error(encode_error(error))
        assert isinstance(decoded, ValueError)
        assert isinstance(decoded.__cause__, KeyError)
        assert decoded.__cause__.args == ("inner",)

    def test_traceback_text_attached(self):
        try:
            raise_chained()
        except ValueError as error:
            decoded = decode_error(encode_error(error))
        assert "raise_chained" in decoded.remote_traceback

    def test_unpicklable_error_falls_back_to_repr(self):
        try:
            raise Unpicklable("cannot cross")
        except Unpicklable as error:
            decoded = decode_error(encode_error(error))
        assert isinstance(decoded, PipeError)
        assert "Unpicklable" in str(decoded)

    def test_unpicklable_cause_still_chains(self):
        try:
            try:
                raise Unpicklable("deep")
            except Unpicklable as inner:
                raise ValueError("outer") from inner
        except ValueError as error:
            decoded = decode_error(encode_error(error))
        assert isinstance(decoded, ValueError)
        assert isinstance(decoded.__cause__, PipeError)

    def test_self_referential_cause_terminates(self):
        error = ValueError("loop")
        error.__cause__ = error
        payload = encode_error(error)
        assert payload["cause"] is None

    def test_corrupt_pickle_body_decodes_to_pipe_error(self):
        payload = encode_error(ValueError("x"))
        payload["body"] = ("pickle", b"not a pickle")
        decoded = decode_error(payload)
        assert isinstance(decoded, PipeError)
        assert "undecodable" in str(decoded)


@pytest.fixture
def framer_pair():
    left, right = socket.socketpair()
    a, b = SocketFramer(left), SocketFramer(right)
    yield a, b
    a.close()
    b.close()


class TestSocketFramer:
    def test_round_trip(self, framer_pair):
        a, b = framer_pair
        a.send((WIRE_DATA, [1, "two", None]))
        assert b.recv() == (WIRE_DATA, [1, "two", None])

    def test_many_frames_in_order(self, framer_pair):
        a, b = framer_pair
        for i in range(50):
            a.send((WIRE_DATA, [i]))
        assert [b.recv()[1][0] for i in range(50)] == list(range(50))

    def test_timeout_preserves_partial_frame(self, framer_pair):
        a, b = framer_pair
        payload = pickle.dumps((WIRE_DATA, list(range(100))))
        framed = _HEADER.pack(len(payload)) + payload
        b.sock.settimeout(0.05)
        a.sock.sendall(framed[:7])  # header + a sliver of the body
        with pytest.raises((socket.timeout, TimeoutError)):
            b.recv()
        a.sock.sendall(framed[7:])
        b.sock.settimeout(1.0)
        assert b.recv() == (WIRE_DATA, list(range(100)))

    def test_eof_on_clean_close(self, framer_pair):
        a, b = framer_pair
        a.close()
        with pytest.raises(EOFError):
            b.recv()

    def test_close_mid_frame_is_a_frame_error(self, framer_pair):
        a, b = framer_pair
        a.sock.sendall(_HEADER.pack(1000) + b"partial")
        a.close()
        with pytest.raises(FrameError, match="mid-frame"):
            b.recv()

    def test_oversized_frame_rejected(self, framer_pair):
        a, b = framer_pair
        a.sock.sendall(_HEADER.pack(MAX_FRAME + 1))
        with pytest.raises(FrameError, match="oversized"):
            b.recv()

    def test_undecodable_frame_rejected(self, framer_pair):
        a, b = framer_pair
        a.sock.sendall(_HEADER.pack(4) + b"\xff\xff\xff\xff")
        with pytest.raises(FrameError, match="undecodable"):
            b.recv()

    def test_non_tuple_envelope_rejected(self, framer_pair):
        a, b = framer_pair
        payload = pickle.dumps(["not", "a", "tuple"])
        a.sock.sendall(_HEADER.pack(len(payload)) + payload)
        with pytest.raises(FrameError, match="malformed"):
            b.recv()

    def test_buffered_sees_pipelined_frames(self, framer_pair):
        # The select-deadlock regression: frames pulled into the user
        # space buffer by an earlier recv must be visible to buffered(),
        # because the socket will never poll readable for them.
        a, b = framer_pair
        a.send((WIRE_DATA, [1]))
        a.send((WIRE_DATA, [2]))
        assert not b.buffered()
        assert b.recv() == (WIRE_DATA, [1])
        assert b.buffered()
        assert b.recv() == (WIRE_DATA, [2])
        assert not b.buffered()

    def test_buffered_false_on_partial_frame(self, framer_pair):
        a, b = framer_pair
        a.send((WIRE_DATA, [1]))
        payload = pickle.dumps((WIRE_DATA, [2]))
        a.sock.sendall(_HEADER.pack(len(payload)) + payload[:3])
        assert b.recv() == (WIRE_DATA, [1])  # pulls the partial in too
        assert not b.buffered()
        a.sock.sendall(payload[3:])
        assert b.recv() == (WIRE_DATA, [2])

    def test_try_recv_never_blocks_on_a_partial_frame(self, framer_pair):
        # The reader-stall regression: one receive step per readable
        # select, never a blocking wait for the rest of the frame.
        a, b = framer_pair
        payload = pickle.dumps((WIRE_DATA, [1]))
        a.sock.sendall(_HEADER.pack(len(payload)) + payload[:3])
        assert b.try_recv() is None
        assert b.partial()
        a.sock.sendall(payload[3:4])
        assert b.try_recv() is None  # one byte of progress: still partial
        a.sock.sendall(payload[4:])
        while True:
            envelope = b.try_recv()
            if envelope is not None:
                break
        assert envelope == (WIRE_DATA, [1])
        assert not b.partial()

    def test_try_recv_serves_buffered_frame_without_reading(self, framer_pair):
        a, b = framer_pair
        a.send((WIRE_DATA, [1]))
        a.send((WIRE_DATA, [2]))
        assert b.recv() == (WIRE_DATA, [1])  # pulls both frames in
        # A socket read here would time out: the frame must come from
        # the user-space buffer alone.
        b.sock.settimeout(0.5)
        assert b.try_recv() == (WIRE_DATA, [2])

    def test_try_recv_raises_eof_on_clean_close(self, framer_pair):
        a, b = framer_pair
        a.close()
        with pytest.raises(EOFError):
            b.try_recv()


class _NeedsGlobal:
    """Pickling an instance records a global lookup for this class."""


class TestRestrictedFraming:
    """``trusted=False``: primitives pass, global lookups are refused."""

    @pytest.fixture
    def untrusting_pair(self):
        left, right = socket.socketpair()
        a, b = SocketFramer(left), SocketFramer(right, trusted=False)
        yield a, b
        a.close()
        b.close()

    def test_primitive_envelopes_decode(self, untrusting_pair):
        a, b = untrusting_pair
        envelope = (WIRE_DATA, [1, "two", b"three", None, 4.5, [True, {}]])
        a.send(envelope)
        assert b.recv() == envelope

    def test_global_bearing_frame_is_a_frame_error(self, untrusting_pair):
        a, b = untrusting_pair
        a.send((WIRE_DATA, [_NeedsGlobal()]))
        with pytest.raises(FrameError, match="untrusted frame"):
            b.recv()

    def test_nested_pickle_bytes_stay_opaque(self, untrusting_pair):
        # A spawn request's body is pickled *bytes* inside the envelope:
        # the restricted framer must pass it through undecoded, so the
        # allow_spawn policy check runs before any hostile unpickling.
        a, b = untrusting_pair
        body = pickle.dumps((_NeedsGlobal, ()))
        a.send(("spawn", {"body": body, "name": "x"}))
        assert b.recv() == ("spawn", {"body": body, "name": "x"})


class _ChunkedSock:
    """A fake socket delivering a fixed byte stream in scripted chunks."""

    def __init__(self, chunks):
        self.chunks = list(chunks)

    def recv(self, _size):
        if not self.chunks:
            return b""
        return self.chunks.pop(0)

    def close(self):
        pass


_values = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=8),
    lambda inner: st.lists(inner, max_size=4),
    max_leaves=10,
)
_envelopes = st.lists(
    st.tuples(st.just(WIRE_DATA), st.lists(_values, max_size=5)),
    min_size=1,
    max_size=8,
)


class TestFramingProperties:
    @given(envelopes=_envelopes, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_under_arbitrary_fragmentation(self, envelopes, data):
        stream = bytearray()
        for envelope in envelopes:
            payload = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
            stream += _HEADER.pack(len(payload)) + payload
        # Fragment the byte stream at hypothesis-chosen boundaries.
        chunks, pos = [], 0
        while pos < len(stream):
            step = data.draw(st.integers(1, len(stream) - pos))
            chunks.append(bytes(stream[pos : pos + step]))
            pos += step
        framer = SocketFramer(_ChunkedSock(chunks))
        assert [framer.recv() for _ in envelopes] == envelopes
        with pytest.raises(EOFError):
            framer.recv()

    @given(slices=st.lists(st.lists(st.integers(), max_size=4), max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_error_never_overtakes_data(self, slices):
        left, right = socket.socketpair()
        a, b = SocketFramer(left), SocketFramer(right)
        try:
            for slice_ in slices:
                a.send((WIRE_DATA, slice_))
            a.send((WIRE_ERROR, encode_error(ValueError("after data"))))
            a.send((WIRE_CLOSE,))
            received = [b.recv() for _ in range(len(slices) + 2)]
        finally:
            a.close()
            b.close()
        assert [e[1] for e in received[: len(slices)]] == slices
        assert received[-2][0] == WIRE_ERROR
        assert received[-1] == (WIRE_CLOSE,)
