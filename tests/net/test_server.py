"""The generator server: sessions, registry, shutdown, and the CLI.

Everything here runs over real loopback TCP sockets on ephemeral
ports, with the package conftest leak-checking scheduler threads *and*
sessions after every test.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.coexpr.scheduler import PipeScheduler, default_scheduler
from repro.coexpr.wire import _HEADER, WIRE_CALL, WIRE_CREDIT, SocketFramer
from repro.errors import PipeConnectionLost, PipeError
from repro.monitor import EventKind, Tracer
from repro.net import GeneratorServer, RemotePipe
from repro.runtime.failure import FAIL


def counter(n):
    return iter(range(n))


def ticker(delay=0.02):
    i = 0
    while True:
        yield i
        i += 1
        time.sleep(delay)


def crasher(n):
    yield from range(n)
    raise ValueError("factory crashed")


class Opaque:
    """Pickles by global reference — forbidden on an untrusting server."""


@pytest.fixture
def server():
    srv = GeneratorServer()
    srv.register("counter", counter)
    srv.register("ticker", ticker)
    srv.register("crasher", crasher)
    with srv:
        yield srv


class TestLifecycle:
    def test_ephemeral_port_resolved_on_start(self, server):
        host, port = server.address
        assert host == "127.0.0.1"
        assert port != 0

    def test_start_is_idempotent(self, server):
        assert server.start() is server

    def test_start_after_shutdown_rejected(self):
        srv = GeneratorServer().start()
        srv.shutdown()
        with pytest.raises(PipeError, match="shut-down"):
            srv.start()

    def test_shutdown_is_idempotent(self, server):
        server.shutdown()
        server.shutdown()


class TestNamedFactories:
    def test_remote_pipe_drains_factory(self, server):
        pipe = RemotePipe(server.address, "counter", args=(10,))
        assert list(pipe.iterate()) == list(range(10))

    def test_batched_stream_preserves_order(self, server):
        pipe = RemotePipe(server.address, "counter", args=(100,), batch=8)
        assert list(pipe.iterate()) == list(range(100))

    def test_bounded_channel_stream(self, server):
        pipe = RemotePipe(server.address, "counter", args=(50,), capacity=4)
        assert list(pipe.iterate()) == list(range(50))

    def test_take_surface(self, server):
        pipe = RemotePipe(server.address, "counter", args=(2,))
        assert pipe.take() == 0
        assert pipe.take() == 1
        assert pipe.take() is FAIL

    def test_factory_error_propagates_after_data(self, server):
        pipe = RemotePipe(server.address, "crasher", args=(5,))
        seen = []
        with pytest.raises(ValueError, match="factory crashed"):
            for value in range(10):
                item = pipe.take()
                if item is FAIL:
                    break
                seen.append(item)
        assert seen == list(range(5))

    def test_unknown_factory_is_a_pipe_error(self, server):
        pipe = RemotePipe(server.address, "no-such-factory")
        with pytest.raises(PipeError, match="no factory"):
            pipe.take()

    def test_unreachable_server_raises_connection_lost(self):
        dead = GeneratorServer().start()
        address = dead.address
        dead.shutdown()
        pipe = RemotePipe(address, "counter", args=(3,))
        with pytest.raises(PipeConnectionLost):
            pipe.take()

    def test_failed_dial_leaves_pipe_retryable(self):
        # The stuck-_started regression: after a failed connect, the
        # next take must retry the dial (and raise again), not block
        # forever on a channel nothing will ever feed.
        dead = GeneratorServer().start()
        address = dead.address
        dead.shutdown()
        pipe = RemotePipe(address, "counter", args=(3,))
        with pytest.raises(PipeConnectionLost):
            pipe.take()
        with pytest.raises(PipeConnectionLost):
            pipe.take()

    def test_register_rejects_non_callable(self, server):
        with pytest.raises(TypeError):
            server.register("bad", 42)

    def test_concurrent_clients(self, server):
        pipes = [
            RemotePipe(server.address, "counter", args=(40,)).start()
            for _ in range(6)
        ]
        results = [list(p.iterate()) for p in pipes]
        assert results == [list(range(40))] * 6
        assert server.stats["served"] == 6


class TestSpawnPolicy:
    def test_spawn_rejected_when_disabled(self):
        from repro.coexpr.patterns import source_pipe

        with GeneratorServer(allow_spawn=False) as srv:
            pipe = source_pipe(
                range(5), backend="remote", remote_address=srv.address
            ).start()
            assert pipe.degraded is None
            with pytest.raises(PipeError, match="allow_spawn"):
                list(pipe.iterate())

    def test_named_factories_still_served_when_spawn_disabled(self):
        with GeneratorServer(allow_spawn=False) as srv:
            srv.register("counter", counter)
            pipe = RemotePipe(srv.address, "counter", args=(7,))
            assert list(pipe.iterate()) == list(range(7))

    def test_non_primitive_args_refused_when_spawn_disabled(self):
        # Without allow_spawn the server decodes frames with the
        # restricted unpickler: an args payload that needs a global
        # lookup never unpickles, and the session dies before the
        # hostile bytes run anything.
        with GeneratorServer(allow_spawn=False) as srv:
            srv.register("counter", counter)
            pipe = RemotePipe(srv.address, "counter", args=(Opaque(),))
            with pytest.raises(PipeConnectionLost):
                pipe.take()

    def test_non_loopback_bind_warns(self):
        srv = GeneratorServer(host="0.0.0.0")
        try:
            with pytest.warns(RuntimeWarning, match="non-loopback"):
                srv.start()
        finally:
            srv.shutdown()

    def test_loopback_bind_does_not_warn(self, recwarn):
        with GeneratorServer():
            pass
        assert not [
            w for w in recwarn if issubclass(w.category, RuntimeWarning)
        ]


class TestShutdownAndChaos:
    def test_graceful_shutdown_closes_open_streams(self, server):
        pipe = RemotePipe(server.address, "ticker", capacity=2)
        assert pipe.take() == 0
        assert pipe.take() == 1
        # wait=False: the drain below is this same thread, so a blocking
        # shutdown would wait on its own consumer.
        server.shutdown(wait=False)
        # The stream ends cleanly: in-flight values delivered, then close.
        while True:
            item = pipe.take(timeout=5.0)
            if item is FAIL:
                break
        deadline = time.monotonic() + 5.0
        while server.stats["active"]:
            assert time.monotonic() < deadline
            time.sleep(0.01)

    def test_kill_sessions_surfaces_connection_lost(self, server):
        pipe = RemotePipe(server.address, "ticker", capacity=2)
        assert pipe.take() == 0
        deadline = time.monotonic() + 5.0
        while not server.active_sessions():
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert server.kill_sessions() == 1
        with pytest.raises(PipeConnectionLost):
            while pipe.take(timeout=5.0) is not FAIL:
                pass

    def test_sessions_tracked_by_scheduler(self, server):
        pipe = RemotePipe(server.address, "ticker", capacity=2)
        assert pipe.take() == 0
        scheduler = default_scheduler()
        # Both sides of the loopback connection are registered: the
        # server session and the client pump worker.
        assert scheduler.tracked_sessions >= 2
        pipe.cancel(join=True, timeout=5.0)

    def test_scheduler_shutdown_reaps_sessions(self):
        scheduler = PipeScheduler()
        srv = GeneratorServer(scheduler=scheduler)
        srv.register("ticker", ticker)
        srv.start()
        pipe = RemotePipe(
            srv.address, "ticker", capacity=2, scheduler=scheduler
        )
        assert pipe.take() == 0
        scheduler.shutdown(timeout=5.0)
        assert scheduler.leaked() == []
        srv.shutdown(wait=False)


class TestReaderLiveness:
    def test_mid_frame_stall_kills_session(self):
        # A client that sends a partial frame and goes silent must not
        # pin the session (two scheduler threads + a socket) forever:
        # the reader kills it after _STALL_INTERVALS heartbeat
        # intervals of no frame progress.
        srv = GeneratorServer(heartbeat_interval=0.05)
        srv.register("counter", counter)
        with srv:
            sock = socket.create_connection(srv.address)
            try:
                framer = SocketFramer(sock)
                framer.send((WIRE_CALL, {"name": "counter", "args": (3,)}))
                framer.send((WIRE_CREDIT, None))
                deadline = time.monotonic() + 5.0
                while not srv.stats["served"]:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                # Half a frame, then silence.
                sock.sendall(_HEADER.pack(100) + b"stalled")
                deadline = time.monotonic() + 5.0
                while srv.stats["active"]:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
            finally:
                sock.close()


class TestSignalHandlers:
    def test_handler_sets_event_instead_of_blocking(self):
        # The handler must only set the returned event — a blocking
        # shutdown inside a signal handler can deadlock or re-enter —
        # so the server is still alive right after delivery and the
        # caller runs the real shutdown.
        srv = GeneratorServer().start()
        old_term = signal.getsignal(signal.SIGTERM)
        old_int = signal.getsignal(signal.SIGINT)
        try:
            stop = srv.install_signal_handlers()
            assert not stop.is_set()
            signal.raise_signal(signal.SIGTERM)
            assert stop.wait(1.0)
            assert srv.is_alive()
        finally:
            signal.signal(signal.SIGTERM, old_term)
            signal.signal(signal.SIGINT, old_int)
            srv.shutdown()


class TestMonitorEvents:
    def test_session_and_connect_events(self, server):
        tracer = Tracer()
        with tracer.lifecycle():
            pipe = RemotePipe(server.address, "counter", args=(5,))
            assert list(pipe.iterate()) == list(range(5))
        kinds = [e.kind for e in tracer.events]
        assert EventKind.NET_CONNECT in kinds
        assert EventKind.NET_SESSION in kinds
        stats = tracer.net_stats()
        # The client node carries the dialed address; the server node is
        # the bare factory name.
        host, port = server.address
        client = stats[f"pipe:counter@{host}:{port}"]
        assert client["connects"] == 1
        assert client["losses"] == 0
        assert client["addresses"] == [server.address]
        assert stats["pipe:counter"]["sessions"] == 1


class TestCli:
    def test_serve_round_trip_and_sigterm(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.net.cli", "--serve",
             "range=builtins:range", "--port", "0"],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("listening on ")
            host, port = line.removeprefix("listening on ").rsplit(":", 1)
            pipe = RemotePipe((host, int(port)), "range", args=(8,))
            assert list(pipe.iterate()) == list(range(8))
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=10)
            assert proc.returncode == 0
            assert "shutdown complete" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_bad_serve_spec_exits_with_error(self):
        from repro.net.cli import main

        with pytest.raises(SystemExit, match="bad --serve spec"):
            main(["--serve", "nonsense"])
