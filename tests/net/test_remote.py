"""``backend="remote"`` end to end: transparency, degradation, recovery.

The acceptance scenario lives here: a three-stage remote pipeline under
supervision survives a mid-stream server-side session kill by
reconnecting and replaying — yielding exactly the sequence the thread
backend yields — with the loss visible in ``Tracer.net_stats()`` and no
leaked workers or sessions afterwards.
"""

from __future__ import annotations

import time

import pytest

from repro.coexpr.dataparallel import DataParallel
from repro.coexpr.patterns import pipeline, source_pipe, stage
from repro.coexpr.pipe import Pipe
from repro.coexpr.scheduler import default_scheduler
from repro.coexpr.supervision import (
    NO_BACKOFF,
    supervise,
    supervised_pipeline,
)
from repro.errors import PipeConnectionLost
from repro.monitor import EventKind, Tracer
from repro.net import GeneratorServer
from repro.net.client import remote_unsafe_reason


# Stage functions must be module-level: a remote body crosses the wire
# by pickle, which serializes functions by qualified name.

def double(x):
    return 2 * x


def negate(x):
    return -x


def increment(x):
    return x + 1


def fan_out(x):
    yield x
    yield x + 100


def slow_increment(x):
    time.sleep(0.005)
    return x + 1


def jitter_increment(x):
    time.sleep(0.001 * (x % 5))
    return x + 1


def crash_on_seven(x):
    if x == 7:
        raise ValueError("x was seven")
    return x


@pytest.fixture
def server():
    with GeneratorServer() as srv:
        yield srv


class TestTransparency:
    """Remote pipes yield exactly what the thread backend yields."""

    def test_source_pipe_streams(self, server):
        pipe = source_pipe(
            range(30), backend="remote", remote_address=server.address
        ).start()
        assert pipe.degraded is None
        assert list(pipe.iterate()) == list(range(30))

    def test_stage_matches_thread_backend(self, server):
        local = list(stage(double, source_pipe(range(25))).start().iterate())
        remote = list(
            stage(
                double,
                range(25),
                backend="remote",
                remote_address=server.address,
            )
            .start()
            .iterate()
        )
        assert remote == local == [2 * x for x in range(25)]

    def test_three_stage_pipeline_matches_thread(self, server):
        stages = (increment, double, negate)
        local = list(pipeline(range(40), *stages).iterate())
        piped = pipeline(
            range(40),
            *stages,
            backend="remote",
            remote_address=server.address,
        )
        assert list(piped.iterate()) == local
        assert piped.degraded is None

    def test_generator_stage_fan_out(self, server):
        local = list(pipeline(range(10), fan_out).iterate())
        remote = list(
            pipeline(
                range(10),
                fan_out,
                backend="remote",
                remote_address=server.address,
            ).iterate()
        )
        assert remote == local

    def test_batched_remote_stream(self, server):
        pipe = source_pipe(
            range(200),
            backend="remote",
            remote_address=server.address,
            batch=16,
        ).start()
        assert list(pipe.iterate()) == list(range(200))

    def test_linger_flush_preserves_order(self, server):
        # The flush-reorder regression: with a jittery producer, a small
        # max_linger, and a fast heartbeat, the session's reader-side
        # linger flush races the sender's batch flush over and over —
        # the stream must still arrive in production order.
        pipe = pipeline(
            range(60),
            jitter_increment,
            backend="remote",
            remote_address=server.address,
            batch=4,
            max_linger=0.01,
            heartbeat_interval=0.02,
        )
        assert list(pipe.iterate()) == [x + 1 for x in range(60)]
        assert pipe.degraded is None

    def test_error_cause_chain_crosses_the_wire(self, server):
        pipe = pipeline(
            range(20),
            crash_on_seven,
            backend="remote",
            remote_address=server.address,
        )
        seen = []
        with pytest.raises(ValueError, match="x was seven") as excinfo:
            for value in pipe.iterate():
                seen.append(value)
        # Data produced before the crash is drained first.
        assert seen == list(range(7))
        assert excinfo.value.remote_traceback

    def test_validation(self):
        coexpr_pipe = source_pipe(range(3), backend="remote",
                                  remote_address=("127.0.0.1", 1))
        assert coexpr_pipe.remote_address == ("127.0.0.1", 1)
        with pytest.raises(ValueError, match="remote_address"):
            Pipe(coexpr_pipe.coexpr, backend="remote")
        with pytest.raises(ValueError, match="backend"):
            Pipe(coexpr_pipe.coexpr, backend="carrier-pigeon")


class TestDegradation:
    """Bodies that cannot cross the wire fall back to threads."""

    def test_unpicklable_body_degrades(self, server):
        secret = object()
        pipe = stage(
            lambda x: (x, id(secret)),
            range(3),
            backend="remote",
            remote_address=server.address,
        ).start()
        assert pipe.degraded is not None
        assert "picklable" in pipe.degraded
        assert [v for v, _ in pipe.iterate()] == [0, 1, 2]

    def test_unreachable_server_degrades(self):
        gone = GeneratorServer().start()
        address = gone.address
        gone.shutdown()
        pipe = source_pipe(
            range(5), backend="remote", remote_address=address
        ).start()
        assert pipe.degraded is not None
        assert "connect" in pipe.degraded
        assert list(pipe.iterate()) == list(range(5))

    def test_degraded_event_emitted(self):
        tracer = Tracer()
        with tracer.lifecycle():
            pipe = stage(
                lambda x: x,
                range(3),
                backend="remote",
                remote_address=("127.0.0.1", 1),
            ).start()
            list(pipe.iterate())
        assert EventKind.DEGRADED in [e.kind for e in tracer.events]

    def test_remote_unsafe_reason_accepts_module_level_bodies(self, server):
        good = source_pipe(
            range(3), backend="remote", remote_address=server.address
        )
        assert remote_unsafe_reason(good) is None


class TestDataParallel:
    def test_map_reduce_matches_thread(self, server):
        import operator

        data = list(range(500))
        dp_remote = DataParallel(
            chunk_size=100, backend="remote", remote_address=server.address
        )
        dp_thread = DataParallel(chunk_size=100)
        expected = list(dp_thread.map_reduce(double, data, operator.add, 0))
        folds = list(dp_remote.map_reduce(double, data, operator.add, 0))
        assert folds == expected
        assert sum(folds) == 2 * sum(data)
        assert server.stats["served"] == 5  # one session per chunk task

    def test_map_flat_matches_thread(self, server):
        data = list(range(120))
        dp_remote = DataParallel(
            chunk_size=30, backend="remote", remote_address=server.address
        )
        expected = list(DataParallel(chunk_size=30).map_flat(double, data))
        assert list(dp_remote.map_flat(double, data)) == expected


class TestWatchdog:
    def test_silent_server_surfaces_connection_lost(self):
        # A fake server that accepts and then never speaks: the client
        # watchdog must fire instead of hanging.
        import socket
        import threading

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        accepted = []

        def quiet_accept():
            sock, _ = listener.accept()
            accepted.append(sock)

        thread = threading.Thread(target=quiet_accept, daemon=True)
        thread.start()
        try:
            pipe = source_pipe(
                range(5),
                backend="remote",
                remote_address=listener.getsockname(),
                heartbeat_interval=0.05,
                heartbeat_timeout=0.3,
            ).start()
            assert pipe.degraded is None
            with pytest.raises(PipeConnectionLost, match="no heartbeat"):
                list(pipe.iterate())
        finally:
            thread.join(5.0)
            for sock in accepted:
                sock.close()
            listener.close()

    def test_kill_mid_stream_is_retryable_loss(self, server):
        pipe = source_pipe(
            range(1000),
            backend="remote",
            remote_address=server.address,
            capacity=2,
        ).start()
        it = pipe.iterate()
        assert next(it) == 0
        server.kill_sessions()
        with pytest.raises(PipeConnectionLost) as excinfo:
            list(it)
        assert excinfo.value.address == server.address


class TestBackpressure:
    def test_credit_bounds_server_runahead(self, server):
        # A bounded client channel with a slow consumer: credit-based
        # flow control must keep the server from racing ahead by more
        # than ~two windows (channel + one replenished slice in flight).
        pipe = source_pipe(
            range(10_000),
            backend="remote",
            remote_address=server.address,
            capacity=4,
        ).start()
        it = pipe.iterate()
        for expected in range(5):
            assert next(it) == expected
            time.sleep(0.02)
            assert len(pipe.out) <= 8
        pipe.cancel(join=True, timeout=5.0)


class TestSupervisedRecovery:
    def test_supervise_reconnects_and_replays(self, server):
        piped = supervise(
            source_pipe(range(60)).coexpr,
            backend="remote",
            remote_address=server.address,
            capacity=2,
            backoff=NO_BACKOFF,
            max_retries=5,
        )
        it = piped.iterate()
        head = [next(it) for _ in range(3)]
        server.kill_sessions()
        assert head + list(it) == list(range(60))
        assert piped.failures >= 1

    def test_acceptance_three_stage_kill_recovery(self, server):
        """The PR acceptance scenario, end to end."""
        stages = (slow_increment, double, negate)
        expected = list(pipeline(range(50), *stages).iterate())

        tracer = Tracer()
        with tracer.lifecycle():
            piped = supervised_pipeline(
                range(50),
                *stages,
                backend="remote",
                remote_address=server.address,
                capacity=4,
                backoff=NO_BACKOFF,
                max_retries=5,
            )
            it = piped.iterate()
            received = [next(it) for _ in range(10)]
            server.kill_sessions()
            received += list(it)

        assert received == expected
        assert piped.failures >= 1

        stats = tracer.net_stats()["pipe:pipeline[3]"]
        assert stats["connects"] >= 2      # original dial + reconnect
        assert stats["sessions"] >= 2      # both server-side sessions
        assert stats["losses"] >= 1
        assert all(server.address == a for a in stats["addresses"])

        # Nothing survives: no worker threads, no sessions, no sockets.
        server.shutdown(wait=True)
        leaked = default_scheduler().leaked(join_timeout=2.0)
        assert leaked == []

    def test_retry_budget_exhausts_on_repeated_kills(self, server):
        piped = supervise(
            source_pipe(range(10_000)).coexpr,
            backend="remote",
            remote_address=server.address,
            capacity=1,
            backoff=NO_BACKOFF,
            max_retries=1,
        )
        it = piped.iterate()
        assert next(it) == 0
        from repro.errors import RetryExhaustedError

        with pytest.raises(RetryExhaustedError):
            while True:
                server.kill_sessions()
                next(it)
