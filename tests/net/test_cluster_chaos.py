"""Cluster chaos acceptance: SIGKILL a replica mid-stream.

The PR's acceptance scenario with *real* process death — three
``junicon-serve`` subprocesses behind a :class:`ServerPool`, one of
them SIGKILLed while serving — plus the ``--stats-interval`` operator
surface.  The in-process (deterministic) failover coverage lives in
``test_cluster.py``; this file is the end-to-end proof that the same
recovery works when the replica really dies.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import pytest

from repro.coexpr.patterns import source_pipe
from repro.coexpr.supervision import NO_BACKOFF, supervise
from repro.monitor import Tracer
from repro.net import ServerPool


def _spawn_server(*extra: str) -> tuple:
    """One ``junicon-serve`` subprocess; returns (proc, (host, port))."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.net.cli", "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("listening on "), f"unexpected banner: {line!r}"
    host, port = line.removeprefix("listening on ").rsplit(":", 1)
    return proc, (host, int(port))


def _reap(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.kill()
    proc.stdout.close()
    proc.stderr.close()
    proc.wait(timeout=10)


@pytest.fixture
def replica_fleet():
    fleet = [_spawn_server() for _ in range(3)]
    try:
        yield fleet
    finally:
        for proc, _ in fleet:
            _reap(proc)


def _consume(remote_address, total=200, kill_after=None, fleet=None):
    """Stream ``range(total)`` under supervision; optionally SIGKILL the
    replica currently serving the stream after *kill_after* items."""
    piped = supervise(
        source_pipe(range(total)).coexpr,
        backend="remote",
        remote_address=remote_address,
        capacity=2,
        backoff=NO_BACKOFF,
        max_retries=5,
    )
    it = piped.iterate()
    if kill_after is None:
        return list(it), piped
    received = [next(it) for _ in range(kill_after)]
    serving = remote_address.last_address("source")
    assert serving is not None
    (victim,) = [proc for proc, address in fleet if address == serving]
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=10)
    received += list(it)
    return received, piped


class TestSigkillFailover:
    def test_killed_replica_yields_identical_sequence(self, replica_fleet):
        # Reference: the same stream against a single live server.
        reference, _ = _consume(replica_fleet[0][1])
        assert reference == list(range(200))

        pool = ServerPool([address for _, address in replica_fleet])
        tracer = Tracer()
        with tracer.lifecycle():
            received, piped = _consume(
                pool, kill_after=5, fleet=replica_fleet
            )
        # Identical sequence: no duplicates, no gaps, order preserved.
        assert received == reference
        assert piped.failures >= 1
        # Exactly one failover: the lost stream reconnected to a
        # different replica exactly once.
        assert pool.stats()["failovers"] == 1
        stats = tracer.cluster_stats()[f"pool:{pool.name}"]
        assert stats["failovers"] == 1
        (transition,) = stats["transitions"]
        assert transition[0] != transition[1]


class TestStatsInterval:
    def test_stats_logged_to_stderr(self):
        proc, (host, port) = _spawn_server("--stats-interval", "0.05")
        try:
            piped = source_pipe(
                range(10), backend="remote", remote_address=(host, port)
            ).start()
            assert list(piped.iterate()) == list(range(10))
            import time

            time.sleep(0.2)  # a few logging ticks past the session
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=10)
            assert proc.returncode == 0
            assert "shutdown complete" in out
            lines = [l for l in err.splitlines() if l.startswith("stats ")]
            assert lines, f"no stats lines on stderr: {err!r}"
            assert f"stats {host}:{port} served=" in lines[-1]
            assert "served=1" in lines[-1]
        finally:
            _reap(proc)

    def test_rejects_non_positive_interval(self):
        from repro.net.cli import main

        with pytest.raises(SystemExit, match="stats-interval"):
            main(["--stats-interval", "0"])
