"""End-to-end deadlines across the backend matrix
(thread|process|remote|async).

The contract under test: a ``deadline`` is one budget for the whole
stream, carried as *remaining seconds* across every boundary, and expiry
is **active** — the producer is stopped (thread flagged, child
terminated, remote session cancelled), the consumer sees
:class:`~repro.errors.PipeDeadlineExceeded`, and nothing leaks.  A plain
per-take timeout keeps raising plain
:class:`~repro.errors.PipeTimeoutError`; supervision retries neither.

Every observable behavior is asserted identically for all four
backends — the tiers must be indistinguishable except for *where* the
expiry was noticed.  The remote tier additionally runs against both
server substrates (threaded and event-loop): nothing on the wire may
reveal which one answered.
"""

from __future__ import annotations

import time

import pytest

from repro.coexpr.dataparallel import DataParallel
from repro.coexpr.patterns import pipeline, source_pipe
from repro.coexpr.supervision import NO_BACKOFF, supervise
from repro.errors import PipeDeadlineExceeded, PipeTimeoutError
from repro.monitor import EventKind, Tracer
from repro.net import AsyncGeneratorServer, GeneratorServer

BACKENDS = ("thread", "process", "remote", "async")


# Module-level sources: the process and remote tiers ship bodies by
# pickle, which serializes functions by qualified name.

def slow_counter():
    value = 0
    while True:
        time.sleep(0.02)
        yield value
        value += 1


def trickle_counter():
    value = 0
    while True:
        time.sleep(0.25)
        yield value
        value += 1


def quick_range():
    return iter(range(20))


def slow_double(x):
    time.sleep(0.02)
    return 2 * x


def crawl_double(x):
    time.sleep(0.05)
    return 2 * x


@pytest.fixture(params=[GeneratorServer, AsyncGeneratorServer])
def server(request):
    with request.param() as srv:
        yield srv


def make_source(backend, server, src, **kwargs):
    if backend == "remote":
        kwargs["remote_address"] = server.address
    return source_pipe(src, backend=backend, **kwargs)


@pytest.mark.parametrize("backend", BACKENDS)
class TestDeadlineMatrix:
    def test_generous_budget_streams_to_completion(self, backend, server):
        piped = make_source(backend, server, quick_range, deadline=30.0).start()
        assert list(piped.iterate()) == list(range(20))

    def test_expiry_raises_deadline_exceeded(self, backend, server):
        piped = make_source(
            backend, server, slow_counter, deadline=0.4
        ).start()
        seen = []
        with pytest.raises(PipeDeadlineExceeded) as excinfo:
            for value in piped.iterate():
                seen.append(value)
        # The budget is also a timeout (supervision's no-retry rule
        # depends on the subclass relation).
        assert isinstance(excinfo.value, PipeTimeoutError)
        # Items delivered before expiry are an exact prefix — expiry
        # never drops or reorders what was produced within budget.
        assert seen == list(range(len(seen)))

    def test_plain_timeout_is_not_a_deadline(self, backend, server):
        piped = make_source(
            backend, server, trickle_counter, take_timeout=0.05
        ).start()
        with pytest.raises(PipeTimeoutError) as excinfo:
            piped.take()
        assert not isinstance(excinfo.value, PipeDeadlineExceeded)
        piped.cancel(join=True, timeout=5.0)

    def test_expired_budget_short_circuits_before_spawn(self, backend, server):
        tracer = Tracer()
        with tracer.lifecycle():
            piped = make_source(backend, server, quick_range, deadline=0.0)
            with pytest.raises(PipeDeadlineExceeded) as excinfo:
                piped.start()
        assert excinfo.value.where == "start"
        kinds = [e.kind for e in tracer.events]
        assert EventKind.DEADLINE_EXPIRED in kinds
        # Nothing was spawned or dialed past budget: no child process,
        # no connection, no server session.
        assert EventKind.SPAWN not in kinds
        assert EventKind.NET_CONNECT not in kinds
        assert server.stats["served"] == 0

    def test_expiry_releases_the_producer(self, backend, pipe_scheduler):
        # Inline server (not the fixture): it must be shut down *before*
        # the leak assertion, or its own accept thread shows up in it.
        with GeneratorServer() as srv:
            piped = make_source(
                backend, srv, slow_counter, deadline=0.3,
                heartbeat_interval=0.05,
            ).start()
            with pytest.raises(PipeDeadlineExceeded):
                list(piped.iterate())
            if backend == "remote":
                limit = time.monotonic() + 2.0
                while srv.stats["active"] and time.monotonic() < limit:
                    time.sleep(0.01)
                assert srv.stats["active"] == 0
        # Reclaim is prompt and complete: worker threads, child
        # processes, and pump sessions all release without the test's
        # teardown having to wait them out.
        assert pipe_scheduler.leaked(join_timeout=2.0) == []

    def test_supervision_does_not_retry_past_budget(self, backend, server):
        kwargs = {"remote_address": server.address} if backend == "remote" else {}
        piped = supervise(
            source_pipe(slow_counter).coexpr,
            backend=backend,
            deadline=0.4,
            backoff=NO_BACKOFF,
            max_retries=5,
            **kwargs,
        )
        with pytest.raises(PipeDeadlineExceeded):
            list(piped.iterate())
        # A stream past its budget is not a crash: no retry was burned,
        # because the replay would be just as far past budget.
        assert piped.failures == 0

    def test_health_stats_record_the_expiry(self, backend, server):
        tracer = Tracer()
        with tracer.lifecycle():
            piped = make_source(
                backend, server, slow_counter, deadline=0.3
            ).start()
            with pytest.raises(PipeDeadlineExceeded):
                list(piped.iterate())
        health = tracer.health_stats()
        expired = {
            node: stats
            for node, stats in health.items()
            if stats["deadline_expired"]
        }
        assert expired, f"no DEADLINE_EXPIRED recorded; health={health}"
        wheres = {w for stats in expired.values() for w in stats["wheres"]}
        assert wheres & {"take", "producer", "session", "start"}
        if backend in ("process", "remote"):
            # The budget visibly crossed the boundary as remaining time.
            propagated = [
                e
                for e in tracer.events
                if e.kind == EventKind.DEADLINE_PROPAGATED
            ]
            assert propagated
            assert all(
                0 < e.value["remaining"] <= 0.3 for e in propagated
            )


class TestDeadlineComposition:
    """One budget end to end through the composition layers."""

    def test_pipeline_shares_one_budget(self):
        piped = pipeline(slow_counter, slow_double, deadline=0.4)
        seen = []
        with pytest.raises(PipeDeadlineExceeded):
            for value in piped.iterate():
                seen.append(value)
        assert seen == [2 * x for x in range(len(seen))]

    def test_remote_pipeline_budget(self, server):
        piped = pipeline(
            slow_counter,
            slow_double,
            backend="remote",
            remote_address=server.address,
            deadline=0.4,
        )
        with pytest.raises(PipeDeadlineExceeded):
            list(piped.iterate())

    def test_dataparallel_budget_stops_the_drain(self):
        # Each chunk needs ~0.5s of work against a 0.3s budget, so the
        # first task's own expiry check fires mid-chunk; max_pending
        # keeps later chunks unspawned (the pre-spawn short-circuit).
        dp = DataParallel(chunk_size=10, max_pending=2, deadline=0.3)
        with pytest.raises(PipeDeadlineExceeded):
            list(dp.map_flat(crawl_double, range(100)))

    def test_dataparallel_generous_budget_completes(self):
        dp = DataParallel(chunk_size=50, deadline=30.0)
        assert list(dp.map_flat(slow_double, range(100))) == [
            2 * x for x in range(100)
        ]

    def test_refresh_does_not_reset_the_clock(self):
        piped = source_pipe(quick_range, deadline=0.2).start()
        assert piped.take() == 0
        time.sleep(0.25)  # burn the whole budget
        refreshed = piped.refresh()
        piped.cancel()
        # The sibling shares the same Deadline object — a restart cannot
        # buy itself a fresh budget.
        assert refreshed.deadline is piped.deadline
        with pytest.raises(PipeDeadlineExceeded):
            refreshed.start()
