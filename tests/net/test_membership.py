"""Live membership: probes, registries, gossip, weights, shared health.

Five layers of coverage:

* **Member parsing** — every spelling (`host:port`, pairs, weighted
  triples, registry dicts) normalizes to ``((host, port), weight)``;
  malformed gossip entries are dropped, not fatal.
* **Weighted ring properties** (hypothesis) — balance within 2x of the
  *weighted* fair share, and minimal remap preserved for weighted
  add/remove (the in-flight-streams guarantee).
* **Sources** — :class:`FileRegistry` mtime watching and torn-write
  tolerance; :class:`GossipMembers` push-pull discovery and its
  additive-only trust posture.
* **Health** — the shared :class:`AddressHealth` registry (TTL decay,
  cross-pool demotion) and :class:`HealthProber`-driven
  ``MEMBER_DOWN``/``MEMBER_UP`` transitions against real servers.
* **Integration** — deterministic ``churn_membership`` chaos, and a
  mid-stream fleet change that leaves the running stream untouched.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coexpr.patterns import source_pipe
from repro.coexpr.supervision import NO_BACKOFF, FaultPlan, supervise
from repro.monitor import Tracer
from repro.net import (
    FileRegistry,
    GeneratorServer,
    GossipMembers,
    HashRing,
    HealthProber,
    ServerPool,
    StaticMembers,
    exchange_peers,
    membership_source,
    probe_address,
    shared_health,
)
from repro.net.membership import (
    AddressHealth,
    as_member,
    parse_host_port,
    parse_wire_members,
)


def _wait_until(predicate, timeout=8.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestMemberParsing:
    def test_every_spelling_normalizes(self):
        assert as_member("10.0.0.1:4000") == (("10.0.0.1", 4000), 1.0)
        assert as_member(("10.0.0.1", 4000)) == (("10.0.0.1", 4000), 1.0)
        assert as_member(["10.0.0.1", 4000, 2.5]) == (("10.0.0.1", 4000), 2.5)
        assert as_member(
            {"host": "10.0.0.1", "port": 4000, "weight": 3}
        ) == (("10.0.0.1", 4000), 3.0)

    @pytest.mark.parametrize(
        "bad",
        [
            "nonsense",
            "host:notaport",
            ("10.0.0.1",),
            ("10.0.0.1", 4000, 2.0, "extra"),
            ("10.0.0.1", "4000"),
            ("10.0.0.1", 4000, 0),
            ("10.0.0.1", 4000, -1.0),
            ("10.0.0.1", True),
            {"host": "10.0.0.1"},
            42,
        ],
    )
    def test_bad_members_rejected(self, bad):
        with pytest.raises(ValueError, match="not a cluster member"):
            as_member(bad)

    def test_parse_host_port(self):
        assert parse_host_port("::1:9000") == ("::1", 9000)
        with pytest.raises(ValueError, match="not a host:port"):
            parse_host_port("9000")

    def test_wire_members_drop_malformed(self):
        payload = [
            ["10.0.0.1", 4000, 1.0],
            ["bad"],
            "10.0.0.2:4001",
            None,
            ["10.0.0.3", 4002, -5],
        ]
        assert parse_wire_members(payload) == [
            (("10.0.0.1", 4000), 1.0),
            (("10.0.0.2", 4001), 1.0),
        ]
        assert parse_wire_members("not-a-list") == []


# Distinct fleets of (address, weight) members; weights span the
# heterogeneous-host range the docs recommend (a 0.5x box next to a
# 4x box), small enough that 128 vnodes keep the balance bound tight.
weighted_fleets = st.lists(
    st.tuples(
        st.integers(min_value=1024, max_value=65535).map(
            lambda port: ("10.0.0.1", port)
        ),
        st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
    ),
    min_size=2,
    max_size=6,
    unique_by=lambda member: member[0],
)


class TestWeightedRingProperties:
    @settings(max_examples=25, deadline=None)
    @given(weighted_fleets)
    def test_balance_within_two_x_of_weighted_fair_share(self, fleet):
        ring = HashRing()
        for node, weight in fleet:
            ring.add(node, weight=weight)
        keys = [f"stream-{i}" for i in range(2000)]
        counts = {node: 0 for node, _ in fleet}
        for key in keys:
            counts[ring.node_for(key)] += 1
        total_weight = sum(weight for _, weight in fleet)
        for node, weight in fleet:
            fair = len(keys) * weight / total_weight
            assert counts[node] <= 2 * fair

    @settings(max_examples=25, deadline=None)
    @given(weighted_fleets, st.integers(min_value=0, max_value=5))
    def test_weighted_removal_remaps_only_the_removed_keys(self, fleet, pick):
        ring = HashRing()
        for node, weight in fleet:
            ring.add(node, weight=weight)
        keys = [f"stream-{i}" for i in range(500)]
        before = {key: ring.node_for(key) for key in keys}
        victim = fleet[pick % len(fleet)][0]
        ring.remove(victim)
        for key in keys:
            if before[key] != victim:
                assert ring.node_for(key) == before[key]

    @settings(max_examples=25, deadline=None)
    @given(weighted_fleets)
    def test_weighted_addition_steals_keys_only_for_the_new_node(self, fleet):
        ring = HashRing()
        for node, weight in fleet[:-1]:
            ring.add(node, weight=weight)
        keys = [f"stream-{i}" for i in range(500)]
        before = {key: ring.node_for(key) for key in keys}
        newcomer, weight = fleet[-1]
        ring.add(newcomer, weight=weight)
        for key in keys:
            after = ring.node_for(key)
            if after != before[key]:
                assert after == newcomer

    def test_weight_scales_points_and_is_retrievable(self):
        ring = HashRing(vnodes=128)
        ring.add("light", weight=1.0)
        ring.add("heavy", weight=2.0)
        assert ring.weight("light") == 1.0
        assert ring.weight("heavy") == 2.0
        assert len(ring._nodes["heavy"]) == 2 * len(ring._nodes["light"])
        with pytest.raises(ValueError, match="weight must be > 0"):
            ring.add("zero", weight=0)

    def test_tiny_weight_still_owns_a_point(self):
        ring = HashRing(vnodes=4)
        ring.add("speck", weight=0.01)
        assert len(ring._nodes["speck"]) == 1


class TestAddressHealth:
    def test_marks_expire_by_ttl(self):
        health = AddressHealth()
        health.mark_down(("10.0.0.1", 1), "dead", ttl=0.05)
        assert health.is_down(("10.0.0.1", 1))
        time.sleep(0.08)
        assert not health.is_down(("10.0.0.1", 1))

    def test_later_deadline_wins(self):
        health = AddressHealth()
        health.mark_down(("10.0.0.1", 1), "first", ttl=10.0)
        health.mark_down(("10.0.0.1", 1), "second", ttl=0.01)
        # The shorter re-mark must not cut the existing memory short.
        assert health.snapshot() == {("10.0.0.1", 1): "first"}

    def test_mark_up_clears_for_everyone(self):
        health = AddressHealth()
        health.mark_down(("10.0.0.1", 1), "dead", ttl=10.0)
        health.mark_up(("10.0.0.1", 1))
        assert not health.is_down(("10.0.0.1", 1))
        assert health.snapshot() == {}

    def test_one_pools_discovery_demotes_for_another(self):
        a, b = ("127.0.0.1", 1), ("127.0.0.1", 2)
        first = ServerPool([a, b], name="first")
        second = ServerPool([a, b], name="second")
        key = "k"
        primary = second.primary(key)
        # Only the *first* pool saw the loss...
        first.note_lost("other-stream", primary, "killed")
        assert not second.suspected(primary)
        # ...but the second routes around it via the shared registry.
        assert second.dial_candidates(key)[-1] == primary
        assert shared_health().is_down(primary)


class TestMembershipSources:
    def test_static_source_never_changes(self):
        source = StaticMembers(["10.0.0.1:1", ("10.0.0.2", 2, 2.0)])
        assert source.initial() == [
            (("10.0.0.1", 1), 1.0),
            (("10.0.0.2", 2), 2.0),
        ]
        assert source.poll(source.initial()) is None

    def test_registry_reads_both_file_shapes(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps([["10.0.0.1", 1], ["10.0.0.2", 2, 2.0]]))
        assert FileRegistry(str(path)).initial() == [
            (("10.0.0.1", 1), 1.0),
            (("10.0.0.2", 2), 2.0),
        ]
        path.write_text(json.dumps({
            "members": [{"host": "10.0.0.3", "port": 3, "weight": 1.5}]
        }))
        assert FileRegistry(str(path)).initial() == [(("10.0.0.3", 3), 1.5)]

    def test_registry_polls_only_on_mtime_change(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps([["10.0.0.1", 1]]))
        registry = FileRegistry(str(path))
        registry.initial()
        assert registry.poll([]) is None  # unchanged mtime: no re-read
        path.write_text(json.dumps([["10.0.0.1", 1], ["10.0.0.2", 2]]))
        os.utime(path, (time.time() + 5, time.time() + 5))
        assert registry.poll([]) == [
            (("10.0.0.1", 1), 1.0),
            (("10.0.0.2", 2), 1.0),
        ]

    def test_registry_keeps_last_good_view_on_torn_write(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps([["10.0.0.1", 1]]))
        registry = FileRegistry(str(path))
        registry.initial()
        path.write_text('{"members": [["10.0.0.1", 1], ["10.0')  # torn
        os.utime(path, (time.time() + 5, time.time() + 5))
        assert registry.poll([]) is None
        path.write_text(json.dumps([["10.0.0.9", 9]]))
        os.utime(path, (time.time() + 10, time.time() + 10))
        assert registry.poll([]) == [(("10.0.0.9", 9), 1.0)]

    def test_registry_missing_file_is_an_empty_start_not_a_crash(self, tmp_path):
        registry = FileRegistry(str(tmp_path / "absent.json"))
        assert registry.initial() == []
        assert registry.poll([]) is None

    def test_pool_follows_the_registry_file(self, tmp_path):
        path = tmp_path / "fleet.json"
        a, b, c = ("127.0.0.1", 1), ("127.0.0.1", 2), ("127.0.0.1", 3)
        path.write_text(json.dumps([list(a), list(b)]))
        tracer = Tracer()
        with tracer.lifecycle():
            pool = ServerPool(
                membership=f"registry:{path}", refresh_interval=0.02
            )
            try:
                assert set(pool.addresses) == {a, b}
                # A registry update: b retires, c (weighted) joins.
                path.write_text(json.dumps([list(a), [c[0], c[1], 2.0]]))
                os.utime(path, (time.time() + 5, time.time() + 5))
                assert _wait_until(lambda: set(pool.addresses) == {a, c})
                assert pool.weight_of(c) == 2.0
            finally:
                pool.close()
        stats = tracer.membership_stats()[f"pool:{pool.name}"]
        assert c in stats["joined"]
        assert b in stats["left"]
        assert stats["sources"] == ["registry"]

    def test_source_string_spellings(self, tmp_path):
        registry = membership_source(f"registry:{tmp_path / 'f.json'}")
        assert isinstance(registry, FileRegistry)
        gossip = membership_source("gossip:10.0.0.1:1,10.0.0.2:2")
        assert isinstance(gossip, GossipMembers)
        assert gossip.seeds == [(("10.0.0.1", 1), 1.0), (("10.0.0.2", 2), 1.0)]
        with pytest.raises(ValueError, match="unknown membership source"):
            membership_source("zookeeper:whatever")
        with pytest.raises(ValueError, match="not a membership source"):
            membership_source(42)


class TestGossip:
    def test_known_peers_lists_self_first(self):
        with GeneratorServer(weight=2.0) as server:
            server.add_peer(("10.0.0.9", 4000), weight=3.0)
            host, port = server.address
            assert server.known_peers() == [
                [host, port, 2.0],
                ["10.0.0.9", 4000, 3.0],
            ]

    def test_advertise_overrides_the_gossiped_address(self):
        with GeneratorServer(advertise=("203.0.113.9", 4321)) as server:
            assert server.advertised_address == ("203.0.113.9", 4321)
            assert server.known_peers()[0] == ["203.0.113.9", 4321, 1.0]
            # Peers matching the advertised identity are "self": skipped.
            server.add_peer(("203.0.113.9", 4321))
            assert len(server.known_peers()) == 1

    def test_exchange_is_push_pull(self):
        with GeneratorServer(weight=2.0) as server:
            fleet = exchange_peers(
                server.address, [(("10.0.0.9", 4000), 3.0)]
            )
            # Pull: the reply leads with the server itself...
            assert fleet[0] == (tuple(server.address), 2.0)
            # ...push: and now includes the member we told it about.
            assert (("10.0.0.9", 4000), 3.0) in fleet
            assert server.known_peers()[1] == ["10.0.0.9", 4000, 3.0]

    def test_pool_discovers_the_fleet_from_one_seed(self):
        with GeneratorServer() as seed, GeneratorServer() as other:
            seed.add_peer(other.address)
            pool = ServerPool(
                membership=GossipMembers([seed.address]),
                refresh_interval=0.02,
            )
            try:
                assert _wait_until(
                    lambda: set(pool.addresses)
                    >= {tuple(seed.address), tuple(other.address)}
                )
            finally:
                pool.close()

    def test_gossip_is_additive_only(self):
        with GeneratorServer() as seed:
            pool = ServerPool(
                membership=GossipMembers([seed.address]),
                refresh_interval=0.02,
            )
            try:
                ghost = ("127.0.0.1", 9)
                pool.add(ghost)  # a member the seed knows nothing about
                time.sleep(0.1)  # several gossip rounds
                # An unauthenticated fleet claim must never evict.
                assert ghost in pool.addresses
                assert pool.stats()["leaves"] == 0
            finally:
                pool.close()

    def test_announce_introduces_a_replacement(self):
        with GeneratorServer() as seed, GeneratorServer() as fresh:
            fresh.add_peer(seed.address)
            assert fresh.announce() == 1
            # The seed now gossips the newcomer to any polling pool.
            peers = [tuple(entry[:2]) for entry in seed.known_peers()]
            assert tuple(fresh.address) in peers


class TestHealthProbing:
    def test_probe_address_against_live_and_dead(self):
        with GeneratorServer() as server:
            assert probe_address(server.address)
            address = server.address
        assert not probe_address(address, timeout=0.5)

    def test_probe_survives_the_restricted_unpickler(self):
        with GeneratorServer(allow_spawn=False) as server:
            assert probe_address(server.address)

    def test_probe_does_not_disturb_a_serving_session(self):
        with GeneratorServer() as server:
            piped = source_pipe(
                range(50), backend="remote", remote_address=server.address
            ).start()
            it = piped.iterate()
            first = [next(it) for _ in range(5)]
            assert probe_address(server.address)
            assert first + list(it) == list(range(50))

    def test_prober_counts_consecutive_misses(self):
        prober = HealthProber(timeout=0.2, failures=3)
        try:
            dead = ("127.0.0.1", 9)
            assert not prober.probe(dead)
            assert prober.record(dead, False) == 1
            assert prober.record(dead, False) == 2
            assert prober.record(dead, True) == 0  # a pong resets
            prober.forget(dead)
            assert prober.record(dead, False) == 1
        finally:
            prober.close()

    def test_pool_transitions_down_then_up(self):
        server = GeneratorServer()
        server.start()
        address = tuple(server.address)
        host, port = address
        tracer = Tracer()
        with tracer.lifecycle():
            pool = ServerPool(
                [address],
                probe_interval=0.05,
                probe_timeout=0.5,
                probe_failures=2,
            )
            try:
                assert _wait_until(lambda: address in pool.up_addresses)
                server.shutdown()
                # Two missed probes: MEMBER_DOWN, off the ring but
                # still a fleet member (dialed last, never excluded).
                assert _wait_until(lambda: address in pool.down_addresses)
                assert address in pool.addresses
                assert pool.dial_candidates("k") == [address]
                assert shared_health().is_down(address)
                # The replica restarts on its old port: first pong
                # brings it straight back.
                server = GeneratorServer(host=host, port=port)
                server.start()
                assert _wait_until(lambda: address in pool.up_addresses)
                assert not shared_health().is_down(address)
            finally:
                pool.close()
                server.shutdown()
        stats = tracer.membership_stats()[f"pool:{pool.name}"]
        assert stats["downs"] >= 1 and address in stats["went_down"]
        assert stats["ups"] >= 1 and address in stats["came_up"]

    def test_down_member_routes_last_up_members_first(self):
        a, b = ("127.0.0.1", 1), ("127.0.0.1", 2)
        pool = ServerPool([a, b])
        try:
            key = "k"
            primary = pool.primary(key)
            other = b if primary == a else a
            assert pool.mark_down(primary, reason="probe said so")
            assert pool.dial_candidates(key) == [other, primary]
            assert pool.primary(key) == other  # ring remapped minimally
            assert pool.mark_up(primary)
            assert pool.dial_candidates(key)[0] == primary
        finally:
            pool.close()

    def test_healthy_stream_reverses_member_down(self):
        a, b = ("127.0.0.1", 1), ("127.0.0.1", 2)
        pool = ServerPool([a, b])
        try:
            pool.mark_down(a, reason="probe said so")
            pool.note_healthy(a)  # a real stream beats any probe verdict
            assert a in pool.up_addresses
            assert pool.stats()["ups"] == 1
        finally:
            pool.close()


def double(x):
    return 2 * x


class TestChurnIntegration:
    def test_churn_membership_rule_fires_at_exact_position(self):
        with GeneratorServer() as one, GeneratorServer() as two:
            pool = ServerPool([one.address])
            ghost = ("127.0.0.1", 9)
            plan = FaultPlan().churn_membership(
                "source",
                pool,
                join=(two.address, (ghost[0], ghost[1], 2.0)),
                leave=(),
                after_items=5,
            )
            pool.fault_plan = plan
            piped = supervise(
                source_pipe(range(40)).coexpr,
                backend="remote",
                remote_address=pool,
                capacity=2,
                backoff=NO_BACKOFF,
            )
            received = list(piped.iterate())
            assert received == list(range(40))
            assert set(pool.addresses) == {
                tuple(one.address), tuple(two.address), ghost,
            }
            assert pool.weight_of(ghost) == 2.0
            stats = pool.stats()
            assert stats["joins"] == 2 and stats["leaves"] == 0

    def test_mid_stream_fleet_change_leaves_the_stream_intact(self):
        with GeneratorServer() as one, GeneratorServer() as two:
            pool = ServerPool([one.address, ("127.0.0.1", 9)])
            piped = supervise(
                source_pipe(range(60)).coexpr,
                backend="remote",
                remote_address=pool,
                capacity=2,
                backoff=NO_BACKOFF,
            )
            it = piped.iterate()
            head = [next(it) for _ in range(10)]
            serving = pool.last_address("source")
            # Live churn around the serving replica: a join and a
            # leave, neither touching the member the stream is on.
            pool.add(two.address)
            pool.remove(("127.0.0.1", 9))
            assert head + list(it) == list(range(60))
            assert pool.last_address("source") == serving  # no re-route
            assert piped.failures == 0
