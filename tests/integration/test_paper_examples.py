"""Integration tests reproducing the paper's figures and examples
end-to-end through the full stack."""

import math

import pytest

from repro.runtime.failure import FAIL


class TestSection2GoalDirected:
    """Section II.A — the prime-multiples walkthrough."""

    def test_decomposed_iterator_product(self, interp):
        interp.load(
            """
            def isprime(n) {
                local d;
                if n < 2 then fail;
                every d := 2 to n - 1 do { if n % d == 0 then fail; };
                return n;
            }
            """
        )
        # (1 to 2) * isprime(4 to 7)
        direct = interp.results("(1 to 2) * isprime(4 to 7)")
        # i=(1 to 2) & j=(4 to 7) & isprime(j) & i*j — the paper's recast
        recast = interp.results(
            "(i := 1 to 2) & (j := 4 to 7) & isprime(j) & i * j"
        )
        assert direct == recast == [5, 7, 10, 14]

    def test_python_generator_expression_equivalence(self, interp):
        """The paper maps the product onto a Python genexpr; check both
        systems agree."""
        interp.load(
            """
            def isprime(n) {
                local d;
                if n < 2 then fail;
                every d := 2 to n - 1 do { if n % d == 0 then fail; };
                return n;
            }
            """
        )

        def py_isprime(x):
            return x >= 2 and all(x % d for d in range(2, x))

        python_version = [
            i * j for i in range(1, 3) for j in range(4, 8) if py_isprime(j)
        ]
        assert interp.results("(1 to 2) * isprime(4 to 7)") == python_version

    def test_alternation_of_function_names(self, interp):
        """(f | g)(x) ≡ f(x) | g(x) — Section II.A."""
        interp.load(
            "def f(x) { return x + 1; }\ndef g(x) { return x * 10; }"
        )
        assert interp.results("(f | g)(5)") == interp.results("f(5) | g(5)")


class TestFigure1Calculus:
    """Figure 1 — the six operators, in Junicon."""

    def test_first_class_and_step(self, interp):
        interp.load("global e; e := <> (1 to 3);")
        assert interp.eval("@e") == 1
        assert interp.eval("@e") == 2

    def test_coexpr_shadowing(self, interp):
        interp.load(
            """
            def shadowed() {
                local x, c;
                x := "before";
                c := |<> x;
                x := "after";
                return [@c, x];
            }
            """
        )
        assert interp.eval("shadowed()") == ["before", "after"]

    def test_pipe_and_promote(self, interp):
        assert interp.results("! |> (1 to 4)") == [1, 2, 3, 4]

    def test_restart_operator(self, interp):
        interp.load("global c2; c2 := |<> (7 to 8); @c2; @c2;")
        assert interp.eval("@c2") is FAIL
        assert interp.eval("@(^c2)") == 7


class TestFigure2Models:
    """Figure 2 — pipeline vs data-parallel decomposition."""

    def test_pipeline_form(self, interp):
        """f(! |> s): stage f applied in the consumer over a piped source."""
        interp.load(
            """
            def src() { suspend 1 to 5; }
            def f(x) { return x * x; }
            def run_pipeline_model() {
                local out; out := [];
                every put(out, f(! |> src()));
                return out;
            }
            """
        )
        assert interp.eval("run_pipeline_model()") == [1, 4, 9, 16, 25]

    def test_data_parallel_form(self, interp):
        """every (c := chunk(s)) do |> f(!c): one pipe per chunk."""
        interp.load(
            """
            def chunk2(e) {
                local c;
                c := [];
                while put(c, @e) do {
                    if *c >= 2 then { suspend c; c := []; };
                };
                if *c > 0 then return c;
            }
            def g(x) { return x + 100; }
            def run_dp_model() {
                local c, tasks, out;
                tasks := []; out := [];
                every c := chunk2(<> (1 to 5)) do tasks::append(|> g(!c));
                every put(out, ! (! tasks));
                return out;
            }
            """
        )
        assert interp.eval("run_dp_model()") == [101, 102, 103, 104, 105]


class TestFigure4MapReduce:
    """Figure 4 — DataParallel in Junicon, via the benchmark module."""

    def test_junicon_mapreduce_matches_reference(self):
        from repro.bench.embedded import EmbeddedSuite
        from repro.bench.workloads import LIGHT, expected_total, generate_lines

        lines = generate_lines(num_lines=6, words_per_line=3)
        suite = EmbeddedSuite(lines, LIGHT, chunk_size=4)
        assert suite.mapreduce() == pytest.approx(expected_total(lines, LIGHT))

    def test_host_dataparallel_equivalent(self):
        """The host-level DataParallel (repro.coexpr) computes the same
        map-reduce as the Junicon one."""
        from repro.coexpr import DataParallel

        data = list(range(50))
        dp = DataParallel(chunk_size=8)
        assert dp.reduce(lambda x: x * 2, data, lambda a, b: a + b, 0) == 2 * sum(data)


class TestSection3PipelineExpression:
    """x * ! |> factorial(! |> sqrt(y)) — Section III.B."""

    def test_two_stage_pipeline(self, interp):
        interp.load(
            """
            def isqrt(y) { return integer(sqrt(y)); }
            def fact(n) {
                local acc, i; acc := 1;
                every i := 1 to n do acc *:= i;
                return acc;
            }
            def staged(ys) {
                suspend fact(! |> isqrt(!ys));
            }
            """
        )
        got = interp.results("10 * staged([1, 4, 9])")
        assert got == [10 * 1, 10 * 2, 10 * 6]


class TestInteroperability:
    """Section IV claims: native types pass transparently both ways."""

    def test_native_collections_into_junicon(self, interp):
        interp.load("def totals(T) { suspend key(T); }")
        table = {"a": 1, "b": 2}
        results = set(interp.namespace["totals"](table))
        assert results == {"a", "b"}

    def test_junicon_structures_out_to_host(self, interp):
        interp.load('def make() { return ["x", table(), set([1])]; }')
        lst = interp.eval("make()")
        assert isinstance(lst[1], dict) and isinstance(lst[2], set)

    def test_host_object_methods_via_native_invoke(self, interp):
        class Greeter:
            def greet(self, name):
                return f"hello {name}"

        interp.namespace["host_obj"] = Greeter()
        assert interp.eval('host_obj::greet("icon")') == "hello icon"

    def test_host_iterates_junicon_generator(self, interp):
        interp.load("def countdown(n) { suspend n to 1 by -1; }")
        assert list(interp.namespace["countdown"](3)) == [3, 2, 1]


class TestWordCountPipelineFidelity:
    """Figure 3 — checked numerically against the straight-Python model."""

    def test_full_embedding_numeric_equality(self, tmp_path):
        from repro.lang.embed import transform_source

        source = (
            "import math\n"
            "LINES = ['ab cd ef', 'gh ij']\n"
            '@<script lang="junicon">\n'
            "def readLines() { suspend ! LINES; }\n"
            "def splitWords(line) { suspend ! line::split(); }\n"
            "def hashWords(line) {\n"
            "    suspend HASH(W2N(splitWords(line)));\n"
            "}\n"
            "@</script>\n"
            "W2N = lambda w: int(str(w), 36)\n"
            "HASH = lambda n: math.sqrt(float(n))\n"
            "total = sum(\n"
            "    v for line in LINES for v in hashWords(line)\n"
            ")\n"
            "expected = sum(\n"
            "    math.sqrt(int(w, 36)) for line in LINES for w in line.split()\n"
            ")\n"
        )
        code = transform_source(source)
        namespace = {}
        exec(compile(code, "<fig3>", "exec"), namespace)
        assert namespace["total"] == pytest.approx(namespace["expected"])
