"""Every example script must run clean (the examples are executable docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every demo narrates what it shows


def test_expression_parser_grammar_reusable(interp):
    """The parser example's grammar is importable source, not just a demo."""
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "examples" / (
        "expression_parser.py"
    )
    spec = importlib.util.spec_from_file_location("expr_example", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # runs main()? no: only on __main__
    interp.load(module.GRAMMAR)
    assert interp.namespace["calc"]("6 * 7").first() == 42
