"""The README's code blocks must actually run (docs-as-tests)."""

import pathlib
import re

import pytest

README = (pathlib.Path(__file__).resolve().parents[2] / "README.md").read_text()


def python_blocks():
    return re.findall(r"```python\n(.*?)```", README, re.DOTALL)


BLOCKS = python_blocks()


def test_readme_has_python_blocks():
    assert len(BLOCKS) >= 3


@pytest.mark.parametrize("index", range(len(BLOCKS)), ids=lambda i: f"block{i}")
def test_readme_python_block_executes(index, capsys):
    namespace: dict = {}
    exec(compile(BLOCKS[index], f"<README block {index}>", "exec"), namespace)


def test_quickstart_block_results():
    """The first block's claims hold, not just execute."""
    from repro import DataParallel, activate, coexpr, promote

    c = coexpr(lambda x: iter(range(x)), env=(3,))
    assert (activate(c), activate(c)) == (0, 1)
    assert list(promote(c)) == [2]
    dp = DataParallel(chunk_size=1000)
    assert dp.reduce(lambda x: x * x, range(10_000), lambda a, b: a + b, 0) == sum(
        x * x for x in range(10_000)
    )


def test_interpreter_block_results():
    from repro.lang import JuniconInterpreter

    junicon = JuniconInterpreter()
    junicon.load(
        """
        def isprime(n) {
            local d;
            if n < 2 then fail;
            every d := 2 to n - 1 do { if n % d == 0 then fail; };
            return n;
        }
        """
    )
    assert junicon.results("(1 to 2) * isprime(4 to 7)") == [5, 7, 10, 14]
    assert junicon.results("! |> isprime(2 to 30)") == [
        2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
    ]
