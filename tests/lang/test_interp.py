"""Goal-directed language semantics through the interpreter.

These are the language-level acceptance tests: every construct of the
dialect evaluated end-to-end (parse → normalize → transform → exec).
"""

import pytest

from repro.errors import ParseError
from repro.runtime.failure import FAIL
from repro.lang.interp import JuniconInterpreter, is_complete


class TestGoalDirectedBasics:
    def test_paper_section2_product(self, interp):
        assert interp.results("(1 to 2) * (4 to 7)") == [
            4, 5, 6, 7, 8, 10, 12, 14
        ]

    def test_prime_multiples_with_filter(self, interp):
        interp.load(
            """
            def isprime(n) {
                local d;
                if n < 2 then fail;
                every d := 2 to n - 1 do { if n % d == 0 then fail; };
                return n;
            }
            """
        )
        assert interp.results("(1 to 2) * isprime(4 to 7)") == [5, 7, 10, 14]

    def test_failure_is_not_an_error(self, interp):
        assert interp.eval("1 < 0") is FAIL

    def test_comparison_returns_right_operand(self, interp):
        assert interp.eval("1 < 2") == 2

    def test_comparison_chaining(self, interp):
        assert interp.eval("1 <= 5 <= 10") == 10
        assert interp.eval("1 <= 50 <= 10") is FAIL

    def test_alternation(self, interp):
        assert interp.results('1 | "two" | 3') == [1, "two", 3]

    def test_conjunction_filters(self, interp):
        # only even numbers survive the test
        assert interp.results("(x := 1 to 6) & x % 2 == 0 & x") == [2, 4, 6]

    def test_backtracking_search(self, interp):
        # find pairs summing to 5
        got = interp.results(
            "(a := 1 to 4) & (b := 1 to 4) & (a + b == 5) & [a, b]"
        )
        assert got == [[1, 4], [2, 3], [3, 2], [4, 1]]

    def test_limitation(self, interp):
        assert interp.results("(1 to 100) \\ 4") == [1, 2, 3, 4]

    def test_repeated_alternation(self, interp):
        assert interp.results("|(1 | 2) \\ 5") == [1, 2, 1, 2, 1]

    def test_not(self, interp):
        assert interp.eval("not (1 < 0)") is None
        assert interp.eval("not (0 < 1)") is FAIL

    def test_mutual_evaluation_parens(self, interp):
        assert interp.results("(1, 2, 3)") == [3]


class TestValuesAndOperators:
    def test_arithmetic(self, interp):
        assert interp.eval("7 / 2") == 3
        assert interp.eval("7.0 / 2") == 3.5
        assert interp.eval("2 ^ 10") == 1024
        assert interp.eval("-7 % 3") == -1

    def test_string_ops(self, interp):
        assert interp.eval('"ab" || "cd"') == "abcd"
        assert interp.eval('*"hello"') == 5
        assert interp.eval('"a" << "b"') == "b"

    def test_list_ops(self, interp):
        assert interp.eval("[1] ||| [2, 3]") == [1, 2, 3]
        assert interp.eval("*[1, 2]") == 2

    def test_cset_literal_and_ops(self, interp):
        assert interp.eval("*('ab' ++ 'bc')") == 3

    def test_value_equality(self, interp):
        assert interp.eval("3 == 3") == 3
        assert interp.eval('"x" == "x"') == "x"
        assert interp.eval('3 == "3"') is FAIL

    def test_null_tests(self, interp):
        interp.load("global u; u := &null;")
        assert interp.eval("/u") is None
        assert interp.eval("\\u") is FAIL
        interp.load("global w; w := 1;")
        assert interp.eval("\\w") == 1

    def test_default_value_idiom(self, interp):
        interp.load("global cfg;")
        interp.eval("/cfg := 10")
        assert interp.eval("cfg") == 10
        interp.eval("/cfg := 99")  # already bound: no effect
        assert interp.eval("cfg") == 10

    def test_swap(self, interp):
        interp.load("global a, b; a := 1; b := 2; a :=: b;")
        assert interp.eval("a") == 2
        assert interp.eval("b") == 1

    def test_size_of_coexpression(self, interp):
        interp.load("global c; c := |<> (1 to 5); @c; @c;")
        assert interp.eval("*c") == 2

    def test_random_operator(self, interp):
        value = interp.eval("?10")
        assert 1 <= value <= 10

    def test_radix_literal(self, interp):
        assert interp.eval("16rff") == 255

    def test_explicit_deref(self, interp):
        interp.load("global dv; dv := 5;")
        assert interp.eval(".dv + 1") == 6

    def test_leading_dot_real(self, interp):
        assert interp.eval(".5 + 1") == 1.5  # .5 lexes as a real literal


class TestSubscripts:
    def test_one_based_indexing(self, interp):
        interp.load("global L; L := [10, 20, 30];")
        assert interp.eval("L[1]") == 10
        assert interp.eval("L[-1]") == 30
        assert interp.eval("L[9]") is FAIL

    def test_subscript_assignment(self, interp):
        interp.load("global L; L := [1, 2]; L[2] := 99;")
        assert interp.eval("L") == [1, 99]

    def test_string_section(self, interp):
        assert interp.eval('"abcdef"[2:4]') == "bc"
        assert interp.eval('"abcdef"[2+:3]') == "bcd"

    def test_table_autovivification(self, interp):
        interp.load('global T; T := table(); T["k"] := 5;')
        assert interp.eval('T["k"]') == 5
        assert interp.eval('T["missing"]') is None

    def test_element_generation_assigns(self, interp):
        interp.load("global L; L := [1, 2, 3]; every !L +:= 10;")
        assert interp.eval("L") == [11, 12, 13]

    def test_bang_string(self, interp):
        assert interp.results('!"abc"') == ["a", "b", "c"]


class TestControlFlow:
    def test_if_expression_value(self, interp):
        assert interp.eval('if 1 < 2 then "yes" else "no"') == "yes"
        assert interp.eval('if 2 < 1 then "yes" else "no"') == "no"

    def test_while_accumulates(self, interp):
        interp.load(
            """
            def squares_below(n) {
                local out, i;
                out := [];
                i := 1;
                while i * i < n do { put(out, i * i); i +:= 1; };
                return out;
            }
            """
        )
        assert interp.eval("squares_below(30)") == [1, 4, 9, 16, 25]

    def test_until(self, interp):
        interp.load(
            """
            def count_to(n) {
                local i; i := 0;
                until i >= n do i +:= 1;
                return i;
            }
            """
        )
        assert interp.eval("count_to(4)") == 4

    def test_every_with_break_value(self, interp):
        interp.load(
            """
            def first_multiple(n, limit) {
                every i := 1 to limit do {
                    if i % n == 0 then break i;
                };
            }
            """
        )
        # `break i` gives the loop i's outcome; the method falls off the
        # end afterwards, so wrap with suspend to see it.
        interp.load(
            """
            def fm(n, limit) {
                suspend every i := 1 to limit do {
                    if i % n == 0 then break i;
                };
            }
            """
        )
        assert interp.eval("fm(7, 30)") == 7

    def test_repeat_with_break(self, interp):
        interp.load(
            """
            def three() {
                local n; n := 0;
                repeat { n +:= 1; if n == 3 then break; };
                return n;
            }
            """
        )
        assert interp.eval("three()") == 3

    def test_case(self, interp):
        interp.load(
            """
            def describe(x) {
                return case x of {
                    0: "zero";
                    1 | 2 | 3: "small";
                    default: "big"
                };
            }
            """
        )
        assert interp.eval("describe(0)") == "zero"
        assert interp.eval("describe(2)") == "small"
        assert interp.eval("describe(50)") == "big"

    def test_next_statement(self, interp):
        interp.load(
            """
            def odds_only(n) {
                local out; out := [];
                every i := 1 to n do {
                    if i % 2 == 0 then next;
                    put(out, i);
                };
                return out;
            }
            """
        )
        assert interp.eval("odds_only(6)") == [1, 3, 5]


class TestProcedures:
    def test_suspend_generates(self, interp):
        interp.load("def evens(n) { suspend 0 to n by 2; }")
        assert interp.results("evens(8)") == [0, 2, 4, 6, 8]

    def test_procedure_failure(self, interp):
        interp.load("def nope() { fail; }")
        assert interp.eval("nope()") is FAIL
        assert interp.results("nope()") == []

    def test_fall_off_end_fails(self, interp):
        interp.load("def noresult() { 1 + 1; }")
        assert interp.eval("noresult()") is FAIL

    def test_recursion(self, interp):
        interp.load(
            """
            def fib(n) {
                if n <= 1 then return n;
                return fib(n - 1) + fib(n - 2);
            }
            """
        )
        assert interp.eval("fib(10)") == 55

    def test_variadic_calls(self, interp):
        interp.load("def second(a, b) { return b; }")
        assert interp.eval("second(1, 2)") == 2
        assert interp.eval("second(1)") is None

    def test_procedure_as_value(self, interp):
        interp.load(
            """
            def inc(x) { return x + 1; }
            def apply_twice(f, x) { return f(f(x)); }
            """
        )
        assert interp.eval("apply_twice(inc, 5)") == 7

    def test_alternation_of_procedures(self, interp):
        """(f | g)(x) applies each procedure in turn (Section II.A)."""
        interp.load(
            """
            def double(x) { return 2 * x; }
            def square(x) { return x * x; }
            """
        )
        assert interp.results("(double | square)(5)") == [10, 25]

    def test_mutual_recursion(self, interp):
        interp.load(
            """
            def is_even(n) { if n == 0 then return "yes"; return is_odd(n - 1); }
            def is_odd(n) { if n == 0 then fail; return is_even(n - 1); }
            """
        )
        assert interp.eval("is_even(10)") == "yes"
        assert interp.eval("is_even(7)") is FAIL

    def test_classic_procedure_end_form(self, interp):
        interp.load(
            """
            procedure triple(x)
                return 3 * x
            end
            """
        )
        assert interp.eval("triple(4)") == 12


class TestStringScanning:
    def test_scan_expression(self, interp):
        assert interp.results('"a b c" ? upto(&letters)') == [1, 3, 5]

    def test_word_splitter(self, interp):
        interp.load(
            r"""
            def words(s) {
                s ? while tab(upto(&letters)) do
                    suspend tab(many(&letters)) \ 1;
            }
            """
        )
        assert interp.results('words("the quick fox")') == ["the", "quick", "fox"]

    def test_pos_and_subject_keywords(self, interp):
        assert interp.eval('"hello" ? (tab(3) & &pos)') == 3
        assert interp.eval('"hello" ? &subject') == "hello"

    def test_tab_match_prefix(self, interp):
        assert interp.eval('"icon rocks" ? (="icon" & &pos)') == 5


class TestClassesAndRecords:
    def test_class_with_methods(self, interp):
        interp.load(
            """
            class Stack(items) {
                def push_item(x) { items::append(x); return self; }
                def depth() { return *items; }
            }
            """
        )
        ns = interp.namespace
        stack = ns["Stack"]([])
        stack.push_item(1).first()
        stack.push_item(2).first()
        assert stack.depth().first() == 2

    def test_field_access_from_junicon(self, interp):
        interp.load(
            """
            record pair(a, b)
            def sum_pair(p) { return p.a + p.b; }
            """
        )
        ns = interp.namespace
        assert interp.namespace["sum_pair"](ns["pair"](3, 4)).first() == 7

    def test_field_assignment_from_junicon(self, interp):
        interp.load(
            """
            record cellr(v)
            def bump(c) { c.v +:= 1; return c.v; }
            """
        )
        ns = interp.namespace
        cell = ns["cellr"](5)
        assert ns["bump"](cell).first() == 6
        assert cell.v == 6


class TestConcurrency:
    def test_pipe_generator(self, interp):
        interp.load("def doubles(L) { suspend 2 * !L; }")
        assert interp.results("! |> doubles([1, 2, 3])") == [2, 4, 6]

    def test_coexpr_stepping(self, interp):
        interp.load("global c; c := |<> (10 to 30 by 10);")
        assert interp.eval("@c") == 10
        assert interp.eval("@c") == 20
        assert interp.eval("@c") == 30
        assert interp.eval("@c") is FAIL

    def test_refresh(self, interp):
        interp.load("global c, d; c := |<> (1 to 2); @c; @c; d := ^c;")
        assert interp.eval("@d") == 1

    def test_coexpr_shadows_locals(self, interp):
        interp.load(
            """
            def snapshot() {
                local x, c;
                x := 1;
                c := |<> x;
                x := 99;
                return @c;
            }
            """
        )
        assert interp.eval("snapshot()") == 1

    def test_first_class_generator(self, interp):
        interp.load("global g; g := <> (5 to 7);")
        assert interp.eval("@g") == 5
        assert interp.eval("@g") == 6

    def test_pipeline_in_expression(self, interp):
        interp.load("def halves(L) { suspend (!L) / 2; }")
        got = interp.results("! |> halves([10, 20, 30])")
        assert got == [5, 10, 15]


class TestNativeInterop:
    def test_native_method_invocation(self, interp):
        assert interp.eval('"a,b,c"::split(",")') == ["a", "b", "c"]

    def test_native_call_chains(self, interp):
        assert interp.eval('" pad "::strip()::upper()') == "PAD"

    def test_python_function_in_namespace(self, interp):
        interp.namespace["pyfn"] = lambda x: x * 3
        assert interp.eval("pyfn(7)") == 21

    def test_python_generator_function_delegates(self, interp):
        def pairs(n):
            for i in range(n):
                yield i

        interp.namespace["pairs"] = pairs
        assert interp.results("pairs(3)") == [0, 1, 2]

    def test_builtin_fallback(self, interp):
        assert interp.eval("sqrt(16)") == 4.0


class TestSessionBehaviour:
    def test_run_mixed_declarations_and_statements(self, interp):
        result = interp.run("def f(x) { return x * 2; }\nf(21)")
        assert result == 42

    def test_run_only_declarations_returns_none(self, interp):
        assert interp.run("def g() { return 1; }") is None

    def test_globals_persist_across_inputs(self, interp):
        interp.run("counter := 10")
        assert interp.run("counter + 1") == 11

    def test_expression_node_reusable(self, interp):
        node = interp.expression("1 to 3")
        assert list(node) == [1, 2, 3]
        assert list(node) == [1, 2, 3]

    def test_results_limit(self, interp):
        assert interp.results("seq(1)", limit=4) == [1, 2, 3, 4]

    def test_iter_lazy(self, interp):
        stream = interp.iter("seq(0, 5)")
        assert next(stream) == 0
        assert next(stream) == 5


class TestIsComplete:
    def test_complete_expressions(self):
        assert is_complete("1 + 2")
        assert is_complete("def f() { return 1; }")

    def test_unbalanced_braces(self):
        assert not is_complete("def f() {")
        assert not is_complete("f(1,")

    def test_open_string(self):
        assert not is_complete('"abc')

    def test_parse_error_means_incomplete(self):
        assert not is_complete("if x then")
