"""Grammar fuzzing over the three execution engines.

The fixed corpus in ``test_differential.py`` pins known shapes; this
harness generates *well-formed* Junicon programs from a bounded grammar
of deterministic operations (no ``?`` random, no mutable keywords) and
cross-checks the full result sequence on all three engines:

* interactive (`JuniconInterpreter`),
* compiled (`transform_program`),
* optimized (`transform_program(optimize=True)`).

The grammar deliberately mixes shapes the optimizer lowers natively
(alternation, conjunction, limitation, to-by, arithmetic, every/while)
so fuzzing exercises both the lowered code paths *and* the
interpreted/optimized boundary.

``REPRO_HYPOTHESIS_EXAMPLES`` scales the example count (default 30; CI's
differential job runs more).  ``derandomize=True`` keeps runs
reproducible under the suite watchdog.  Shrunk failures print the
offending Junicon source via :func:`hypothesis.note`.
"""

import os

from hypothesis import HealthCheck, given, note, settings
from hypothesis import strategies as st

from repro.lang.interp import JuniconInterpreter
from repro.lang.transform import transform_program

EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "30"))

# -- the grammar -------------------------------------------------------------
#
# Expressions are built as source strings, fully parenthesized so operator
# precedence cannot differ between what the fuzzer meant and what the
# parser built.  All leaves are small: ranges yield at most 5 results and
# literals stay single-digit, so even a product of several generators
# stays well under the test watchdog.

_literals = st.integers(0, 6).map(str)
_ranges = st.tuples(st.integers(1, 3), st.integers(3, 5)).map(
    lambda t: f"({t[0]} to {t[1]})"
)
_stepped = st.sampled_from(
    ["(1 to 5 by 2)", "(2 to 8 by 3)", "(5 to 1 by -2)", "(9 to 3 by -3)"]
)


def _extend(children):
    binary = st.sampled_from(["+", "-", "*", "|", "&", "<", "<=", ">", ">="])
    pair = st.tuples(children, binary, children).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    )
    limited = st.tuples(children, st.integers(1, 4)).map(
        lambda t: f"({t[0]} \\ {t[1]})"
    )
    modulo = st.tuples(children, st.integers(2, 5)).map(
        lambda t: f"({t[0]} % {t[1]})"
    )
    negated = children.map(lambda e: f"(not {e})")
    return st.one_of(pair, limited, modulo, negated)


def _expressions(extra_atoms=()):
    base = st.one_of(_literals, _ranges, _stepped, *map(st.just, extra_atoms))
    return st.recursive(base, _extend, max_leaves=6)


#: Three program templates: a bare suspend, an every-loop over a bound
#: variable the expression may reference, and a while-loop counter.
_programs = st.one_of(
    _expressions().map(lambda e: f"def gen() {{ suspend {e}; }}"),
    _expressions(extra_atoms=("i",)).map(
        lambda e: f"def gen() {{ local i; every i := 1 to 4 do suspend {e}; }}"
    ),
    _expressions(extra_atoms=("i",)).map(
        lambda e: "def gen() { local i; i = 0; "
        f"while (i := i + 1) <= 3 do suspend {e}; }}"
    ),
)


# -- the engines -------------------------------------------------------------


def _run_interactive(source: str) -> list:
    interp = JuniconInterpreter()
    interp.run(source)
    return interp.results("gen()")


def _run_compiled(source: str, optimize: bool) -> list:
    code = transform_program(source, optimize=optimize)
    namespace: dict = {}
    exec(compile(code, "<fuzz>", "exec"), namespace)
    return list(namespace["gen"]())


@settings(
    max_examples=EXAMPLES,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(program=_programs)
def test_fuzzed_programs_agree(program):
    note(f"junicon source: {program}")
    interactive = _run_interactive(program)
    compiled = _run_compiled(program, optimize=False)
    optimized = _run_compiled(program, optimize=True)
    assert compiled == interactive, (
        f"compiled diverged on: {program}\n"
        f"  interactive: {interactive!r}\n  compiled: {compiled!r}"
    )
    assert optimized == interactive, (
        f"optimized diverged on: {program}\n"
        f"  interactive: {interactive!r}\n  optimized: {optimized!r}"
    )


@settings(
    max_examples=max(EXAMPLES // 3, 10),
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(program=_programs)
def test_fuzzed_programs_are_lowered(program):
    """The fuzz grammar stays inside the optimizer's covered shapes: every
    generated program must actually take the native-generator path (no
    silent whole-method fallback), so the agreement test above genuinely
    exercises lowered code."""
    note(f"junicon source: {program}")
    code = transform_program(program, optimize=True)
    namespace: dict = {}
    exec(compile(code, "<fuzz>", "exec"), namespace)
    doc = namespace["gen"].__doc__ or ""
    assert "[optimized]" in doc, f"not lowered: {program}"
