"""Second round of language semantics: errors, scanning assignment,
structure mutation, and interop edge cases."""

import pytest

from repro.errors import IconTypeError, IconValueError
from repro.runtime.failure import FAIL


class TestRuntimeErrors:
    def test_type_errors_surface_as_icon_errors(self, interp):
        with pytest.raises(IconTypeError):
            interp.eval('"abc" + 1')

    def test_division_by_zero(self, interp):
        with pytest.raises(IconValueError):
            interp.eval("1 / 0")

    def test_size_of_number_is_digit_count(self, interp):
        assert interp.eval("*1234") == 4

    def test_invocation_of_null_errors(self, interp):
        from repro.errors import IconNotAFunctionError

        interp.load("global nothing;")
        with pytest.raises(IconNotAFunctionError):
            interp.eval("nothing(1)")


class TestScanningAssignment:
    def test_assign_pos(self, interp):
        assert interp.eval('"abcdef" ? (&pos := 3 & tab(0))') == "cdef"

    def test_assign_subject_resets_pos(self, interp):
        got = interp.eval('"xx" ? (&subject := "hello" & tab(0))')
        assert got == "hello"

    def test_pos_out_of_range_fails(self, interp):
        assert interp.eval('"ab" ? (&pos := 99)') is FAIL

    def test_move_consumes(self, interp):
        assert interp.eval('"hello" ? (move(2) || move(1))') == "hel"

    def test_scan_is_expression(self, interp):
        # scanning yields the body's results; usable mid-expression
        assert interp.eval('("abc" ? tab(0)) || "!"') == "abc!"


class TestStructureMutation:
    def test_augmented_subscript(self, interp):
        interp.load("global L; L := [1, 2, 3]; L[2] +:= 10;")
        assert interp.eval("L") == [1, 12, 3]

    def test_table_augmented_update(self, interp):
        interp.load('global T; T := table(0); T["k"] +:= 1; T["k"] +:= 1;')
        assert interp.eval('T["k"]') == 2

    def test_string_subscript_replacement(self, interp):
        interp.load('global s; s := "abc"; s[2] := "X";')
        assert interp.eval("s") == "aXc"

    def test_record_field_swap(self, interp):
        interp.load(
            """
            record pt(x, y)
            global p; p := pt(1, 2);
            p.x :=: p.y;
            """
        )
        assert interp.eval("p.x") == 2
        assert interp.eval("p.y") == 1

    def test_push_pop_queue_stack(self, interp):
        interp.load("global q; q := [];")
        interp.eval("put(q, 1) & put(q, 2) & push(q, 0)")
        assert interp.eval("q") == [0, 1, 2]
        assert interp.eval("pop(q)") == 0
        assert interp.eval("pull(q)") == 2


class TestGeneratorSubtleties:
    def test_every_drives_generator_with_side_effects(self, interp):
        interp.load(
            """
            global log; log := [];
            def noisy(n) {
                local i;
                every i := 1 to n do { put(log, i); suspend i; };
            }
            """
        )
        assert interp.results("noisy(3)") == [1, 2, 3]
        assert interp.eval("log") == [1, 2, 3]

    def test_bounded_expression_stops_generation(self, interp):
        interp.load(
            """
            global count; count := 0;
            def counted() { count +:= 1; suspend count; }
            def once() { counted(); return count; }
            """
        )
        assert interp.eval("once()") == 1  # statement bounding: one result

    def test_alternation_backtracks_assignments(self, interp):
        # x gets 1; the conjunction fails; alternation retries with 10
        got = interp.eval("((x := 1) & (x > 5) & x) | x")
        assert got == 1  # plain := is NOT reversible: x stays 1

    def test_reversible_assignment_in_search(self, interp):
        interp.load("global y; y := 0;")
        got = interp.eval("((y <- 7) & (y > 10) & y) | y")
        assert got == 0  # <- undid the 7 when the test failed

    def test_limit_applies_to_suspension(self, interp):
        interp.load("def infinite() { suspend seq(1); }")
        assert interp.results("infinite() \\ 5") == [1, 2, 3, 4, 5]

    def test_nested_every_products(self, interp):
        interp.load(
            """
            def grid(n) {
                local out, i, j;
                out := [];
                every (i := 1 to n) & (j := 1 to n) do put(out, [i, j]);
                return out;
            }
            """
        )
        assert interp.eval("grid(2)") == [[1, 1], [1, 2], [2, 1], [2, 2]]


class TestKeywordsInLanguage:
    def test_digits_and_letters(self, interp):
        assert interp.eval("*&digits") == 10
        assert interp.eval('"3" ? tab(upto(&digits))') == ""

    def test_random_seeding(self, interp):
        interp.eval("&random := 42")
        first = interp.eval("?1000")
        interp.eval("&random := 42")
        assert interp.eval("?1000") == first

    def test_time_advances(self, interp):
        assert isinstance(interp.eval("&time"), int)

    def test_null_propagation(self, interp):
        assert interp.eval("&null") is None
        assert interp.eval("type(&null)") == "null"


class TestHostInterop:
    def test_junicon_method_usable_as_python_callable(self, interp):
        interp.load("def triple(x) { return 3 * x; }")
        triple = interp.namespace["triple"]
        assert [triple(i).first() for i in range(3)] == [0, 3, 6]

    def test_host_dict_as_icon_table(self, interp):
        interp.namespace["cfg"] = {"depth": 3}
        assert interp.eval('cfg["depth"]') == 3
        interp.eval('cfg["width"] := 4')
        assert interp.namespace["cfg"]["width"] == 4

    def test_host_list_mutated_in_place(self, interp):
        shared = [1, 2, 3]
        interp.namespace["shared"] = shared
        interp.eval("every !shared *:= 2")
        assert shared == [2, 4, 6]

    def test_icon_sizes_on_host_objects(self, interp):
        interp.namespace["arr"] = [0] * 7
        assert interp.eval("*arr") == 7

    def test_python_exception_propagates_with_traceback(self, interp):
        def boom():
            raise ConnectionError("host failure")

        interp.namespace["boom"] = boom
        with pytest.raises(ConnectionError, match="host failure"):
            interp.eval("boom()")


class TestCsetsInLanguage:
    def test_cset_literal_membership_via_upto(self, interp):
        assert interp.results("upto('ab', \"xaby\")") == [2, 3]

    def test_complement_operator(self, interp):
        assert interp.eval("*(~'a')") == 255

    def test_set_algebra_chain(self, interp):
        assert interp.eval("string(('ab' ++ 'cd') -- 'b')") == "acd"
