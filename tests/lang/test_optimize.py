"""Unit and golden-file tests for the optimizing compile target.

The golden files under ``tests/lang/goldens/`` pin the exact Python the
optimizer emits for representative programs — including one *fallback*
golden proving an uncovered shape (string scanning) defers cleanly to an
embedded interpreted subtree rather than miscompiling, and one
*whole-method* fallback (an ``initial`` clause) where the optimizer
declines the unit entirely.

Regenerate after an intentional emitter change with::

    REPRO_REGEN_GOLDENS=1 python -m pytest tests/lang/test_optimize.py

and review the diff like any other source change.
"""

import os
import pathlib

import pytest

from repro.lang.optimize import emit_method_optimized, resolve_optimize
from repro.lang.parser import parse
from repro.lang.transform import CodeWriter, transform_program

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
REGEN = os.environ.get("REPRO_REGEN_GOLDENS", "") not in ("", "0")

#: (name, junicon source, expected-lowered) — one method per program.
GOLDEN_PROGRAMS = [
    (
        "counting",
        "def counting() { suspend 1 to 10; }",
        True,
    ),
    (
        "squares_every",
        "def squares() { local i; every i := 1 to 8 do suspend i * i; }",
        True,
    ),
    (
        "conjunction_filter",
        "def keep() { local x; suspend (x := 1 to 12) & x % 3 == 0 & x; }",
        True,
    ),
    (
        "limited_alternation",
        'def pick() { suspend (1 | "two" | 3) \\ 2; }',
        True,
    ),
    (
        "while_accumulate",
        """
        def totals(n) {
            local total, i;
            total = 0; i = 0;
            while (i := i + 1) <= n do {
                total := total + i;
                suspend total;
            };
        }
        """,
        True,
    ),
    (
        "fallback_scan",
        '''
        def words(s) {
            s ? while tab(upto(&letters)) do
                suspend tab(many(&letters)) \\ 1;
        }
        ''',
        True,
    ),
    (
        "whole_method_fallback",
        """
        def counter() {
            initial count := 0;
            count := count + 1;
            return count;
        }
        """,
        False,
    ),
]


def _lower(source: str):
    """Run just the optimizer's method emitter over one declaration."""
    program = parse(source)
    method = program.body[0]
    writer = CodeWriter()
    lowered = emit_method_optimized(writer, method, module_globals=set())
    return lowered, writer.text()


@pytest.mark.parametrize(
    "name,source,expect_lowered",
    GOLDEN_PROGRAMS,
    ids=[entry[0] for entry in GOLDEN_PROGRAMS],
)
def test_golden_emission(name, source, expect_lowered):
    lowered, text = _lower(source)
    assert lowered == expect_lowered, (
        f"{name}: lowered={lowered}, expected {expect_lowered}"
    )
    header = f"# lowered: {lowered}\n# source: {' '.join(source.split())}\n"
    rendered = header + text
    golden_path = GOLDEN_DIR / f"{name}.py.golden"
    if REGEN:
        golden_path.write_text(rendered, encoding="utf-8")
    expected = golden_path.read_text(encoding="utf-8")
    assert rendered == expected, (
        f"{name}: emitted code drifted from {golden_path}; if the change "
        "is intentional, regenerate with REPRO_REGEN_GOLDENS=1 and review "
        "the diff"
    )


def test_fallback_golden_embeds_interpreted_tree():
    """The scan golden must actually contain an embedded interpreted
    subtree (the `_eN = IconScan(...)` hoist) — that is what 'defers
    cleanly' means, and what keeps the golden honest as coverage grows."""
    _, text = _lower(GOLDEN_PROGRAMS[5][1])
    assert "IconScan" in text
    assert ".iterate()" in text


def test_golden_programs_still_run():
    """Goldens are not just text: each lowerable program must execute and
    produce results through the full optimized pipeline."""
    expectations = {
        "counting": ("counting()", list(range(1, 11))),
        "squares_every": ("squares()", [i * i for i in range(1, 9)]),
        "conjunction_filter": ("keep()", [3, 6, 9, 12]),
        "limited_alternation": ("pick()", [1, "two"]),
        "fallback_scan": (None, None),
    }
    for name, source, expect_lowered in GOLDEN_PROGRAMS:
        if name not in expectations:
            continue
        call, expected = expectations[name]
        code = transform_program(source, optimize=True)
        namespace: dict = {}
        exec(compile(code, f"<golden-{name}>", "exec"), namespace)
        if call is None:
            result = list(namespace["words"]("the quick brown fox"))
            assert result == ["the", "quick", "brown", "fox"]
        else:
            assert list(namespace[call[:-2]]()) == expected


# -- knob resolution ---------------------------------------------------------


def test_resolve_optimize(monkeypatch):
    assert resolve_optimize(True) is True
    assert resolve_optimize(False) is False
    monkeypatch.delenv("REPRO_OPTIMIZE", raising=False)
    assert resolve_optimize("auto") is False
    for value in ("1", "true", "on", "yes"):
        monkeypatch.setenv("REPRO_OPTIMIZE", value)
        assert resolve_optimize("auto") is True
    monkeypatch.setenv("REPRO_OPTIMIZE", "off")
    assert resolve_optimize("auto") is False


def test_interpreter_optimize_knob():
    from repro.lang.interp import JuniconInterpreter

    interp = JuniconInterpreter(optimize=True)
    interp.run("def g() { suspend 1 to 4; }")
    assert "[optimized]" in (interp.namespace["g"].__doc__ or "")
    assert interp.results("g()") == [1, 2, 3, 4]

    plain = JuniconInterpreter()
    plain.run("def g() { suspend 1 to 4; }")
    assert "[optimized]" not in (plain.namespace["g"].__doc__ or "")
    assert plain.results("g()") == [1, 2, 3, 4]


# -- the COMPILE event / monitor integration ---------------------------------


def test_compile_events_and_stats():
    from repro.monitor.tracer import Tracer

    tracer = Tracer()
    with tracer.lifecycle():
        transform_program(
            """
            def fast() { suspend 1 to 3; }
            def scanning(s) { s ? suspend tab(upto(&letters)) \\ 1; }
            """,
            optimize=True,
        )
    stats = tracer.compile_stats()
    assert stats["fast"]["optimized"] == 1
    assert stats["fast"]["fallbacks"] == []
    assert stats["scanning"]["optimized"] == 1
    assert "Scan" in str(stats["scanning"]["fallbacks"])


def test_compile_event_records_whole_method_fallback():
    from repro.monitor.tracer import Tracer

    tracer = Tracer()
    with tracer.lifecycle():
        transform_program(
            """
            def once() {
                initial setup := 1;
                return setup;
            }
            """,
            optimize=True,
        )
    stats = tracer.compile_stats()
    assert stats["once"]["compiles"] == 1
    assert stats["once"]["optimized"] == 0
    assert stats["once"]["fallbacks"], "fallback reasons should be recorded"
