"""Differential testing: interactive vs compiled vs optimized engines.

The harness has three genuinely distinct execution paths over the same
grammar and runtime:

* the **interactive** path (`JuniconInterpreter.run`) — declarations are
  emitted one at a time (`emit_method`/`emit_class`) and each statement
  is compiled to a standalone iterator expression and evaluated;
* the **compiled** path (`transform_program`) — the whole translation
  unit becomes one Python module, exec'd in a fresh namespace, with
  module-level global hoisting and a shared method-body cache;
* the **optimized** path (`transform_program(optimize=True)`) —
  procedures lower to native Python generator functions
  (:mod:`repro.lang.optimize`), with shape-by-shape fallback to the
  interpreted runtime for uncovered constructs.

Future performance work (batching, caching, code-shape changes) lands in
one path first; this corpus pins the engines against each other so a
divergence in *result sequences* — not just first results — fails loudly.

``REPRO_HYPOTHESIS_EXAMPLES`` has no effect here (the corpus is fixed),
but the corpus is deliberately generator-heavy: alternation,
backtracking, scanning, lists, recursion, co-expressions, and pipes.
"""

import pytest

from repro.lang.interp import JuniconInterpreter
from repro.lang.transform import transform_program

#: (name, declarations, expression) — the expression is evaluated for its
#: FULL result sequence on both engines.  Every program is deterministic.
CORPUS = [
    (
        "counting",
        "def gen() { suspend 1 to 10; }",
        "gen()",
    ),
    (
        "squares-every",
        "def gen() { local i; every i := 1 to 8 do suspend i * i; }",
        "gen()",
    ),
    (
        "alternation",
        'def gen() { suspend 1 | "two" | 3 | "four"; }',
        "gen()",
    ),
    (
        "goal-directed-product",
        "def gen() { suspend (1 to 3) * (4 to 6); }",
        "gen()",
    ),
    (
        "conjunction-filter",
        "def gen() { local x; suspend (x := 1 to 12) & x % 3 == 0 & x; }",
        "gen()",
    ),
    (
        "backtracking-pairs",
        "def gen() { local a, b; suspend (a := 1 to 4) & (b := 1 to 4) & (a + b == 5) & [a, b]; }",
        "gen()",
    ),
    (
        "limitation",
        "def gen() { suspend (1 to 100) \\ 7; }",
        "gen()",
    ),
    (
        "recursion-fib",
        """
        def fib(n) {
            if n < 2 then return n;
            return fib(n - 1) + fib(n - 2);
        }
        def gen() { local i; every i := 0 to 10 do suspend fib(i); }
        """,
        "gen()",
    ),
    (
        "mutual-recursion",
        """
        def isEven(n) { if n == 0 then return "yes"; return isOdd(n - 1); }
        def isOdd(n) { if n == 0 then fail; return isEven(n - 1); }
        def gen() { local i; every i := 0 to 6 do suspend isEven(i); }
        """,
        "gen()",
    ),
    (
        "prime-filter",
        """
        def isprime(n) {
            local d;
            if n < 2 then fail;
            every d := 2 to n - 1 do { if n % d == 0 then fail; };
            return n;
        }
        def gen() { suspend isprime(1 to 30); }
        """,
        "gen()",
    ),
    (
        "list-build-promote",
        """
        def gen() {
            local c, i;
            c = [];
            every i := 1 to 5 do put(c, i * 10);
            suspend ! c;
        }
        """,
        "gen()",
    ),
    (
        "list-size-subscript",
        """
        def gen() {
            local c;
            c = [7, 8, 9];
            suspend *c | c[1] | c[3] | c[-1];
        }
        """,
        "gen()",
    ),
    (
        "while-accumulate",
        """
        def gen() {
            local total, i;
            total = 0; i = 0;
            while (i := i + 1) <= 10 do {
                total := total + i;
                suspend total;
            };
        }
        """,
        "gen()",
    ),
    (
        "if-else-parity",
        """
        def parity(n) { if n % 2 == 0 then return "even"; return "odd"; }
        def gen() { suspend parity(1 to 6); }
        """,
        "gen()",
    ),
    (
        "case-dispatch",
        """
        def describe(x) {
            return case x of {
                0: "zero";
                1 | 2 | 3: "small";
                default: "big"
            };
        }
        def gen() { suspend describe(0 to 5); }
        """,
        "gen()",
    ),
    (
        "string-ops",
        """
        def gen() {
            local s;
            every s := "alpha" | "beta" | "gamma" do
                suspend s || "-" || *s;
        }
        """,
        "gen()",
    ),
    (
        "string-scanning",
        '''
        def words(s) {
            s ? while tab(upto(&letters)) do
                suspend tab(many(&letters)) \\ 1;
        }
        def gen() { suspend words("the quick brown fox"); }
        ''',
        "gen()",
    ),
    (
        "nested-every-break",
        """
        def gen() {
            local i, j;
            every i := 1 to 4 do {
                every j := 1 to 4 do {
                    if j > i then break;
                    suspend [i, j];
                };
            };
        }
        """,
        "gen()",
    ),
    (
        "repeated-alternation-limited",
        "def gen() { suspend |3 \\ 5; }",
        "gen()",
    ),
    (
        "coexpression-stepping",
        """
        def gen() {
            local c;
            c = <> (10 to 50 by 10);
            suspend @c | @c | @c;
        }
        """,
        "gen()",
    ),
    (
        "string-sections",
        """
        def gen() {
            local s;
            s = "abcdefgh";
            suspend s[2:5] | s[3+:2] | s[1] | s[-2];
        }
        """,
        "gen()",
    ),
    (
        "pipe-promotion",
        "def gen() { suspend 2 * ! |> (1 to 20); }",
        "gen()",
    ),
    (
        "generator-args",
        """
        def double(x) { return x * 2; }
        def gen() { suspend double(1 to 5) + 100; }
        """,
        "gen()",
    ),
    (
        "table-access",
        """
        def gen() {
            local t, k;
            t = table();
            t["a"] := 1; t["b"] := 2; t["c"] := 3;
            every k := "a" | "b" | "c" do suspend t[k];
        }
        """,
        "gen()",
    ),
    (
        "scan-digits",
        '''
        def nums(s) {
            s ? while tab(upto(&digits)) do
                suspend tab(many(&digits)) \\ 1;
        }
        def gen() { suspend nums("ab12cd345ef6"); }
        ''',
        "gen()",
    ),
    (
        "scan-first-word",
        '''
        def firstWord(s) {
            s ? { tab(upto(&letters)); return tab(many(&letters)); };
        }
        def gen() { suspend firstWord("  hello world") | firstWord("foo bar"); }
        ''',
        "gen()",
    ),
    (
        "nested-coexpressions",
        """
        def gen() {
            local a, b;
            a = <> (1 to 5);
            b = <> (10 to 50 by 10);
            suspend @a + @b | @a + @b | @a;
        }
        """,
        "gen()",
    ),
    (
        "limitation-under-alternation",
        "def gen() { suspend ((1 to 10) | (20 to 30)) \\ 13; }",
        "gen()",
    ),
    (
        "split-limitation-alternation",
        "def gen() { suspend (1 to 5) \\ 2 | (6 to 9) \\ 3; }",
        "gen()",
    ),
    (
        "hofstadter-mutual",
        """
        def hofF(n) { if n == 0 then return 1; return n - hofM(hofF(n - 1)); }
        def hofM(n) { if n == 0 then return 0; return n - hofF(hofM(n - 1)); }
        def gen() { local i; every i := 0 to 10 do suspend hofF(i); }
        """,
        "gen()",
    ),
    (
        "pipe-fed-generator",
        """
        def doubleAll(p) { suspend 2 * ! p; }
        def gen() { suspend doubleAll(|> (1 to 8)); }
        """,
        "gen()",
    ),
    (
        "to-by-descending",
        "def gen() { suspend 10 to 1 by -2; }",
        "gen()",
    ),
    (
        "to-by-step",
        "def gen() { local i; every i := 2 to 20 by 3 do suspend i; }",
        "gen()",
    ),
    (
        "until-loop",
        """
        def gen() {
            local i;
            i = 0;
            until i >= 5 do { i := i + 1; suspend i * 3; };
        }
        """,
        "gen()",
    ),
    (
        "repeat-break",
        """
        def gen() {
            local i;
            i = 0;
            repeat {
                i := i + 1;
                if i > 6 then break;
                suspend i;
            };
        }
        """,
        "gen()",
    ),
    (
        "next-statement",
        """
        def gen() {
            local i;
            every i := 1 to 10 do {
                if i % 2 == 0 then next;
                suspend i;
            };
        }
        """,
        "gen()",
    ),
    (
        "while-break",
        """
        def gen() {
            local i;
            i = 0;
            while 1 do {
                i := i + 1;
                if i > 4 then break;
                suspend i * i;
            };
        }
        """,
        "gen()",
    ),
    (
        "augmented-assignment",
        """
        def gen() {
            local total, i;
            total = 1;
            every i := 1 to 5 do { total *:= 2; suspend total; };
        }
        """,
        "gen()",
    ),
    (
        "not-expression",
        """
        def gen() {
            local i;
            every i := 1 to 8 do { if not (i % 3 == 0) then suspend i; };
        }
        """,
        "gen()",
    ),
    (
        "null-tests",
        """
        def gen() {
            local x, y;
            y = 5;
            if /x then suspend "x-null";
            if \\y then suspend y;
        }
        """,
        "gen()",
    ),
    (
        "keyword-fail-alternation",
        "def gen() { suspend 1 | &fail | 3; }",
        "gen()",
    ),
    (
        "comparison-yields-operand",
        "def gen() { suspend 3 <= (1 to 8); }",
        "gen()",
    ),
    (
        "lexical-comparison",
        """
        def gen() {
            local s;
            every s := "pear" | "apple" | "fig" do {
                if s << "mango" then suspend s;
            };
        }
        """,
        "gen()",
    ),
    (
        "repeated-alternation-assign",
        """
        def gen() {
            local i;
            i = 0;
            suspend | (i := i + 1) \\ 6;
        }
        """,
        "gen()",
    ),
    (
        "generator-in-list-literal",
        """
        def gen() {
            local l;
            l = [1 to 3, 99];
            suspend ! l;
        }
        """,
        "gen()",
    ),
    (
        "procedure-failure-skip",
        """
        def half(n) { if n % 2 == 0 then return n / 2; fail; }
        def gen() { suspend half(1 to 10); }
        """,
        "gen()",
    ),
]


def run_interactive(decls: str, expr: str) -> list:
    """Engine A: per-declaration emission + per-statement evaluation."""
    interp = JuniconInterpreter()
    interp.run(decls)
    return interp.results(expr)


def run_compiled(decls: str, expr: str) -> list:
    """Engine B: whole-unit `transform_program` exec'd as one module."""
    code = transform_program(decls)
    namespace: dict = {}
    exec(compile(code, "<differential>", "exec"), namespace)
    assert expr.endswith("()"), "corpus expressions are zero-arg calls"
    return list(namespace[expr[:-2]]())


def run_optimized(decls: str, expr: str) -> list:
    """Engine C: `transform_program(optimize=True)` — procedures lower to
    native Python generators where the optimizer covers them, falling
    back shape-by-shape to the interpreted runtime elsewhere."""
    code = transform_program(decls, optimize=True)
    namespace: dict = {}
    exec(compile(code, "<differential-optimized>", "exec"), namespace)
    assert expr.endswith("()"), "corpus expressions are zero-arg calls"
    return list(namespace[expr[:-2]]())


ENGINES = {
    "interactive": run_interactive,
    "compiled": run_compiled,
    "optimized": run_optimized,
}


@pytest.mark.parametrize(
    "name,decls,expr", CORPUS, ids=[entry[0] for entry in CORPUS]
)
def test_engines_agree(name, decls, expr):
    """The 3-way matrix: every engine yields the identical full sequence."""
    sequences = {label: run(decls, expr) for label, run in ENGINES.items()}
    reference = sequences["interactive"]
    for label, sequence in sequences.items():
        assert sequence == reference, (
            f"{name}: {label} {sequence!r} != interactive {reference!r}"
        )
    assert reference, f"{name}: corpus entry produced no results on any engine"


def test_corpus_is_reasonably_sized():
    # The pin only bites if the corpus keeps covering the dialect.
    assert len(CORPUS) >= 40


def test_optimizer_lowers_most_of_the_corpus():
    """The 3-way matrix is only a differential if engine C genuinely takes
    the optimized path: most corpus entry points must compile to native
    generators (their docstrings carry the ``[optimized]`` marker), not
    silently fall back whole-method to the interpreted emitter."""
    lowered = 0
    for _, decls, expr in CORPUS:
        code = transform_program(decls, optimize=True)
        namespace: dict = {}
        exec(compile(code, "<differential-optimized>", "exec"), namespace)
        doc = namespace[expr[:-2]].__doc__ or ""
        if "[optimized]" in doc:
            lowered += 1
    assert lowered >= len(CORPUS) * 3 // 4, (
        f"only {lowered}/{len(CORPUS)} corpus entry points were lowered"
    )


# ---------------------------------------------------------------------------
# Engine C: the network tier.  The same corpus programs stream their
# result sequences through a loopback generator server — the remote
# transport (framing, batching, credit flow control) must be invisible:
# byte-for-byte the sequence the local engines produce.
# ---------------------------------------------------------------------------

#: Corpus entries replayed over the wire.  Generator-heavy picks: deep
#: backtracking, recursion, pipe promotion, and string scanning all
#: stress envelope ordering differently.
REMOTE_CORPUS = [
    "counting",
    "goal-directed-product",
    "backtracking-pairs",
    "recursion-fib",
    "pipe-promotion",
    "string-sections",
]


def _compiled_program(decls: str, expr: str):
    """Server-side factory: compile and run a program for its sequence."""
    code = transform_program(decls)
    namespace: dict = {}
    exec(compile(code, "<remote-differential>", "exec"), namespace)
    return namespace[expr[:-2]]()


def _server_classes():
    from repro.net import AsyncGeneratorServer, GeneratorServer

    return [GeneratorServer, AsyncGeneratorServer]


@pytest.fixture(
    scope="module", params=_server_classes(), ids=["threaded", "async"]
)
def gen_server(request):
    # Both server substrates host the corpus: the event-loop server must
    # be as invisible on the wire as the threaded one.
    with request.param() as server:
        server.register("program", _compiled_program)
        yield server


@pytest.mark.parametrize(
    "name,decls,expr",
    [entry for entry in CORPUS if entry[0] in REMOTE_CORPUS],
    ids=[entry[0] for entry in CORPUS if entry[0] in REMOTE_CORPUS],
)
def test_remote_backend_agrees(name, decls, expr, gen_server):
    from repro.net import RemotePipe

    local = run_compiled(decls, expr)
    remote = list(
        RemotePipe(gen_server.address, "program", args=(decls, expr)).iterate()
    )
    assert remote == local == run_interactive(decls, expr), (
        f"{name}: remote {remote!r} != local {local!r}"
    )


def test_remote_corpus_is_reasonably_sized():
    names = {entry[0] for entry in CORPUS}
    assert set(REMOTE_CORPUS) <= names
    assert len(REMOTE_CORPUS) >= 4
