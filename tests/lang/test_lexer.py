"""Junicon lexer: literals, operators, keywords, native placeholders."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import (
    CSET,
    EOF,
    IDENT,
    INTEGER,
    KEYWORD,
    NATIVE,
    OP,
    REAL,
    RESERVED,
    STRING,
)
from repro.runtime.types import Cset


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestNumbers:
    def test_integers(self):
        assert values("0 42 1000") == [0, 42, 1000]

    def test_reals(self):
        assert values("1.5 0.25") == [1.5, 0.25]
        assert kinds("1.5") == [REAL]

    def test_exponents(self):
        assert values("1e3 2.5e-2") == [1000.0, 0.025]

    def test_radix_literals(self):
        assert values("16rFF 2r101 36rz") == [255, 5, 35]

    def test_bad_radix(self):
        with pytest.raises(LexError):
            tokenize("99r1")

    def test_bad_radix_digits(self):
        with pytest.raises(LexError):
            tokenize("2r9")

    def test_integer_then_dot_method(self):
        # "1." followed by non-digit is integer then dot
        tokens = tokenize("x.f")
        assert [t.kind for t in tokens[:-1]] == [IDENT, OP, IDENT]


class TestStrings:
    def test_string_literal(self):
        assert values('"hello"') == ["hello"]

    def test_escapes(self):
        assert values(r'"a\nb\t\"q\""') == ["a\nb\t\"q\""]

    def test_hex_escape(self):
        assert values(r'"\x41"') == ["A"]

    def test_unterminated(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')

    def test_cset_literal(self):
        result = values("'abc'")
        assert result == [Cset("abc")]
        assert kinds("'abc'") == [CSET]


class TestIdentifiersAndKeywords:
    def test_identifiers(self):
        assert kinds("foo _bar x1") == [IDENT] * 3

    def test_reserved_words(self):
        assert kinds("if then else while def") == [RESERVED] * 5

    def test_amp_keywords(self):
        tokens = tokenize("&subject &pos")
        assert tokens[0].kind is KEYWORD and tokens[0].value == "subject"
        assert tokens[1].value == "pos"

    def test_amp_alone_is_operator(self):
        tokens = tokenize("a & b")
        assert tokens[1].kind is OP and tokens[1].value == "&"


class TestOperators:
    def test_concurrency_operators(self):
        assert values("<> |<> |>") == ["<>", "|<>", "|>"]

    def test_maximal_munch(self):
        assert values("===") == ["==="]
        assert values("<<=") == ["<<="]
        assert values(":=:") == [":=:"]
        assert values("|||") == ["|||"]

    def test_augmented_assignment(self):
        assert values("+:= ||:= **:=") == ["+:=", "||:=", "**:="]

    def test_native_invocation(self):
        assert values("::") == ["::"]

    def test_section_offsets(self):
        assert values("+: -:") == ["+:", "-:"]

    def test_single_chars(self):
        assert values("( ) [ ] { } ; , @ ! ^ ? \\ /") == list("()[]{};,@!^?\\/")

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("`")


class TestCommentsAndLayout:
    def test_comment_to_eol(self):
        assert values("1 # comment\n2") == [1, 2]

    def test_newlines_are_whitespace(self):
        assert values("a\nb") == ["a", "b"]

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token(self):
        assert tokenize("")[-1].kind is EOF


class TestNativeBlocks:
    def test_placeholder_resolves(self):
        tokens = tokenize("\x00k\x00", {"k": "1 + 2"})
        assert tokens[0].kind is NATIVE
        assert tokens[0].value == "1 + 2"

    def test_unknown_placeholder(self):
        with pytest.raises(LexError):
            tokenize("\x00nope\x00", {})

    def test_unterminated_placeholder(self):
        with pytest.raises(LexError):
            tokenize("\x00k", {"k": "x"})


class TestTokenHelpers:
    def test_is_op(self):
        token = tokenize("+")[0]
        assert token.is_op("+")
        assert token.is_op("-", "+")
        assert not token.is_op("-")

    def test_is_reserved(self):
        token = tokenize("while")[0]
        assert token.is_reserved("while")
        assert not token.is_reserved("until")

    def test_repr(self):
        assert "IDENT" in repr(tokenize("x")[0])
