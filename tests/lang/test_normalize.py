"""Normalization — flattening primaries into bound-iterator products."""

from repro.lang import ast_nodes as ast
from repro.lang.normalize import (
    BoundIn,
    TempRef,
    count_temps,
    is_atomic,
    normalize_expr,
    normalize_method,
)
from repro.lang.parser import parse, parse_expression


def norm(source):
    return normalize_expr(parse_expression(source))


class TestAtoms:
    def test_atomic_nodes(self):
        assert is_atomic(ast.Literal(value=1))
        assert is_atomic(ast.Name(id="x"))
        assert is_atomic(ast.NullLit())
        assert is_atomic(TempRef(index=0))
        assert is_atomic(ast.Keyword(name="pos"))

    def test_non_atomic_nodes(self):
        assert not is_atomic(parse_expression("f(x)"))
        assert not is_atomic(parse_expression("a + b"))

    def test_atoms_normalize_to_themselves(self):
        node = norm("x")
        assert isinstance(node, ast.Name)


class TestCallFlattening:
    def test_atomic_args_left_in_place(self):
        node = norm("f(x, 1)")
        assert isinstance(node, ast.Invoke)
        assert isinstance(node.args[0], ast.Name)
        assert isinstance(node.args[1], ast.Literal)

    def test_generator_arg_hoisted(self):
        node = norm("f(1 to 3)")
        # (t0 in 1 to 3) & f(t0)
        assert isinstance(node, ast.Binary) and node.op == "&"
        assert isinstance(node.left, BoundIn)
        assert isinstance(node.left.expr, ast.ToBy)
        call = node.right
        assert isinstance(call, ast.Invoke)
        assert isinstance(call.args[0], TempRef)
        assert call.args[0].index == node.left.index

    def test_nested_calls_flatten_recursively(self):
        node = norm("f(g(x))")
        # (t0 in g(x)) & f(t0)
        assert isinstance(node.left, BoundIn)
        assert isinstance(node.left.expr, ast.Invoke)  # g(x) itself atomic args
        assert isinstance(node.right.args[0], TempRef)

    def test_paper_v_a_example_shape(self):
        """e(ex, ey) with generator-valued pieces becomes a product chain."""
        node = norm("(f | g)(1 to 2, h(y))")
        # ((t0 in f|g) & ((t1 in 1 to 2) & ((t2 in h(y)) & t0(t1, t2))))
        bindings = []
        current = node
        while isinstance(current, ast.Binary) and current.op == "&":
            bindings.append(current.left)
            current = current.right
        assert len(bindings) == 3
        assert all(isinstance(b, BoundIn) for b in bindings)
        assert isinstance(current, ast.Invoke)
        assert isinstance(current.callee, TempRef)
        assert all(isinstance(a, TempRef) for a in current.args)

    def test_distinct_temporaries(self):
        node = norm("f(g(1), h(2))")
        temps = {t.index for t in ast.walk(node) if isinstance(t, TempRef)}
        assert len(temps) == 2

    def test_native_invoke_flattened_too(self):
        node = norm("x::m(g(y))")
        assert isinstance(node, ast.Binary)
        assert isinstance(node.right, ast.NativeInvoke)
        assert isinstance(node.right.args[0], TempRef)

    def test_native_invoke_generator_subject_hoisted(self):
        node = norm("(a | b)::m()")
        assert isinstance(node.left, BoundIn)
        assert isinstance(node.right.subject, TempRef)


class TestStructuralRecursion:
    def test_normalizes_inside_control(self):
        node = norm("while f(g(x)) do h(k(y))")
        assert isinstance(node, ast.While)
        assert isinstance(node.cond, ast.Binary)  # flattened
        assert isinstance(node.body, ast.Binary)

    def test_normalizes_inside_blocks(self):
        program = parse("def m() { f(g(1)); }")
        method, temps = normalize_method(program.body[0])
        assert temps == 1
        statement = method.body.body[0]
        assert isinstance(statement, ast.Binary)

    def test_normalizes_inside_pipes(self):
        node = norm("|> f(g(x))")
        assert isinstance(node, ast.PipeLit)
        assert isinstance(node.expr, ast.Binary)

    def test_normalizes_list_items(self):
        node = norm("[f(g(x))]")
        assert isinstance(node, ast.ListLit)
        assert isinstance(node.items[0], ast.Binary)

    def test_operator_operands_not_hoisted(self):
        """Binary operations handle generator operands natively; only
        invocation sites need temporaries."""
        node = norm("(1 to 2) + (3 to 4)")
        assert isinstance(node, ast.Binary) and node.op == "+"
        assert isinstance(node.left, ast.ToBy)

    def test_assignment_value_normalized(self):
        node = norm("x := f(g(1))")
        assert isinstance(node, ast.Assign)
        assert isinstance(node.value, ast.Binary)


class TestTempCounting:
    def test_count_temps(self):
        node = norm("f(g(1), h(2))")
        assert count_temps(node) == 2

    def test_count_zero(self):
        assert count_temps(norm("x + 1")) == 0

    def test_method_temp_budget(self):
        program = parse("def m(a) { f(g(a)); k(h(a)); }")
        _method, temps = normalize_method(program.body[0])
        assert temps == count_temps(_method.body) == 2
