"""Junicon parser: precedence, constructs, declarations."""

import pytest

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse, parse_expression


def expr(source):
    return parse_expression(source)


class TestPrecedence:
    def test_conjunction_lowest(self):
        node = expr("a := 1 & b := 2")
        assert isinstance(node, ast.Binary) and node.op == "&"
        assert isinstance(node.left, ast.Assign)
        assert isinstance(node.right, ast.Assign)

    def test_scan_above_conjunction(self):
        node = expr("s ? x & y")
        assert isinstance(node, ast.Binary) and node.op == "&"
        assert isinstance(node.left, ast.Scan)

    def test_assignment_right_associative(self):
        node = expr("a := b := 1")
        assert isinstance(node, ast.Assign)
        assert isinstance(node.value, ast.Assign)

    def test_to_by_binds_above_alternation(self):
        # the generator idiom: (1 to 3) | (7 to 9)
        node = expr("1 to 3 | 7 to 9")
        assert isinstance(node, ast.Binary) and node.op == "|"
        assert isinstance(node.left, ast.ToBy)
        assert isinstance(node.right, ast.ToBy)

    def test_relational_binds_above_alternation(self):
        # Icon: comparisons are tighter than |, so x = (1|2) needs parens
        node = expr("x < 1 | 2")
        assert isinstance(node, ast.Binary) and node.op == "|"
        assert node.left.op == "<"

    def test_arithmetic_ladder(self):
        node = expr("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_power_right_associative(self):
        node = expr("2 ^ 3 ^ 2")
        assert node.op == "^"
        assert node.right.op == "^"

    def test_concat_between_additive_and_relational(self):
        node = expr('a || b == c')
        assert node.op == "=="
        assert node.left.op == "||"

    def test_limit_binds_tight(self):
        node = expr("a | b \\ 1")
        assert node.op == "|"
        assert isinstance(node.right, ast.Binary) and node.right.op == "\\"

    def test_parenthesized_mutual_evaluation(self):
        node = expr("(1, 2, 3)")
        assert isinstance(node, ast.Binary) and node.op == "&"


class TestPrefixOperators:
    def test_concurrency_literals(self):
        assert isinstance(expr("<> x"), ast.FirstClass)
        assert isinstance(expr("|<> x"), ast.CoExprLit)
        assert isinstance(expr("|> x"), ast.PipeLit)

    def test_activation(self):
        node = expr("@c")
        assert isinstance(node, ast.Activate) and node.transmit is None

    def test_binary_activation_transmits(self):
        node = expr("v @ c")
        assert isinstance(node, ast.Activate)
        assert isinstance(node.transmit, ast.Name)

    def test_bang_and_tests(self):
        assert expr("!x").op == "!"
        assert expr("/x").op == "/"
        assert expr("\\x").op == "\\"
        assert expr(".x").op == "."
        assert expr("=x").op == "="

    def test_repeated_alternation(self):
        node = expr("|x")
        assert isinstance(node, ast.Unary) and node.op == "|"

    def test_not(self):
        assert expr("not x").op == "not"

    def test_stacked_prefixes(self):
        node = expr("! |> f(x)")
        assert node.op == "!"
        assert isinstance(node.operand, ast.PipeLit)


class TestPostfix:
    def test_invocation(self):
        node = expr("f(1, 2)")
        assert isinstance(node, ast.Invoke)
        assert len(node.args) == 2

    def test_field_chain(self):
        node = expr("a.b.c")
        assert isinstance(node, ast.Field) and node.name == "c"
        assert isinstance(node.subject, ast.Field)

    def test_index(self):
        node = expr("L[3]")
        assert isinstance(node, ast.Index)

    def test_multi_index_nests(self):
        node = expr("M[1, 2]")
        assert isinstance(node, ast.Index)
        assert isinstance(node.subject, ast.Index)

    def test_sections(self):
        node = expr("s[2:4]")
        assert isinstance(node, ast.Section) and node.mode == ":"
        assert expr("s[2+:3]").mode == "+:"
        assert expr("s[4-:2]").mode == "-:"

    def test_native_invocation(self):
        node = expr('line::split("x")')
        assert isinstance(node, ast.NativeInvoke)
        assert node.name == "split"
        assert len(node.args) == 1

    def test_native_invocation_no_parens(self):
        node = expr("x::upper")
        assert isinstance(node, ast.NativeInvoke) and node.args == []

    def test_mixed_primary(self):
        node = expr("o.f(x)[2]")
        assert isinstance(node, ast.Index)
        assert isinstance(node.subject, ast.Invoke)


class TestLiterals:
    def test_list(self):
        node = expr("[1, 2]")
        assert isinstance(node, ast.ListLit) and len(node.items) == 2

    def test_empty_list(self):
        assert expr("[]").items == []

    def test_null_keyword(self):
        assert isinstance(expr("&null"), ast.NullLit)

    def test_fail_keyword_stays_keyword(self):
        node = expr("&fail")
        assert isinstance(node, ast.Keyword) and node.name == "fail"

    def test_amp_keywords(self):
        assert expr("&subject").name == "subject"


class TestControl:
    def test_if_then_else(self):
        node = expr("if a then b else c")
        assert isinstance(node, ast.If) and node.orelse is not None

    def test_if_without_else(self):
        assert expr("if a then b").orelse is None

    def test_while_do(self):
        node = expr("while a do b")
        assert isinstance(node, ast.While) and node.body is not None

    def test_while_block_without_do(self):
        node = expr("while a { b; c }")
        assert isinstance(node.body, ast.Block)

    def test_until(self):
        assert isinstance(expr("until a do b"), ast.Until)

    def test_every(self):
        node = expr("every x := 1 to 3 do f(x)")
        assert isinstance(node, ast.Every)
        assert isinstance(node.gen, ast.Assign)

    def test_repeat(self):
        assert isinstance(expr("repeat f()"), ast.RepeatLoop)

    def test_case(self):
        node = expr('case x of { 1: "one"; 2 | 3: "few"; default: "many" }')
        assert isinstance(node, ast.Case)
        assert len(node.branches) == 2
        assert node.default is not None

    def test_suspend_with_do(self):
        node = expr("suspend x do y")
        assert isinstance(node, ast.Suspend) and node.do_clause is not None

    def test_bare_control_words(self):
        assert isinstance(expr("fail"), ast.Fail)
        assert isinstance(expr("next"), ast.NextStmt)
        assert isinstance(expr("return"), ast.Return)
        assert isinstance(expr("break"), ast.Break)

    def test_return_with_value(self):
        assert expr("return 5").expr is not None

    def test_break_with_value(self):
        assert expr("break 5").expr is not None


class TestDeclarations:
    def test_method_brace_form(self):
        program = parse("def f(a, b) { return a; }")
        method = program.body[0]
        assert isinstance(method, ast.MethodDecl)
        assert method.params == ["a", "b"]

    def test_procedure_end_form(self):
        program = parse("procedure f(x)\n  return x\nend")
        method = program.body[0]
        assert isinstance(method, ast.MethodDecl)
        assert method.name == "f"

    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse("procedure f() return 1")

    def test_class_with_field_list(self):
        program = parse("class Point(x, y) { def mag() { return x; } }")
        decl = program.body[0]
        assert isinstance(decl, ast.ClassDecl)
        assert decl.fields[0].names == ["x", "y"]
        assert decl.methods[0].name == "mag"

    def test_class_with_declared_fields(self):
        program = parse("class C { local a; var b = 5; def m() { } }")
        decl = program.body[0]
        names = [n for fd in decl.fields for n in fd.names]
        assert names == ["a", "b"]

    def test_class_with_supers(self):
        decl = parse("class D : A, B { }").body[0]
        assert decl.supers == ["A", "B"]

    def test_record(self):
        decl = parse("record point(x, y)").body[0]
        assert isinstance(decl, ast.RecordDecl)
        assert decl.fields == ["x", "y"]

    def test_global(self):
        decl = parse("global a, b").body[0]
        assert isinstance(decl, ast.GlobalDecl) and decl.names == ["a", "b"]

    def test_local_with_initializers(self):
        program = parse("def f() { local a = 1, b; }")
        var_decl = program.body[0].body.body[0]
        assert isinstance(var_decl, ast.VarDecl)
        assert var_decl.names == ["a", "b"]
        assert var_decl.inits[0] is not None and var_decl.inits[1] is None


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse_expression("1 2")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_expression("(1")

    def test_unclosed_block(self):
        with pytest.raises(ParseError):
            parse("def f() { a;")

    def test_error_carries_position(self):
        try:
            parse_expression("f(,)")
        except ParseError as error:
            assert error.line == 1
        else:
            pytest.fail("no error")

    def test_unexpected_keyword(self):
        with pytest.raises(ParseError):
            parse_expression("then")


class TestWalk:
    def test_walk_visits_descendants(self):
        node = expr("f(a + b)")
        names = [n.id for n in ast.walk(node) if isinstance(n, ast.Name)]
        assert set(names) == {"f", "a", "b"}
