"""The import hook: .jun and .jun.py files as Python modules."""

import sys

import pytest

from repro.lang.loader import (
    JuniconFinder,
    install,
    load_file,
    uninstall,
)


@pytest.fixture
def hook(tmp_path):
    finder = install([str(tmp_path)])
    yield finder, tmp_path
    uninstall()
    for name in list(sys.modules):
        if name.startswith("junmod_"):
            del sys.modules[name]


class TestPureJuniconModules:
    def test_import_jun_file(self, hook):
        _finder, tmp_path = hook
        (tmp_path / "junmod_pure.jun").write_text(
            "def evens(n) { suspend 0 to n by 2; }\n"
            "global answer;\n"
            "answer := 6 * 7;\n"
        )
        import junmod_pure  # noqa: F401

        assert junmod_pure.answer == 42
        assert list(junmod_pure.evens(4)) == [0, 2, 4]

    def test_module_methods_are_host_callables(self, hook):
        _finder, tmp_path = hook
        (tmp_path / "junmod_callable.jun").write_text(
            "def dbl(x) { return 2 * x; }\n"
        )
        import junmod_callable

        assert junmod_callable.dbl(21).first() == 42


class TestMixedModules:
    def test_import_mixed_file(self, hook):
        _finder, tmp_path = hook
        (tmp_path / "junmod_mixed.jun.py").write_text(
            "BASE = 10\n"
            '@<script lang="junicon">\n'
            "def scaled(n) { suspend BASE * (1 to n); }\n"
            "@</script>\n"
            "values = list(scaled(3))\n"
        )
        import junmod_mixed

        assert junmod_mixed.values == [10, 20, 30]

    def test_mixed_takes_precedence_over_pure(self, hook):
        _finder, tmp_path = hook
        (tmp_path / "junmod_both.jun").write_text("global marker; marker := 1;\n")
        (tmp_path / "junmod_both.jun.py").write_text("marker = 2\n")
        import junmod_both

        assert junmod_both.marker == 2


class TestLoadFile:
    def test_direct_load_without_hook(self, tmp_path):
        path = tmp_path / "standalone.jun"
        path.write_text("def nine() { return 9; }\n")
        module = load_file(str(path))
        assert module.nine().first() == 9

    def test_direct_load_mixed(self, tmp_path):
        path = tmp_path / "standalone2.jun.py"
        path.write_text(
            '@<script lang="junicon">\ndef one() { return 1; }\n@</script>\n'
            "x = one().first()\n"
        )
        module = load_file(str(path), module_name="standalone2")
        assert module.x == 1


class TestHookLifecycle:
    def test_install_idempotent(self, tmp_path):
        first = install([str(tmp_path)])
        second = install()
        try:
            assert first is second
            assert sys.meta_path.count(first) == 1
        finally:
            uninstall()

    def test_uninstall_removes_finder(self, tmp_path):
        finder = install([str(tmp_path)])
        uninstall()
        assert finder not in sys.meta_path
        uninstall()  # idempotent

    def test_finder_misses_regular_modules(self):
        finder = JuniconFinder()
        assert finder.find_spec("os") is None
