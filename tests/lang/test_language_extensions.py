"""Language extensions: initial clauses, static variables, string
invocation, and the extended builtin set."""

import pytest

from repro.runtime.failure import FAIL


class TestInitialClause:
    def test_runs_once_across_invocations(self, interp):
        interp.load(
            """
            def counter() {
                static count;
                initial count := 100;
                count +:= 1;
                return count;
            }
            """
        )
        assert [interp.eval("counter()") for _ in range(3)] == [101, 102, 103]

    def test_initial_with_global(self, interp):
        interp.load(
            """
            global seen;
            def touch() {
                initial seen := [];
                put(seen, 1);
                return *seen;
            }
            """
        )
        assert interp.eval("touch()") == 1
        assert interp.eval("touch()") == 2

    def test_separate_methods_have_separate_flags(self, interp):
        interp.load(
            """
            def a() { static n; initial n := 0; n +:= 1; return n; }
            def b() { static n; initial n := 10; n +:= 1; return n; }
            """
        )
        assert interp.eval("a()") == 1
        assert interp.eval("b()") == 11
        assert interp.eval("a()") == 2


class TestStaticVariables:
    def test_static_persists_across_calls(self, interp):
        interp.load(
            """
            def remember(x) {
                static last;
                local previous;
                previous := last;
                last := x;
                return previous;
            }
            """
        )
        assert interp.eval("remember(1)") is None
        assert interp.eval("remember(2)") == 1
        assert interp.eval("remember(3)") == 2

    def test_locals_still_reset(self, interp):
        interp.load(
            """
            def mix(x) {
                static total;
                local tmp;
                initial total := 0;
                tmp := x * 10;
                total +:= tmp;
                return [tmp, total];
            }
            """
        )
        assert interp.eval("mix(1)") == [10, 10]
        assert interp.eval("mix(2)") == [20, 30]

    def test_static_shared_across_cached_bodies(self, interp):
        """Two concurrently-live bodies of the same method observe the
        same static cell."""
        interp.load(
            """
            def tick() { static n; initial n := 0; n +:= 1; suspend n to n; }
            """
        )
        first = interp.namespace["tick"]()
        stepper = first.iterate()
        next(stepper)  # keep the first body live mid-iteration
        assert interp.eval("tick()") == 2  # a second body: shared static


class TestStringInvocation:
    def test_builtin_by_name(self, interp):
        assert interp.eval('"sqrt"(16)') == 4.0

    def test_computed_name(self, interp):
        interp.load('global which; which := "re" || "verse";')
        assert interp.eval('which("abc")') == "cba"

    def test_unknown_name_fails(self, interp):
        assert interp.eval('"nosuchproc"(1)') is FAIL

    def test_proc_builtin(self, interp):
        assert interp.eval('proc("sqrt")(25)') == 5.0
        assert interp.eval('proc("not_a_proc")') is FAIL

    def test_proc_passthrough_for_callables(self, interp):
        interp.namespace["host_fn"] = lambda: 9
        assert interp.eval("proc(host_fn)()") == 9


class TestExtendedBuiltins:
    def test_bit_operations(self, interp):
        assert interp.eval("iand(12, 10)") == 8
        assert interp.eval("ior(12, 10)") == 14
        assert interp.eval("ixor(12, 10)") == 6
        assert interp.eval("icom(0)") == -1
        assert interp.eval("ishift(1, 3)") == 8
        assert interp.eval("ishift(8, -3)") == 1

    def test_detab(self, interp):
        assert interp.eval('detab("a\\tb")') == "a       b"
        assert interp.eval('detab("a\\tb", 5)') == "a   b"

    def test_entab_roundtrip(self, interp):
        assert interp.eval('detab(entab("a       b"))') == "a       b"

    def test_getenv(self, interp, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_VAR", "42")
        assert interp.eval('getenv("REPRO_TEST_VAR")') == "42"
        assert interp.eval('getenv("REPRO_UNSET_VAR_XYZ")') is FAIL

    def test_serial(self, interp):
        first = interp.eval("serial()")
        second = interp.eval("serial()")
        assert second == first + 1
        assert interp.eval("serial([1, 2])") > 0
        assert interp.eval("serial(5)") is FAIL


class TestDetabEntabEdges:
    def test_detab_multiline(self, interp):
        assert interp.eval('detab("x\\ty\\nz\\tw")') == "x       y\nz       w"

    def test_entab_single_space_kept(self, interp):
        from repro.runtime.functions import entab

        assert entab("abcdefg h") == "abcdefg h"  # one space, not a tab run
