"""Scoped annotations — the grammar-oblivious metaparser (Section IV)."""

import pytest

from repro.errors import AnnotationError
from repro.lang.annotations import (
    ScopedAnnotation,
    find_annotations,
    parse_annotation_tag,
)


class TestTagParsing:
    def test_xml_attribute_form(self):
        tag, attrs, _pos, closing = parse_annotation_tag(
            '@<script lang="junicon">', 0
        )
        assert tag == "script"
        assert attrs == {"lang": "junicon"}
        assert not closing

    def test_multiple_attributes(self):
        _tag, attrs, _pos, _c = parse_annotation_tag(
            '@<script lang="junicon" context="class">', 0
        )
        assert attrs == {"lang": "junicon", "context": "class"}

    def test_paren_form(self):
        tag, attrs, _pos, _c = parse_annotation_tag(
            '@<script(lang=junicon, mode="strict")>', 0
        )
        assert tag == "script"
        assert attrs == {"lang": "junicon", "mode": "strict"}

    def test_self_closing_forms(self):
        _t, _a, _p, closing = parse_annotation_tag("@<marker/>", 0)
        assert closing
        _t, _a, _p, closing = parse_annotation_tag("@<marker(x=1)/>", 0)
        assert closing

    def test_unquoted_values(self):
        _t, attrs, _p, _c = parse_annotation_tag("@<t a=1 b=two>", 0)
        assert attrs == {"a": "1", "b": "two"}

    def test_valueless_attribute(self):
        _t, attrs, _p, _c = parse_annotation_tag("@<t flag>", 0)
        assert attrs == {"flag": ""}

    def test_qualified_tag_names(self):
        tag, _a, _p, _c = parse_annotation_tag("@<edu.uidaho.junicon:script>", 0)
        assert tag == "edu.uidaho.junicon:script"

    def test_empty_tag_rejected(self):
        with pytest.raises(AnnotationError):
            parse_annotation_tag("@<>", 0)

    def test_unterminated_paren_form(self):
        with pytest.raises(AnnotationError):
            parse_annotation_tag("@<t(a=1>", 0)


class TestRegionDiscovery:
    def test_single_region(self):
        source = 'before @<script lang="junicon"> x := 1 @</script> after'
        regions = find_annotations(source)
        assert len(regions) == 1
        region = regions[0]
        assert region.lang == "junicon"
        assert region.body(source).strip() == "x := 1"
        assert source[region.start:].startswith("@<script")
        assert source[: region.end].endswith("@</script>")

    def test_multiple_regions(self):
        source = "@<a>1@</a> mid @<b>2@</b>"
        regions = find_annotations(source)
        assert [r.tag for r in regions] == ["a", "b"]

    def test_nested_regions(self):
        source = '@<script lang="junicon"> a @<script lang="python"> py @</script> b @</script>'
        regions = find_annotations(source)
        assert len(regions) == 1
        children = regions[0].children
        assert len(children) == 1
        assert children[0].lang == "python"
        assert children[0].body(source).strip() == "py"

    def test_deep_nesting(self):
        source = "@<a>@<b>@<c/>@</b>@</a>"
        outer = find_annotations(source)[0]
        assert outer.children[0].tag == "b"
        assert outer.children[0].children[0].self_closing

    def test_self_closing_at_top_level(self):
        regions = find_annotations("x @<marker attr=1/> y")
        assert regions[0].self_closing
        assert regions[0].attrs == {"attr": "1"}

    def test_mismatched_close(self):
        with pytest.raises(AnnotationError):
            find_annotations("@<a> x @</b>")

    def test_unclosed_region(self):
        with pytest.raises(AnnotationError):
            find_annotations("@<a> x")

    def test_dangling_close(self):
        with pytest.raises(AnnotationError):
            find_annotations("x @</a>")


class TestGrammarObliviousness:
    def test_marker_inside_host_string_ignored(self):
        source = 'text = "@<script>not a region@</script>"'
        assert find_annotations(source) == []

    def test_marker_inside_host_comment_ignored(self):
        source = "# @<script> commented out @</script>\nx = 1"
        assert find_annotations(source) == []

    def test_marker_inside_triple_quoted_string(self):
        source = '"""docstring with @<script> marker @</script>"""\ny = 2'
        assert find_annotations(source) == []

    def test_marker_inside_junicon_string_ignored(self):
        source = '@<script lang="junicon"> s := "@</script>"; t := 1 @</script>'
        regions = find_annotations(source)
        assert len(regions) == 1
        assert 't := 1' in regions[0].body(source)

    def test_host_syntax_never_parsed(self):
        # Deliberately broken host syntax around the region: irrelevant.
        source = "def broken(:::\n@<t>inner@</t>\n}}}"
        regions = find_annotations(source)
        assert regions[0].body(source) == "inner"

    def test_email_like_at_signs_ignored(self):
        assert find_annotations("user@example.com < x") == []


class TestAnnotationObject:
    def test_lang_default_empty(self):
        region = find_annotations("@<t>x@</t>")[0]
        assert region.lang == ""

    def test_body_extraction_exact(self):
        source = "@<t>payload@</t>"
        region = find_annotations(source)[0]
        assert region.body(source) == "payload"
        assert isinstance(region, ScopedAnnotation)
