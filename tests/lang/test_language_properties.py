"""Property-based tests over the language pipeline.

Arithmetic in the dialect must agree with a Python model; lexer/parser
roundtrips must be stable; goal-directed expression algebra must match
the kernel it compiles to.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lang.interp import JuniconInterpreter
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expression

relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_session = JuniconInterpreter()

ints = st.integers(-999, 999)
small = st.integers(1, 30)
identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s
    not in {
        "if", "then", "else", "while", "until", "every", "repeat", "do",
        "to", "by", "break", "next", "return", "suspend", "fail", "case",
        "of", "default", "not", "def", "method", "procedure", "class",
        "record", "end", "local", "var", "static", "global", "initial",
        "self", "this",
    }
)


class TestArithmeticModel:
    @given(ints, ints)
    @relaxed
    def test_addition(self, a, b):
        assert _session.eval(f"({a}) + ({b})") == a + b

    @given(ints, ints)
    @relaxed
    def test_multiplication(self, a, b):
        assert _session.eval(f"({a}) * ({b})") == a * b

    @given(ints, ints.filter(lambda n: n != 0))
    @relaxed
    def test_division_truncates(self, a, b):
        assert _session.eval(f"({a}) / ({b})") == int(a / b)

    @given(small, small)
    @relaxed
    def test_to_matches_range(self, a, b):
        assert _session.results(f"{a} to {b}") == list(range(a, b + 1))

    @given(st.integers(-50, 50), st.integers(-50, 50))
    @relaxed
    def test_comparison_model(self, a, b):
        from repro.runtime.failure import FAIL

        result = _session.eval(f"({a}) < ({b})")
        if a < b:
            assert result == b
        else:
            assert result is FAIL


class TestGeneratorAlgebra:
    @given(small, small, small)
    @relaxed
    def test_alternation_concatenates_ranges(self, a, b, c):
        got = _session.results(f"(1 to {a}) | ({b} to {b + c})")
        assert got == list(range(1, a + 1)) + list(range(b, b + c + 1))

    @given(small, st.integers(0, 10))
    @relaxed
    def test_limit_prefix(self, n, k):
        got = _session.results(f"(1 to {n}) \\ {k}")
        assert got == list(range(1, n + 1))[:k]

    @given(small, small)
    @relaxed
    def test_product_counts(self, a, b):
        got = _session.results(f"(1 to {a}) & (1 to {b})")
        assert len(got) == a * b

    @given(st.lists(ints, min_size=1, max_size=6))
    @relaxed
    def test_list_literal_roundtrip(self, values):
        literal = "[" + ", ".join(str(v) for v in values) + "]"
        assert _session.eval(literal) == values

    @given(st.lists(ints, max_size=6))
    @relaxed
    def test_bang_generates_elements(self, values):
        literal = "[" + ", ".join(str(v) for v in values) + "]"
        assert _session.results(f"!{literal}") == values


class TestLexerRoundtrips:
    @given(ints)
    @relaxed
    def test_integer_literals(self, n):
        tokens = tokenize(str(abs(n)))
        assert tokens[0].value == abs(n)

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                          exclude_characters='"\\'),
                   max_size=15))
    @relaxed
    def test_string_literal_roundtrip(self, text):
        tokens = tokenize('"' + text + '"')
        assert tokens[0].value == text

    @given(identifiers)
    @relaxed
    def test_identifier_roundtrip(self, name):
        tokens = tokenize(name)
        assert tokens[0].kind == "IDENT"
        assert tokens[0].value == name


class TestParserStability:
    @given(identifiers, identifiers, ints)
    @relaxed
    def test_assignment_structure(self, target, other, value):
        node = parse_expression(f"{target} := {other} + {value}")
        from repro.lang import ast_nodes as ast

        assert isinstance(node, ast.Assign)
        assert node.target.id == target

    @given(st.integers(0, 5))
    @relaxed
    def test_deep_parenthesization(self, depth):
        source = "(" * depth + "1" + ")" * depth
        node = parse_expression(source)
        from repro.lang import ast_nodes as ast

        assert isinstance(node, ast.Literal)
