"""Suspension interacting with every construct — the hardest corner of
the kernel (envelopes must ride past every bounded statement)."""

import pytest

from repro.runtime.failure import FAIL


class TestSuspendThroughConstructs:
    def test_through_if_branches(self, interp):
        interp.load(
            """
            def pick(flag) {
                if flag == 1 then suspend "a" | "b"
                else suspend "x" | "y";
            }
            """
        )
        assert interp.results("pick(1)") == ["a", "b"]
        assert interp.results("pick(0)") == ["x", "y"]

    def test_through_case_branches(self, interp):
        interp.load(
            """
            def variants(kind) {
                case kind of {
                    "low": suspend 1 to 3;
                    "high": suspend 8 to 9;
                };
            }
            """
        )
        assert interp.results('variants("low")') == [1, 2, 3]
        assert interp.results('variants("high")') == [8, 9]
        assert interp.results('variants("none")') == []

    def test_through_nested_loops(self, interp):
        interp.load(
            """
            def pairs(n) {
                local i, j;
                every i := 1 to n do
                    every j := 1 to n do
                        suspend [i, j];
            }
            """
        )
        assert interp.results("pairs(2)") == [[1, 1], [1, 2], [2, 1], [2, 2]]

    def test_through_until(self, interp):
        interp.load(
            """
            def countdown(n) {
                until n <= 0 do { suspend n; n -:= 1; };
            }
            """
        )
        assert interp.results("countdown(3)") == [3, 2, 1]

    def test_through_scan(self, interp):
        interp.load(
            r"""
            def letters_of(s) {
                s ? while tab(upto(&letters)) do
                    suspend tab(many(&letters)) \ 1;
            }
            """
        )
        assert interp.results('letters_of("a bb ccc")') == ["a", "bb", "ccc"]

    def test_multiple_suspends_in_sequence(self, interp):
        interp.load(
            """
            def phased() {
                suspend "one" | "two";
                suspend "three";
                return "four";
            }
            """
        )
        assert interp.results("phased()") == ["one", "two", "three", "four"]

    def test_suspend_with_do_clause_counts_resumptions(self, interp):
        interp.load(
            """
            global resumed; resumed := 0;
            def watched() {
                suspend 1 to 3 do resumed +:= 1;
            }
            """
        )
        assert interp.results("watched()") == [1, 2, 3]
        # The do-clause runs on each resumption: after results 1 and 2,
        # and once more when the final resumption exhausts the range.
        assert interp.eval("resumed") == 3

    def test_return_after_suspend_loop(self, interp):
        interp.load(
            """
            def upto_then(n) {
                local i;
                every i := 1 to n do suspend i;
                return "done";
            }
            """
        )
        assert interp.results("upto_then(2)") == [1, 2, "done"]


class TestSuspendedGeneratorsAsValues:
    def test_coexpr_over_suspender(self, interp):
        interp.load(
            """
            def src() { suspend 10 | 20; }
            global c; c := |<> src();
            """
        )
        assert interp.eval("@c") == 10
        assert interp.eval("@c") == 20
        assert interp.eval("@c") is FAIL

    def test_pipe_over_suspender_with_shared_static(self, interp):
        interp.load(
            """
            def ticket() { static n; initial n := 0; n +:= 1; return n; }
            def stream(k) { local i; every i := 1 to k do suspend ticket(); }
            """
        )
        got = interp.results("! |> stream(4)")
        assert got == [1, 2, 3, 4]

    def test_limited_suspension_is_resumable_generator(self, interp):
        interp.load("def nums() { suspend 1 to 100; }")
        node = interp.namespace["nums"]()
        stepper = iter(node)
        assert [next(stepper) for _ in range(3)] == [1, 2, 3]
        # abandoning mid-generation must not wedge the cache
        del stepper
        assert interp.results("nums() \\ 2") == [1, 2]
