"""Robustness fuzzing: hostile input must produce clean errors, never
hangs or internal exceptions from the wrong family."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import LanguageError, ReproError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.annotations import find_annotations
from repro.errors import AnnotationError

fuzz = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

printable = st.text(
    alphabet=st.characters(min_codepoint=9, max_codepoint=126), max_size=60
)

token_soup = st.lists(
    st.sampled_from(
        [
            "if", "then", "else", "while", "do", "suspend", "return",
            "def", "f", "x", "(", ")", "{", "}", "[", "]", ";", ",",
            "1", '"s"', "&pos", ":=", "|", "&", "!", "@", "to", "by",
            "<>", "|>", "|<>", "+", "*", "?", "\\", "every", "case",
            "of", ":", "break", "local",
        ]
    ),
    max_size=25,
).map(" ".join)


class TestLexerTotality:
    @given(printable)
    @fuzz
    def test_lexer_terminates_with_tokens_or_language_error(self, text):
        try:
            tokens = tokenize(text)
        except LanguageError:
            return
        assert tokens[-1].kind == "EOF"

    @given(printable)
    @fuzz
    def test_lexer_never_raises_foreign_exceptions(self, text):
        try:
            tokenize(text)
        except ReproError:
            pass


class TestParserTotality:
    @given(token_soup)
    @fuzz
    def test_parser_terminates_cleanly(self, source):
        try:
            parse(source)
        except LanguageError:
            pass

    @given(printable)
    @fuzz
    def test_parser_on_arbitrary_text(self, text):
        try:
            parse(text)
        except ReproError:
            pass


class TestMetaparserTotality:
    @given(printable)
    @fuzz
    def test_annotation_scan_terminates(self, text):
        try:
            find_annotations(text)
        except AnnotationError:
            pass

    @given(printable, printable)
    @fuzz
    def test_wrapped_region_always_found_or_rejected(self, before, body):
        if "@<" in before or "@</" in body or '"' in before or "'" in before:
            return
        source = before + '\n@<script lang="junicon">' + body + "@</script>\n"
        try:
            regions = find_annotations(source)
        except AnnotationError:
            return
        # If the body's quotes/comments swallowed the close tag the region
        # may be rejected above; when accepted, it must be the script one.
        if regions:
            assert regions[0].tag == "script"
