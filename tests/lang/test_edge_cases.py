"""Edge cases across the language pipeline: unicode, bignums, emission
corners, and embedding variants."""

import pytest

from repro.lang.embed import transform_source
from repro.lang.transform import transform_program
from repro.runtime.failure import FAIL


class TestUnicode:
    def test_unicode_string_literals(self, interp):
        assert interp.eval('"héllo wörld"') == "héllo wörld"

    def test_unicode_concat_and_size(self, interp):
        assert interp.eval('"über" || "—" || "µ"') == "über—µ"
        assert interp.eval('*"日本語"') == 3

    def test_unicode_promotion(self, interp):
        assert interp.results('!"héllo"') == list("héllo")

    def test_unicode_scanning(self, interp):
        # find works over arbitrary unicode subjects
        assert interp.results('find("ö", "höhö")') == [2, 4]

    def test_unicode_identifiers_in_host_namespace(self, interp):
        interp.namespace["café"] = 7
        assert interp.eval("café + 1") == 8


class TestBignums:
    def test_arbitrary_precision_arithmetic(self, interp):
        assert interp.eval("2 ^ 200") == 2 ** 200

    def test_base36_words_like_the_benchmark(self, interp):
        interp.namespace["W2N"] = lambda w: int(w, 36)
        assert interp.eval('W2N("zzzzzzzzzz")') == int("z" * 10, 36)

    def test_bignum_through_pipe(self, interp):
        interp.load("def bigs() { suspend (10 ^ 50) to (10 ^ 50 + 2); }")
        got = interp.results("! |> bigs()")
        assert got == [10 ** 50, 10 ** 50 + 1, 10 ** 50 + 2]

    def test_bignum_comparisons(self, interp):
        assert interp.eval("(10^30) < (10^30 + 1)") == 10 ** 30 + 1

    def test_size_of_bignum(self, interp):
        assert interp.eval("*(10 ^ 20)") == 21


class TestEmissionCorners:
    def test_class_with_superclass(self):
        namespace = {"object": object}
        code = transform_program("class Child : Base { def who() { return 1; } }")
        # provide the base in the exec namespace
        exec_ns = {"Base": type("Base", (), {"host_method": lambda self: 2})}
        exec(compile(code, "<t>", "exec"), exec_ns)
        child = exec_ns["Child"]()
        assert child.who().first() == 1
        assert child.host_method() == 2
        del namespace

    def test_multiple_top_level_statements_ordered(self):
        code = transform_program(
            "global log; log := []; put(log, 1); put(log, 2); put(log, 3);"
        )
        namespace: dict = {}
        exec(compile(code, "<t>", "exec"), namespace)
        assert namespace["log"] == [1, 2, 3]

    def test_var_decl_with_multiple_initializers(self, interp):
        interp.load("def f() { local a := 1, b := 2, c; return [a, b, c]; }")
        assert interp.eval("f()") == [1, 2, None]

    def test_empty_method_body_fails(self, interp):
        interp.load("def nothing() { }")
        assert interp.eval("nothing()") is FAIL

    def test_empty_class(self, interp):
        interp.load("class Empty { }")
        assert interp.namespace["Empty"]() is not None

    def test_record_with_no_args(self, interp):
        interp.load("record r3(a, b, c)")
        instance = interp.eval("r3()")
        assert (instance.a, instance.b, instance.c) == (None, None, None)

    def test_deeply_nested_generators(self, interp):
        got = interp.results("((((1 to 2)))) * (((3 | 4)))")
        assert got == [3, 4, 6, 8]

    def test_method_named_like_builtin_shadows_it(self, interp):
        interp.load("def sqrt(x) { return x; }")  # shadows the builtin
        assert interp.eval("sqrt(16)") == 16


class TestEmbeddingVariants:
    def test_java_region_passes_through(self):
        # lang="java" is a host language: the body is passed through
        # untouched (here it happens to be valid Python).
        out = transform_source('@<script lang="java">x = 1@</script>\n')
        assert "x = 1" in out

    def test_region_at_end_of_file_without_newline(self):
        out = transform_source('@<script lang="junicon">global z; z := 9;@</script>')
        namespace: dict = {}
        exec(compile(out, "<t>", "exec"), namespace)
        assert namespace["z"] == 9

    def test_adjacent_regions(self):
        source = (
            '@<script lang="junicon">\nglobal a; a := 1;\n@</script>\n'
            '@<script lang="junicon">\nglobal b; b := a + 1;\n@</script>\n'
        )
        namespace: dict = {}
        exec(compile(transform_source(source), "<t>", "exec"), namespace)
        assert namespace["b"] == 2

    def test_expression_region_inside_fstring_like_context(self):
        source = (
            "values = [v * 2 for v in "
            '@<script lang="junicon"> 1 to 3 @</script>]\n'
        )
        namespace: dict = {}
        exec(compile(transform_source(source), "<t>", "exec"), namespace)
        assert namespace["values"] == [2, 4, 6]

    def test_crlf_source_handled(self):
        source = '@<script lang="junicon">\r\nglobal w; w := 5;\r\n@</script>\r\n'
        namespace: dict = {}
        exec(compile(transform_source(source), "<t>", "exec"), namespace)
        assert namespace["w"] == 5


class TestScanningAcrossThreads:
    def test_pipe_body_has_its_own_scanning_world(self, interp):
        """Scanning environments are thread-local: a pipe inside a scan
        does NOT inherit &subject (documented substrate behaviour) — the
        piped expression must establish its own scan."""
        interp.load(
            """
            def pipe_words(s) {
                suspend ! |> (s ? tab(many(&letters)));
            }
            """
        )
        assert interp.results('pipe_words("abc")') == ["abc"]
