"""Mixed-language embedding: transform_source end to end."""

import textwrap

import pytest

from repro.errors import AnnotationError
from repro.lang.embed import transform_source


def run_embedded(source):
    code = transform_source(textwrap.dedent(source))
    namespace = {}
    exec(compile(code, "<embedded>", "exec"), namespace)
    return namespace, code


class TestStatementRegions:
    def test_module_level_method(self):
        namespace, _ = run_embedded(
            '''
            @<script lang="junicon">
            def evens(n) { suspend 0 to n by 2; }
            @</script>
            result = list(evens(4))
            '''
        )
        assert namespace["result"] == [0, 2, 4]

    def test_top_level_statement_region(self):
        namespace, _ = run_embedded(
            '''
            @<script lang="junicon">
            global total;
            total := 2 + 3;
            @</script>
            '''
        )
        assert namespace["total"] == 5

    def test_region_inside_class_with_context(self):
        namespace, _ = run_embedded(
            '''
            class Greeter:
                prefix = "hi "

                @<script lang="junicon" context="class">
                def greet(name) { return this::get_prefix() || name; }
                @</script>

                def get_prefix(self):
                    return self.prefix
            '''
        )
        greeter = namespace["Greeter"]()
        assert greeter.greet("bob").first() == "hi bob"

    def test_class_region_calls_sibling_junicon_method(self):
        namespace, _ = run_embedded(
            '''
            class Chain:
                @<script lang="junicon" context="class">
                def base() { return 10; }
                def derived() { return base() + 1; }
                @</script>
            '''
        )
        assert namespace["Chain"]().derived().first() == 11

    def test_prelude_injected_once(self):
        _, code = run_embedded(
            '''
            @<script lang="junicon">
            def f() { return 1; }
            @</script>
            '''
        )
        assert code.count("from repro.lang.prelude import *") == 1

    def test_prelude_respects_docstring_and_future(self):
        code = transform_source(
            '"""doc"""\nfrom __future__ import annotations\n'
            '@<script lang="junicon">\ndef f() { return 1; }\n@</script>\n'
        )
        lines = code.splitlines()
        assert lines[0] == '"""doc"""'
        assert lines[1].startswith("from __future__")
        assert "prelude" in lines[2]

    def test_no_annotations_passthrough(self):
        source = "x = 1\n"
        assert transform_source(source) == source


class TestExpressionRegions:
    def test_inline_expression(self):
        namespace, _ = run_embedded(
            '''
            values = list(@<script lang="junicon"> (1 to 3) * 2 @</script>)
            '''
        )
        assert namespace["values"] == [2, 4, 6]

    def test_inline_expression_reads_host_locals(self):
        namespace, _ = run_embedded(
            '''
            def compute():
                limit = 4
                return list(@<script lang="junicon"> 1 to limit @</script>)
            result = compute()
            '''
        )
        assert namespace["result"] == [1, 2, 3, 4]

    def test_inline_in_for_statement(self):
        """Figure 3's for (Object i : @<script ...>) shape."""
        namespace, _ = run_embedded(
            '''
            total = 0
            for i in @<script lang="junicon"> (1 to 10) \\ 3 @</script>:
                total += i
            '''
        )
        assert namespace["total"] == 6

    def test_inline_region_with_region_local_assignment(self):
        namespace, _ = run_embedded(
            '''
            got = list(@<script lang="junicon"> (x := 1 to 3) & x * x @</script>)
            '''
        )
        assert namespace["got"] == [1, 4, 9]


class TestNestedNativeRegions:
    def test_python_inside_junicon_is_singleton(self):
        namespace, _ = run_embedded(
            '''
            HOST = 5
            @<script lang="junicon">
            global lifted;
            lifted := @<script lang="python"> HOST * 2 @</script> + 1;
            @</script>
            '''
        )
        assert namespace["lifted"] == 11

    def test_python_region_outside_junicon_untouched(self):
        namespace, _ = run_embedded(
            '''
            @<script lang="python">
            plain = 40 + 2
            @</script>
            '''
        )
        assert namespace["plain"] == 42


class TestErrors:
    def test_unknown_language(self):
        with pytest.raises(AnnotationError):
            transform_source('@<script lang="cobol"> x @</script>')


class TestFigure3EndToEnd:
    def test_wordcount_embedding(self):
        namespace, _ = run_embedded(
            '''
            import math

            class WordCount:
                lines = ["ab cd", "ef"]

                @<script lang="junicon" context="class">
                def readLines() { suspend ! this::get_lines(); }
                def splitWords(line) { suspend ! line::split(); }
                def hashWords(line) {
                    suspend this::hashNumber(this::wordToNumber(splitWords(line)));
                }
                @</script>

                def get_lines(self):
                    return WordCount.lines

                def wordToNumber(self, word):
                    return int(str(word), 36)

                def hashNumber(self, number):
                    return math.sqrt(float(number))

                def runPipeline(self):
                    total = 0.0
                    for i in @<script lang="junicon"> this::hashNumber( ! (|> this::wordToNumber( splitWords(readLines()) ) ) ) @</script>:
                        total += i
                    return total

            wc = WordCount()
            import math as m
            expected = sum(
                m.sqrt(int(w, 36)) for line in WordCount.lines for w in line.split()
            )
            actual = wc.runPipeline()
            '''
        )
        assert namespace["actual"] == pytest.approx(namespace["expected"])
