"""Transformation to Python: generated code shape and executability."""

import pytest

from repro.errors import TransformError
from repro.lang.parser import parse
from repro.lang.transform import (
    CodeWriter,
    ExpressionCompiler,
    Scope,
    emit_method,
    transform_expression,
    transform_program,
)


def run_module(source):
    """Transform a Junicon unit and exec it; returns the namespace."""
    code = transform_program(source)
    namespace = {}
    exec(compile(code, "<test>", "exec"), namespace)
    return namespace


class TestGeneratedShape:
    def test_module_prelude(self):
        code = transform_program("def f() { return 1; }")
        assert "from repro.lang.prelude import *" in code
        assert "_ns = globals()" in code
        assert "_method_cache = MethodBodyCache()" in code

    def test_method_shape_mirrors_figure5(self):
        """The emitted method has the same skeleton as the paper's
        Figure 5: cache probe, reified parameters, unpack closure,
        IconMethodBody, cache registration."""
        code = transform_program("def spawnMap(f, chunk) { suspend ! (|> f(!chunk)); }")
        assert "_body = _method_cache.get_free('spawnMap')" in code
        assert "return _body.reset().unpack_args(*_args)" in code
        assert "f_r = IconVar('f').local()" in code
        assert "chunk_r = IconVar('chunk').local()" in code
        assert "def _unpack(*_p):" in code
        assert "IconMethodBody(" in code
        assert "_body.set_cache(_method_cache, 'spawnMap')" in code

    def test_spawnmap_figure5_coexpression_synthesis(self):
        """The pipe literal becomes CoExpression(factory, env_getter)
        .create_pipe() with the referenced locals shadowed."""
        code = transform_program("def spawnMap(f, chunk) { suspend ! (|> f(!chunk)); }")
        assert "CoExpression(" in code
        assert ".create_pipe()" in code
        assert "shadow(" in code            # copied local environment
        assert "chunk_r.get()" in code      # env getter reads current values
        assert "IconPromote" in code
        assert "IconSuspend" in code

    def test_marker_attribute(self):
        code = transform_program("def f() { return 1; }")
        assert "f._icon_function = True" in code

    def test_temporaries_declared(self):
        code = transform_program("def f(x) { return g(h(x)); }")
        assert "_t0 = IconTmp()" in code

    def test_globals_hoisted(self):
        code = transform_program("def f(x) { return g(h(x)); }")
        assert "_g_g = GlobalRef(_ns, 'g')" in code
        assert "_g_h = GlobalRef(_ns, 'h')" in code


class TestExecutedPrograms:
    def test_simple_return(self):
        ns = run_module("def one() { return 1; }")
        assert ns["one"]().first() == 1

    def test_params_bind_positionally_and_default_null(self):
        ns = run_module("def pair(a, b) { return [a, b]; }")
        assert ns["pair"](1, 2).first() == [1, 2]
        assert ns["pair"](1).first() == [1, None]
        assert ns["pair"]().first() == [None, None]

    def test_method_body_cache_reuse(self):
        ns = run_module("def f(x) { return x; }")
        first = ns["f"](1)
        assert first.first() == 1
        second = ns["f"](2)
        assert second is first  # recycled body
        assert second.first() == 2

    def test_top_level_statements_execute(self):
        ns = run_module("global acc; acc := 5; acc +:= 2;")
        assert ns["acc"] == 7

    def test_record(self):
        ns = run_module("record point(x, y)")
        point = ns["point"](1, 2)
        assert (point.x, point.y) == (1, 2)
        assert point.icon_type() == "point"

    def test_class_reified_duals(self):
        ns = run_module("class Box(v) { def get_v() { return v; } }")
        box = ns["Box"](5)
        assert box.v == 5
        assert box.v_r.get() == 5
        box.v_r.set(6)
        assert box.v == 6
        assert box.get_v().first() == 6

    def test_class_field_initializer(self):
        ns = run_module("class C { var n = 2 + 3; def get() { return n; } }")
        assert ns["C"]().n == 5

    def test_class_kwargs_constructor(self):
        ns = run_module("class P(x, y) { }")
        p = ns["P"](y=2)
        assert p.x is None and p.y == 2

    def test_generated_functions_interop_with_host(self):
        ns = run_module("def evens(n) { suspend 0 to n by 2; }")
        assert list(ns["evens"](6)) == [0, 2, 4, 6]


class TestInlineExpressions:
    def test_expression_compiles_to_single_python_expression(self):
        code = transform_expression("1 + 2")
        import ast as pyast

        tree = pyast.parse(code, mode="eval")  # must be a pure expression
        assert tree is not None

    def test_assigned_names_become_region_locals(self):
        code = transform_expression("x := 5 & x + 1")
        assert "_jx_x=IconVar('x')" in code

    def test_read_only_names_resolve_to_host(self):
        code = transform_expression("hostvalue + 1")
        assert "host_lookup" in code

    def test_this_maps_to_self(self):
        code = transform_expression("this::m(1)")
        assert "(self).m(1)" in code

    def test_inline_expression_evaluates(self):
        import repro.lang.prelude as prelude

        namespace = {name: getattr(prelude, name) for name in prelude.__all__}
        namespace["hostvalue"] = 10
        node = eval(transform_expression("hostvalue * (1 to 3)"), namespace)
        assert list(node) == [10, 20, 30]


class TestOperatorLowering:
    def test_value_equality_dialect(self):
        code = transform_expression("a == b")
        assert "iops.value_eq" in code

    def test_swap_forms(self):
        assert "IconSwap" in transform_expression("a :=: b")
        assert "IconRevSwap" in transform_expression("a <-> b")
        assert "IconRevAssign" in transform_expression("a <- b")

    def test_augmented_assignment(self):
        code = transform_expression("a +:= 1")
        assert "augment=iops.plus" in code

    def test_unknown_augment_rejected(self):
        from repro.lang import ast_nodes as ast

        compiler = ExpressionCompiler(Scope())
        bad = ast.Assign(op="@:=", target=ast.Name(id="a"), value=ast.Literal(value=1))
        with pytest.raises(TransformError):
            compiler.c(bad)

    def test_keyword_fail_is_empty_iterator(self):
        assert "IconFail()" in transform_expression("&fail")

    def test_scan_lowering(self):
        assert "IconScan" in transform_expression('s ? tab(0)')

    def test_section_lowering(self):
        assert "IconSection" in transform_expression("s[1:3]")

    def test_refresh_operator(self):
        assert "_jrefresh" in transform_expression("^c")


class TestScopeResolution:
    def test_locals_from_assignment(self):
        from repro.lang.transform import collect_locals

        program = parse("def f() { x := 1; global g; g := 2; }")
        names = collect_locals(program.body[0].body, [])
        assert "x" in names and "g" not in names

    def test_fields_take_precedence_over_implicit_locals(self):
        from repro.lang.transform import collect_locals

        program = parse("def f() { count := count + 1; }")
        names = collect_locals(program.body[0].body, [], fields={"count"})
        assert "count" not in names

    def test_explicit_local_shadows_field(self):
        from repro.lang.transform import collect_locals

        program = parse("def f() { local count; count := 1; }")
        names = collect_locals(program.body[0].body, [], fields={"count"})
        assert "count" in names


class TestCodeWriter:
    def test_indentation(self):
        writer = CodeWriter()
        writer.emit("a")
        writer.indent()
        writer.emit("b")
        writer.dedent()
        writer.emit("")
        assert writer.text() == "a\n    b\n\n"
