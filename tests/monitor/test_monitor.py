"""Monitoring — transparent probes over translated programs."""

import pytest

from repro.runtime.combinators import IconProduct
from repro.runtime.iterator import IconGenerator, IconValue
from repro.monitor import Event, EventKind, TracedIterator, Tracer, trace


def gen(*values):
    return IconGenerator(lambda: values)


class TestTransparency:
    def test_results_unchanged(self):
        node, _tracer = trace(IconProduct(gen(1, 2), gen(10, 20)))
        assert list(node) == [10, 20, 10, 20]

    def test_language_results_unchanged(self, interp):
        baseline = interp.results("(1 to 2) * (4 to 7)")
        tracer = Tracer()
        node = tracer.instrument(interp.expression("(1 to 2) * (4 to 7)"))
        assert list(node) == baseline

    def test_refs_pass_through_untouched(self):
        from repro.runtime.refs import IconVar
        from repro.runtime.iterator import IconVarIterator

        cell = IconVar("x")
        cell.set(1)
        node, _ = trace(IconVarIterator(cell))
        results = list(node.iterate())
        assert results == [cell]  # the *reference*, not a copy

    def test_suspension_envelopes_pass_through(self, interp):
        interp.load("def sus() { suspend 1 to 3; }")
        tracer = Tracer()
        node = tracer.instrument(interp.expression("sus()"))
        assert list(node) == [1, 2, 3]

    def test_double_instrument_is_idempotent(self):
        tracer = Tracer()
        node = tracer.instrument(gen(1))
        again = tracer.instrument(node)
        assert again is node


class TestEvents:
    def test_enter_produce_fail_lifecycle(self):
        node, tracer = trace(gen("a"))
        list(node)
        kinds = [event.kind for event in tracer.events]
        assert kinds == [EventKind.ENTER, EventKind.PRODUCE, EventKind.FAIL]

    def test_resume_on_backtracking(self):
        node, tracer = trace(gen(1, 2))
        list(node)
        kinds = [event.kind for event in tracer.events]
        assert kinds == ["enter", "produce", "resume", "produce", "fail"]

    def test_values_recorded(self):
        node, tracer = trace(gen(7, 8))
        list(node)
        produced = [e.value for e in tracer.events if e.kind == "produce"]
        assert produced == [7, 8]

    def test_depth_reflects_nesting(self):
        node, tracer = trace(IconProduct(gen(1), gen(2)))
        list(node)
        depths = {e.node: e.depth for e in tracer.events}
        assert depths["IconProduct"] == 0
        assert depths["IconGenerator"] == 1

    def test_event_str_indents(self):
        event = Event("produce", "IconValue", depth=2, value=5)
        assert str(event).startswith("    ")
        assert "5" in str(event)

    def test_sequence_numbers_increase(self):
        node, tracer = trace(gen(1, 2, 3))
        list(node)
        seqs = [e.seq for e in tracer.events]
        assert seqs == sorted(seqs)


class TestAnalysis:
    def test_counts(self):
        node, tracer = trace(IconProduct(gen(1, 2), gen(3)))
        list(node)
        counts = tracer.counts()
        # product: 2 results; left gen: 2; right gen: 2 passes x 1 result
        assert counts["produce"] == 2 + 2 + 2
        assert counts["fail"] >= 3

    def test_per_node_hotspots(self):
        node, tracer = trace(IconProduct(gen(1, 2, 3), gen(0)))
        list(node)
        per_node = tracer.per_node()
        assert per_node["IconGenerator"]["produce"] == 3 + 3
        assert per_node["IconProduct"]["produce"] == 3

    def test_transcript_readable(self):
        node, tracer = trace(gen("x"))
        list(node)
        text = tracer.transcript()
        assert "IconGenerator: produce 'x'" in text

    def test_transcript_limit(self):
        node, tracer = trace(gen(1, 2, 3))
        list(node)
        assert len(tracer.transcript(limit=2).splitlines()) == 2

    def test_clear(self):
        node, tracer = trace(gen(1))
        list(node)
        tracer.clear()
        assert tracer.events == []


class TestLiveSinkAndBounds:
    def test_sink_receives_events_live(self):
        seen = []
        node, _tracer = trace(gen(1, 2), sink=seen.append)
        stepper = node.iterate()
        next(stepper)
        assert [e.kind for e in seen] == ["enter", "produce"]

    def test_event_buffer_bounded(self):
        tracer = Tracer(max_events=10)
        node = tracer.instrument(IconGenerator(lambda: range(100)))
        list(node)
        assert len(tracer.events) <= 11

    def test_goal_directed_failure_visible(self, interp):
        """Monitoring shows *why* an expression failed — the debugging
        story of the paper's future work."""
        tracer = Tracer()
        node = tracer.instrument(interp.expression("(1 to 3) & (5 < 4)"))
        assert list(node) == []
        counts = tracer.counts()
        assert counts["produce"] >= 3   # the range kept producing
        assert counts["fail"] >= 4      # the comparison kept failing


class TestInstrumentedLanguagePrograms:
    def test_backtracking_profile(self, interp):
        """Resumes reveal the backtracking the search performed."""
        tracer = Tracer()
        node = tracer.instrument(
            interp.expression("(a := 1 to 5) & (a % 2 == 0) & a")
        )
        assert list(node) == [2, 4]
        assert tracer.counts()["resume"] > 0
