"""Monitoring across threads: probes inside pipe workers."""

import threading

from repro.coexpr.coexpression import CoExpression
from repro.coexpr.pipe import Pipe
from repro.runtime.iterator import IconGenerator
from repro.monitor import Tracer


class TestTracedPipeBodies:
    def test_events_flow_from_worker_thread(self):
        tracer = Tracer()

        def body():
            node = tracer.instrument(IconGenerator(lambda: range(3)))
            yield from node

        pipe = Pipe(CoExpression(body))
        assert list(pipe) == [0, 1, 2]
        assert tracer.counts()["produce"] == 3

    def test_worker_thread_identity_observable_via_sink(self):
        main_thread = threading.get_ident()
        event_threads = []

        def sink(_event):
            event_threads.append(threading.get_ident())

        tracer = Tracer(sink=sink)

        def body():
            node = tracer.instrument(IconGenerator(lambda: [1]))
            yield from node

        pipe = Pipe(CoExpression(body))
        list(pipe)
        assert event_threads
        assert all(tid != main_thread for tid in event_threads)

    def test_concurrent_tracers_do_not_interfere(self):
        tracer_a, tracer_b = Tracer(), Tracer()

        def make_pipe(tracer, count):
            def body():
                yield from tracer.instrument(
                    IconGenerator(lambda: range(count))
                )

            return Pipe(CoExpression(body))

        pipe_a = make_pipe(tracer_a, 5)
        pipe_b = make_pipe(tracer_b, 7)
        assert len(list(pipe_a)) == 5
        assert len(list(pipe_b)) == 7
        assert tracer_a.counts()["produce"] == 5
        assert tracer_b.counts()["produce"] == 7

    def test_shared_tracer_from_many_threads_loses_nothing(self):
        tracer = Tracer()
        pipes = []
        for index in range(6):
            def body(index=index):
                yield from tracer.instrument(
                    IconGenerator(lambda index=index: range(10))
                )

            pipes.append(Pipe(CoExpression(body)))
        totals = [len(list(p)) for p in pipes]
        assert totals == [10] * 6
        assert tracer.counts()["produce"] == 60  # list.append is atomic
