"""Futures and M-vars — the singleton-pipe building block."""

import threading
import time

import pytest

from repro.runtime.failure import FAIL
from repro.coexpr.coexpression import CoExpression
from repro.coexpr.future import Future, MVar


class TestMVar:
    def test_put_take(self):
        cell = MVar()
        cell.put(1)
        assert cell.take() == 1

    def test_put_blocks_while_full(self):
        cell = MVar()
        cell.put(1)
        done = threading.Event()

        def writer():
            cell.put(2)
            done.set()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        assert not done.wait(0.1)
        assert cell.take() == 1
        assert done.wait(2)
        assert cell.take() == 2

    def test_take_blocks_while_empty(self):
        cell = MVar()
        result = []

        def reader():
            result.append(cell.take())

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        cell.put("v")
        thread.join(timeout=2)
        assert result == ["v"]

    def test_read_does_not_empty(self):
        cell = MVar()
        cell.put(5)
        assert cell.read() == 5
        assert cell.full
        assert cell.take() == 5
        assert not cell.full

    def test_try_take(self):
        cell = MVar()
        assert cell.try_take() is FAIL
        cell.put(1)
        assert cell.try_take() == 1

    def test_timeouts(self):
        cell = MVar()
        with pytest.raises(TimeoutError):
            cell.take(timeout=0.05)
        cell.put(1)
        with pytest.raises(TimeoutError):
            cell.put(2, timeout=0.05)

    def test_synchronizes_two_threads(self):
        request, reply = MVar(), MVar()

        def server():
            value = request.take()
            reply.put(value * 2)

        thread = threading.Thread(target=server)
        thread.start()
        request.put(21)
        assert reply.take() == 42
        thread.join()


class TestFuture:
    def test_get_blocks_until_value(self):
        def slow():
            time.sleep(0.05)
            yield 99

        future = Future(CoExpression(slow))
        assert future.get() == 99

    def test_get_memoizes(self):
        calls = []

        def body():
            calls.append(1)
            yield 1

        future = Future(CoExpression(body))
        assert future.get() == 1
        assert future.get() == 1
        assert calls == [1]

    def test_failing_expression_fails(self):
        future = Future(CoExpression(lambda: iter([])))
        assert future.get() is FAIL

    def test_error_reraises(self):
        def body():
            raise ValueError("async boom")
            yield

        future = Future(CoExpression(body))
        with pytest.raises(ValueError, match="async boom"):
            future.get()

    def test_of_callable(self):
        future = Future.of_callable(lambda: 7)
        assert future.get() == 7

    def test_done_flag(self):
        gate = threading.Event()

        def body():
            gate.wait(2)
            yield 1

        future = Future(CoExpression(body))
        assert not future.done
        gate.set()
        assert future.get() == 1
        assert future.done

    def test_producer_stops_after_first_result(self):
        produced = []

        def body():
            for i in range(1000):
                produced.append(i)
                yield i

        future = Future(CoExpression(body))
        assert future.get() == 0
        time.sleep(0.1)
        assert len(produced) <= 4  # capacity-1 pipe + cancel

    def test_icon_hooks(self):
        future = Future(CoExpression(lambda: iter([3])))
        assert future.icon_type() == "future"
        assert list(future.icon_promote()) == [3]

    def test_activation_single_shot(self):
        future = Future(CoExpression(lambda: iter([3])))
        assert future.icon_activate() == 3
        assert future.icon_activate() is FAIL
