"""Co-expressions: shadowing, activation, refresh, transmission."""

import pytest

from repro.errors import InactiveCoExpressionError
from repro.runtime.failure import FAIL
from repro.runtime.iterator import IconGenerator
from repro.runtime.operations import size
from repro.coexpr.coexpression import CoExpression, coexpr_of


class TestActivation:
    def test_steps_one_at_a_time(self):
        c = CoExpression(lambda: iter([1, 2]))
        assert c.activate() == 1
        assert c.activate() == 2
        assert c.activate() is FAIL

    def test_exhausted_stays_failed(self):
        """Unlike a bare iterator node, a co-expression does not restart."""
        c = CoExpression(lambda: iter([1]))
        c.activate()
        assert c.activate() is FAIL
        assert c.activate() is FAIL

    def test_body_evaluated_lazily(self):
        built = []
        c = CoExpression(lambda: built.append(1) or iter([9]))
        assert built == []
        c.activate()
        assert built == [1]

    def test_icon_iterator_body(self):
        c = CoExpression(lambda: IconGenerator(lambda: [5]))
        assert c.activate() == 5

    def test_plain_iterable_body(self):
        c = coexpr_of([1, 2])
        assert c.activate() == 1

    def test_results_drains(self):
        c = CoExpression(lambda: iter("ab"))
        assert list(c.results()) == ["a", "b"]


class TestShadowing:
    def test_environment_snapshot_at_creation(self):
        x = [10]

        def body(x_snapshot):
            yield x_snapshot

        c = CoExpression(body, lambda: (x[0],))
        x[0] = 99  # mutate after creation
        assert c.activate() == 10  # the snapshot is isolated

    def test_multiple_env_values(self):
        c = CoExpression(lambda a, b: iter([a + b]), lambda: (1, 2))
        assert c.activate() == 3

    def test_refresh_reuses_original_snapshot(self):
        source = [5]
        c = CoExpression(lambda v: iter([v]), lambda: (source[0],))
        source[0] = 7
        assert c.activate() == 5
        fresh = c.refresh()
        assert fresh.activate() == 5  # the *original* snapshot, not 7


class TestRefresh:
    def test_refresh_restarts(self):
        c = CoExpression(lambda: iter([1, 2]))
        assert list(c.results()) == [1, 2]
        assert c.activate() is FAIL
        fresh = c.refresh()
        assert fresh is not c
        assert list(fresh.results()) == [1, 2]

    def test_refresh_preserves_name(self):
        c = CoExpression(lambda: iter([]), name="worker")
        assert c.refresh().name == "worker"


class TestTransmission:
    def test_send_into_suspended_body(self):
        def body():
            received = yield "ready"
            yield f"got {received}"

        c = CoExpression(body)
        assert c.activate() == "ready"
        assert c.activate("msg") == "got msg"

    def test_transmit_before_start_rejected(self):
        c = CoExpression(lambda: iter([1]))
        with pytest.raises(InactiveCoExpressionError):
            c.activate("early")

    def test_transmit_into_plain_iterator_ignored(self):
        c = coexpr_of([1, 2])
        assert c.activate() == 1
        assert c.activate("ignored") == 2


class TestProtocolHooks:
    def test_icon_size_counts_results(self):
        c = CoExpression(lambda: iter([1, 2, 3]))
        assert size(c) == 0
        c.activate()
        c.activate()
        assert size(c) == 2

    def test_icon_promote(self):
        c = CoExpression(lambda: iter("xy"))
        assert list(c.icon_promote()) == ["x", "y"]

    def test_icon_type(self):
        assert CoExpression(lambda: iter([])).icon_type() == "co-expression"

    def test_repr_states(self):
        c = CoExpression(lambda: iter([1]), name="n")
        assert "new" in repr(c)
        c.activate()
        assert "active" in repr(c)
        c.activate()
        assert "done" in repr(c)

    def test_coexpr_of_passthrough(self):
        c = CoExpression(lambda: iter([]))
        assert coexpr_of(c) is c


class TestSuspensionUnwrapping:
    def test_method_suspensions_surface_as_values(self):
        from repro.runtime.combinators import IconSequence
        from repro.runtime.control import IconSuspend
        from repro.runtime.invoke import IconMethodBody
        from repro.runtime.iterator import IconFail

        body = IconMethodBody(
            IconSequence(IconSuspend(IconGenerator(lambda: [1, 2])), IconFail())
        )
        c = CoExpression(lambda: body)
        assert c.activate() == 1
        assert c.activate() == 2
        assert c.activate() is FAIL
