"""Concurrency-layer fixtures: every test gets a leak-checked scheduler.

Each test in this package runs against a fresh default
:class:`PipeScheduler`; at teardown the fixture asserts that no pipe
worker thread survived the test (after a short grace period for threads
mid-exit).  A test that legitimately leaves a worker behind has a bug —
pipes must be drained, cancelled, or shut down.
"""

from __future__ import annotations

import pytest

from repro.coexpr.scheduler import PipeScheduler, use_scheduler


@pytest.fixture(autouse=True)
def pipe_scheduler():
    """A fresh default scheduler per test, leak-checked at teardown."""
    scheduler = PipeScheduler()
    with use_scheduler(scheduler):
        yield scheduler
    leaked = scheduler.leaked(join_timeout=2.0)
    assert not leaked, (
        f"pipe worker threads leaked by this test: "
        f"{[t.name for t in leaked]}"
    )
