"""The Figure 1 calculus: <>  |<>  |>  @  !  ^ — host-facing semantics."""

import pytest

from repro.runtime.failure import FAIL
from repro.runtime.iterator import IconGenerator, IconIterator, IconValue
from repro.coexpr.calculus import (
    activate,
    coexpr,
    first_class,
    future,
    pipe,
    promote,
    refresh,
    results,
)
from repro.coexpr.coexpression import CoExpression
from repro.coexpr.pipe import Pipe


class TestFirstClass:
    def test_reifies_factory(self):
        node = first_class(lambda: [1, 2])
        assert isinstance(node, IconIterator)
        assert activate(node) == 1
        assert activate(node) == 2
        assert activate(node) is FAIL

    def test_node_passthrough(self):
        node = IconValue(9)
        assert first_class(node) is node

    def test_plain_value_singleton(self):
        node = first_class(42)
        assert list(node) == [42]


class TestCoexprOperator:
    def test_env_snapshot(self):
        x = {"v": 1}
        c = coexpr(lambda snapshot: iter([snapshot]), env=lambda: (x["v"],))
        x["v"] = 2
        assert activate(c) == 1

    def test_env_as_sequence(self):
        c = coexpr(lambda a, b: iter([a * b]), env=(3, 4))
        assert activate(c) == 12

    def test_no_env(self):
        c = coexpr(lambda: iter("ab"))
        assert list(results(c)) == ["a", "b"]

    def test_named(self):
        c = coexpr(lambda: iter([]), name="my-co")
        assert c.name == "my-co"


class TestPipeOperator:
    def test_returns_pipe(self):
        p = pipe(lambda: range(3))
        assert isinstance(p, Pipe)
        assert list(p) == [0, 1, 2]

    def test_capacity_forwarded(self):
        p = pipe(lambda: range(3), capacity=7)
        assert p.capacity == 7
        assert p.out.capacity == 7


class TestActivate:
    def test_steps_coexpr(self):
        c = coexpr(lambda: iter([5]))
        assert activate(c) == 5
        assert activate(c) is FAIL

    def test_transmission(self):
        def body():
            got = yield "first"
            yield got

        c = coexpr(body)
        assert activate(c) == "first"
        assert activate(c, "sent") == "sent"

    def test_steps_python_iterator(self):
        it = iter([1])
        assert activate(it) == 1
        assert activate(it) is FAIL


class TestPromote:
    def test_promote_coexpr_remaining_results(self):
        c = coexpr(lambda: iter([1, 2, 3]))
        activate(c)  # consume one
        assert list(promote(c)) == [2, 3]

    def test_promote_pipe(self):
        assert list(promote(pipe(lambda: "xy"))) == ["x", "y"]

    def test_promote_list(self):
        assert list(promote([1, 2])) == [1, 2]

    def test_promote_node_passthrough(self):
        node = IconGenerator(lambda: [1])
        assert promote(node) is node

    def test_results_helper(self):
        assert list(results([7, 8])) == [7, 8]


class TestRefresh:
    def test_refresh_coexpr(self):
        c = coexpr(lambda: iter([1]))
        assert activate(c) == 1
        fresh = refresh(c)
        assert activate(fresh) == 1

    def test_refresh_pipe(self):
        p = pipe(lambda: [1])
        assert list(p) == [1]
        assert list(refresh(p)) == [1]

    def test_refresh_node_restarts(self):
        node = IconGenerator(lambda: [1, 2])
        node.next_value()
        refresh(node)
        assert node.next_value() == 1

    def test_refresh_plain_value_identity(self):
        assert refresh(5) == 5


class TestFuture:
    def test_future_from_expression(self):
        f = future(lambda: iter([10]))
        assert f.get() == 10


class TestPaperExamples:
    def test_figure1_pipeline_expression(self):
        """x * ! |> factorial(! |> sqrt(y)) — the paper's pipeline,
        with small stand-ins for factorial/sqrt."""
        import math

        ys = [1, 4, 9]

        def sqrt_stage():
            for y in ys:
                yield int(math.sqrt(y))

        inner = pipe(sqrt_stage)

        def fact_stage():
            for value in results(inner):
                yield math.factorial(value)

        outer = pipe(fact_stage)
        from repro.runtime.operations import IconOperation, times

        node = IconOperation(times, IconValue(10), promote(outer))
        assert list(node) == [10 * 1, 10 * 2, 10 * 6]

    def test_interleaving_with_two_coexprs(self):
        """@ alternates between two co-expressions (interleaving)."""
        evens = coexpr(lambda: iter([0, 2, 4]))
        odds = coexpr(lambda: iter([1, 3, 5]))
        woven = []
        for _ in range(3):
            woven.append(activate(evens))
            woven.append(activate(odds))
        assert woven == [0, 1, 2, 3, 4, 5]

    def test_singleton_pipe_is_a_future(self):
        """Paper: 'a singleton piped iterator that produces one result
        forms a future'."""
        p = pipe(lambda: [42], capacity=1)
        assert activate(p) == 42
        assert activate(p) is FAIL
