"""Failure injection and stress — the concurrency layer under abuse."""

import threading
import time

import pytest

from repro.errors import ChannelClosedError
from repro.runtime.failure import FAIL
from repro.coexpr.channel import CLOSED, Channel
from repro.coexpr.coexpression import CoExpression
from repro.coexpr.dataparallel import DataParallel
from repro.coexpr.pipe import Pipe
from repro.coexpr.patterns import pipeline


class TestProducerCrashes:
    def test_immediate_crash(self):
        def body():
            raise RuntimeError("died before first result")
            yield

        pipe = Pipe(CoExpression(body))
        with pytest.raises(RuntimeError, match="died before"):
            pipe.take()
        assert pipe.take() is FAIL  # channel closed after the error

    def test_crash_mid_stream_after_buffered_results(self):
        def body():
            yield 1
            yield 2
            raise ValueError("mid-stream")

        pipe = Pipe(CoExpression(body))
        pipe.start()
        time.sleep(0.05)  # let the producer buffer everything
        assert pipe.take() == 1
        assert pipe.take() == 2
        with pytest.raises(ValueError):
            pipe.take()

    def test_crash_in_one_mapreduce_task_does_not_hang(self):
        def mapper(x):
            if x == 13:
                raise KeyError("unlucky")
            return x

        dp = DataParallel(chunk_size=5)
        with pytest.raises(KeyError):
            list(dp.map_flat(mapper, range(20)))

    def test_crash_in_middle_pipeline_stage(self):
        def bad_stage(x):
            if x > 2:
                raise OSError("stage blew up")
            return x

        chain = pipeline(range(10), lambda x: x, bad_stage, str)
        collected = []
        with pytest.raises(OSError):
            for value in chain:
                collected.append(value)
        assert collected == ["0", "1", "2"]


class TestConsumerAbandonment:
    def test_abandoned_pipe_can_be_cancelled(self):
        produced = []

        def body():
            for i in range(10_000):
                produced.append(i)
                yield i

        pipe = Pipe(CoExpression(body), capacity=2)
        iterator = iter(pipe)
        next(iterator)
        del iterator
        pipe.cancel()
        time.sleep(0.1)
        count = len(produced)
        time.sleep(0.1)
        assert len(produced) == count

    def test_double_cancel_is_safe(self):
        pipe = Pipe(CoExpression(lambda: iter(range(100))), capacity=1)
        pipe.take()
        pipe.cancel()
        pipe.cancel()
        assert pipe.take() in (FAIL, 1)  # drains or fails, never hangs

    def test_cancel_before_start(self):
        pipe = Pipe(CoExpression(lambda: iter([1])))
        pipe.cancel()
        assert pipe.take() is FAIL


class TestCancellationRaces:
    def test_cancel_before_start_spawns_no_thread(self, pipe_scheduler):
        pipe = Pipe(CoExpression(lambda: iter([1])))
        assert pipe.cancel(join=True, timeout=1)  # nothing to join
        assert pipe.take() is FAIL  # and take() must not start a worker
        assert pipe_scheduler.leaked() == []
        assert pipe_scheduler.active == 0

    def test_cancel_while_producer_blocked_on_full_channel(self, pipe_scheduler):
        entered = threading.Event()

        def body():
            for i in range(1000):
                if i >= 2:  # the put of item 2 blocks on the full channel
                    entered.set()
                yield i

        pipe = Pipe(CoExpression(body), capacity=2)
        pipe.start()
        assert entered.wait(2)
        time.sleep(0.05)  # let the worker actually block in put()
        assert pipe.cancel(join=True, timeout=2)  # join proves it unblocked
        assert pipe_scheduler.leaked(join_timeout=2.0) == []

    def test_cancel_during_error_delivery(self, pipe_scheduler):
        """Cancel racing the worker's put_error: either the error was
        already queued (drains) or the channel closed first (dropped);
        both settle, neither hangs or leaks."""
        ready = threading.Event()

        def body():
            yield 1
            ready.set()
            raise RuntimeError("dying while cancelled")

        for _ in range(20):  # many interleavings of cancel vs put_error
            ready.clear()
            pipe = Pipe(CoExpression(body), capacity=1)
            assert pipe.take() == 1
            ready.wait(2)
            pipe.cancel()
            try:
                result = pipe.take()
            except RuntimeError:
                result = FAIL  # the error won the race: also acceptable
            assert result is FAIL
            assert pipe.cancel(join=True, timeout=2)

    def test_double_cancel_is_idempotent(self, pipe_scheduler):
        pipe = Pipe(CoExpression(lambda: iter(range(100))), capacity=2)
        pipe.take()
        assert pipe.cancel(join=True, timeout=2)
        assert pipe.cancel(join=True, timeout=2)  # second is a no-op
        assert pipe.cancel() in (True, False)  # non-joining form too
        assert pipe.take() in (FAIL, 1, 2)  # drains or fails, never hangs
        assert pipe_scheduler.leaked(join_timeout=2.0) == []

    def test_cancel_from_consumer_thread_while_take_blocked(self, pipe_scheduler):
        gate = Channel()  # never fed

        def body():
            yield gate.take()

        pipe = Pipe(CoExpression(body))
        results = []

        def consumer():
            results.append(pipe.take())

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)  # consumer is blocked in take()
        gate.close()
        pipe.cancel(join=True, timeout=2)
        thread.join(timeout=2)
        assert results == [FAIL]


class TestChannelMisuse:
    def test_put_error_then_close_then_drain(self):
        channel = Channel()
        channel.put(1)
        channel.put_error(RuntimeError("x"))
        channel.close()
        assert channel.take() == 1
        with pytest.raises(RuntimeError):
            channel.take()
        assert channel.take() is CLOSED

    def test_many_threads_racing_close(self):
        channel = Channel(capacity=4)
        stop = threading.Event()
        errors = []

        def producer():
            try:
                while not stop.is_set():
                    channel.put(1, timeout=0.5)
            except (ChannelClosedError, TimeoutError):
                pass
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=producer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(50):
            channel.take()
        channel.close()
        stop.set()
        for thread in threads:
            thread.join(timeout=2)
        assert not errors


class TestStress:
    def test_many_short_pipes(self):
        total = 0
        for i in range(150):
            pipe = Pipe(CoExpression(lambda i=i: iter([i])))
            total += pipe.take()
        assert total == sum(range(150))

    def test_deep_pipeline(self):
        stages = [lambda x: x + 1] * 12
        chain = pipeline(range(50), *stages, capacity=4)
        assert list(chain) == [x + 12 for x in range(50)]

    def test_interleaved_coexpr_stepping_from_threads(self):
        """Co-expression activation is internally locked."""
        c = CoExpression(lambda: iter(range(1000)))
        seen = []
        lock = threading.Lock()

        def stepper():
            while True:
                value = c.activate()
                if value is FAIL:
                    return
                with lock:
                    seen.append(value)

        threads = [threading.Thread(target=stepper) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert sorted(seen) == list(range(1000))  # nothing lost or doubled

    def test_mapreduce_many_tiny_chunks(self):
        dp = DataParallel(chunk_size=1, max_pending=8)
        results = list(dp.map_reduce(lambda x: x, range(120), lambda a, b: a + b, 0))
        assert results == list(range(120))


class TestEmbeddedConcurrencyFaults:
    def test_junicon_pipe_body_error_surfaces(self, interp):
        interp.namespace["explode"] = lambda x: 1 // 0
        interp.load("def gen() { suspend explode(1 to 3); }")
        with pytest.raises(ZeroDivisionError):
            interp.results("! |> gen()")

    def test_junicon_pipe_failure_is_clean(self, interp):
        """A failing (empty) piped expression is failure, not an error."""
        assert interp.results("! |> &fail") == []
        assert interp.eval("@ |> &fail") is FAIL
