"""The process execution tier — crash isolation for ``|>e``.

Covers the three tentpole behaviours of :mod:`repro.coexpr.proc`: the
heartbeat watchdog (a killed or wedged child surfaces
:class:`~repro.errors.PipeWorkerLost` instead of hanging), worker-lost
recovery under :func:`~repro.coexpr.supervision.supervise` (respawn +
replay to the full correct sequence), and graceful degradation to the
thread backend when a body cannot cross the process boundary.  The
package-level autouse fixture leak-checks every test: zero surviving
threads *and* zero surviving child processes.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.errors import (
    PipeError,
    PipeWorkerLost,
    RetryExhaustedError,
    SchedulerShutdownError,
)
from repro.runtime.failure import FAIL
from repro.coexpr.coexpression import CoExpression
from repro.coexpr.dataparallel import DataParallel
from repro.coexpr.patterns import pipeline, source_pipe, stage
from repro.coexpr.pipe import Pipe
from repro.coexpr.proc import KILLED_EXIT, default_context, spawn_unsafe_reason
from repro.coexpr.scheduler import PipeScheduler
from repro.coexpr.supervision import FaultPlan, supervise
from repro.monitor import EventKind, Tracer

pytestmark = pytest.mark.skipif(
    default_context().get_start_method() != "fork",
    reason="process-tier tests assume a fork platform",
)


def counted(n):
    return CoExpression(lambda: iter(range(n)), name="counted")


def proc_pipe(coexpr, **kwargs):
    kwargs.setdefault("backend", "process")
    kwargs.setdefault("heartbeat_interval", 0.05)
    return Pipe(coexpr, **kwargs)


class TestProcessStreaming:
    def test_order_preserved(self):
        pipe = proc_pipe(counted(100)).start()
        assert list(pipe.iterate()) == list(range(100))
        assert pipe.degraded is None

    def test_batched_order_preserved(self):
        pipe = proc_pipe(counted(100), batch=8).start()
        assert list(pipe.iterate()) == list(range(100))

    def test_runs_in_separate_process(self):
        def body():
            yield os.getpid()

        pipe = proc_pipe(CoExpression(body, name="pid")).start()
        child_pid = pipe.take()
        assert child_pid != os.getpid()
        assert pipe.take() is FAIL

    def test_take_fails_after_exhaustion(self):
        pipe = proc_pipe(counted(2)).start()
        assert pipe.take() == 0
        assert pipe.take() == 1
        assert pipe.take() is FAIL
        assert pipe.take() is FAIL

    def test_parent_state_isolated_from_child(self):
        # Mutations in the child body never leak back to the parent.
        state = {"touched": False}

        def body():
            state["touched"] = True
            yield 1

        pipe = proc_pipe(CoExpression(body, name="mutator")).start()
        assert list(pipe.iterate()) == [1]
        assert state["touched"] is False

    def test_bounded_capacity_streams(self):
        pipe = proc_pipe(counted(50), capacity=4).start()
        assert list(pipe.iterate()) == list(range(50))

    def test_refresh_respawns_process(self):
        pipe = proc_pipe(counted(5)).start()
        assert list(pipe.iterate()) == list(range(5))
        fresh = pipe.refresh().start()
        assert fresh.backend == "process"
        assert list(fresh.iterate()) == list(range(5))
        assert fresh.degraded is None

    def test_source_pipe_process_backend(self):
        pipe = source_pipe(range(20), backend="process").start()
        assert list(pipe.iterate()) == list(range(20))
        assert pipe.degraded is None

    def test_pipeline_isolates_source_degrades_stages(self):
        result = pipeline(
            range(10), lambda x: x + 1, backend="process"
        ).start()
        assert list(result.iterate()) == list(range(1, 11))


class TestCrashEnvelopeOrdering:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_partial_batch_flushes_before_error(self, backend):
        # Regression: under batching, a crash mid-batch must deliver the
        # buffered data *before* the error — for both transports.
        def body():
            yield 1
            yield 2
            raise ValueError("mid-batch boom")

        pipe = Pipe(
            CoExpression(body, name="crashy"),
            batch=4,
            backend=backend,
            heartbeat_interval=0.05,
        ).start()
        got = []
        with pytest.raises(ValueError, match="mid-batch boom"):
            for value in pipe.iterate():
                got.append(value)
        assert got == [1, 2]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_error_then_terminal_fail(self, backend):
        def body():
            raise RuntimeError("immediate")
            yield  # pragma: no cover

        pipe = Pipe(
            CoExpression(body, name="crash-now"),
            backend=backend,
            heartbeat_interval=0.05,
        ).start()
        with pytest.raises(RuntimeError, match="immediate"):
            pipe.take()
        assert pipe.take() is FAIL

    def test_reported_crash_is_not_worker_lost(self):
        # An error envelope + close + exit 0 is an ordinary producer
        # crash, not a lost worker.
        def body():
            yield 1
            raise ValueError("reported")

        pipe = proc_pipe(CoExpression(body, name="reporter")).start()
        with pytest.raises(ValueError, match="reported"):
            list(pipe.iterate())

    def test_cause_chain_and_traceback_cross_the_boundary(self):
        # Regression for the shared wire codec: bare pickle drops both
        # __cause__ and the traceback, so a `raise ... from ...` in the
        # child must still read like one in the parent.
        def body():
            yield 1
            try:
                raise KeyError("inner")
            except KeyError as inner:
                raise ValueError("outer") from inner

        pipe = proc_pipe(CoExpression(body, name="chained")).start()
        assert pipe.take() == 1
        with pytest.raises(ValueError, match="outer") as excinfo:
            pipe.take()
        assert isinstance(excinfo.value.__cause__, KeyError)
        assert excinfo.value.__cause__.args == ("inner",)
        assert "body" in excinfo.value.remote_traceback

    def test_unpicklable_error_decays_to_pipe_error(self):
        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        def body():
            yield 1
            raise Unpicklable("local-only")

        pipe = proc_pipe(CoExpression(body, name="weird-error")).start()
        assert pipe.take() == 1
        with pytest.raises(PipeError, match="Unpicklable"):
            pipe.take()


class TestWorkerLost:
    def test_hard_kill_surfaces_worker_lost(self):
        def body():
            yield 1
            yield 2
            os._exit(KILLED_EXIT)

        pipe = proc_pipe(CoExpression(body, name="victim")).start()
        got = []
        with pytest.raises(PipeWorkerLost) as info:
            for value in pipe.iterate():
                got.append(value)
        assert got == [1, 2]
        assert info.value.exitcode == KILLED_EXIT
        assert pipe.take() is FAIL  # terminal after the error

    def test_loss_detected_within_heartbeat_deadline(self):
        def body():
            yield 1
            os._exit(KILLED_EXIT)

        pipe = proc_pipe(
            CoExpression(body, name="victim"),
            heartbeat_interval=0.05,
            heartbeat_timeout=0.5,
        ).start()
        assert pipe.take() == 1
        started = time.monotonic()
        with pytest.raises(PipeWorkerLost):
            pipe.take()
        # Death is seen via the exit sentinel/EOF, well inside the
        # heartbeat deadline — no hang, no full-timeout wait.
        assert time.monotonic() - started < 5.0

    def test_wedged_child_trips_heartbeat_watchdog(self):
        # SIGSTOP freezes the child without killing it: no beats, no
        # EOF, no exit — only the deadline can catch it.
        def body():
            yield os.getpid()
            time.sleep(60)
            yield 2  # pragma: no cover

        pipe = proc_pipe(
            CoExpression(body, name="wedged"),
            heartbeat_interval=0.05,
            heartbeat_timeout=0.4,
        ).start()
        child_pid = pipe.take()
        os.kill(child_pid, signal.SIGSTOP)
        started = time.monotonic()
        with pytest.raises(PipeWorkerLost, match="no heartbeat"):
            pipe.take()
        assert time.monotonic() - started < 5.0

    def test_batched_kill_flushes_shipped_data_first(self):
        # Values already shipped over IPC survive the kill and arrive
        # before the loss error (data-before-error, end to end).
        def body():
            yield 1
            yield 2
            yield 3
            yield 4  # completes a batch of 4 -> flushed over IPC
            time.sleep(0.3)  # let the envelope reach the OS pipe
            os._exit(KILLED_EXIT)

        pipe = proc_pipe(
            CoExpression(body, name="victim"), batch=4, capacity=0
        ).start()
        got = []
        with pytest.raises(PipeWorkerLost):
            for value in pipe.iterate():
                got.append(value)
        assert got == [1, 2, 3, 4]


class TestSupervisedRecovery:
    def test_killed_worker_respawns_and_completes(self, tmp_path):
        # The acceptance scenario: chaos-kill the child mid-stream; the
        # supervisor counts one failure, respawns, and the consumer still
        # sees the full, correct sequence.
        plan = FaultPlan(state_dir=str(tmp_path))
        plan.kill_stage("body", on_attempts=(1,), after_items=3)

        def body():
            ctx = plan.enter("body")
            for i in range(6):
                ctx.on_item(i)
                yield i

        supervised = supervise(
            body,
            max_retries=2,
            backend="process",
            heartbeat_interval=0.05,
            restart="replay",
        )
        assert list(supervised.iterate()) == [0, 1, 2, 3, 4, 5]
        assert supervised.failures == 1
        assert plan.attempts("body") == 2

    def test_worker_lost_consumes_retry_budget(self, tmp_path):
        # A child that dies on every attempt exhausts the budget and the
        # terminal error chains the last PipeWorkerLost.
        plan = FaultPlan(state_dir=str(tmp_path))
        plan.kill_stage("body", on_attempts=(1, 2, 3), after_items=1)

        def body():
            ctx = plan.enter("body")
            for i in range(4):
                ctx.on_item(i)
                yield i

        supervised = supervise(
            body,
            max_retries=2,
            backend="process",
            heartbeat_interval=0.05,
            restart="replay",
        )
        with pytest.raises(RetryExhaustedError) as info:
            list(supervised.iterate())
        assert supervised.failures == 3
        assert isinstance(info.value.__cause__, PipeWorkerLost)

    def test_state_dir_counters_span_incarnations(self, tmp_path):
        # In-memory attempt counters reset in each forked child; the
        # file-backed counter gives respawns true attempt numbers.
        plan = FaultPlan(state_dir=str(tmp_path))
        assert plan.enter("s").attempt == 1
        assert plan.enter("s").attempt == 2
        assert plan.attempts("s") == 2
        assert plan.attempts("other") == 0


class TestDegradation:
    def test_started_coexpr_degrades(self):
        coexpr = counted(5)
        coexpr.activate()  # parent-side position state
        pipe = proc_pipe(CoExpression(lambda: iter([99]), name="x"))
        pipe.coexpr = coexpr
        assert spawn_unsafe_reason(pipe, default_context()) is not None

    def test_pipe_fed_stage_degrades_and_streams(self):
        upstream = source_pipe(range(5))
        piped = stage(
            lambda x: x * 10,
            upstream,
            backend="process",
            heartbeat_interval=0.05,
        ).start()
        assert piped.degraded is not None
        assert "in-parent" in piped.degraded
        assert list(piped.iterate()) == [0, 10, 20, 30, 40]

    def test_live_iterator_in_env_degrades(self):
        shared = iter(range(10))

        def body(src):
            yield from src

        pipe = proc_pipe(CoExpression(body, lambda: (shared,), name="it")).start()
        assert pipe.degraded is not None
        assert "iterator" in pipe.degraded
        assert list(pipe.iterate()) == list(range(10))

    def test_channel_in_env_degrades(self):
        from repro.coexpr.channel import Channel

        chan = Channel()
        for i in range(3):
            chan.put(i)
        chan.close()

        def body(c):
            while True:
                try:
                    yield c.take()
                except Exception:
                    return

        pipe = proc_pipe(CoExpression(body, lambda: (chan,), name="chan"))
        reason = spawn_unsafe_reason(pipe, default_context())
        assert reason is not None and "Channel" in reason

    def test_unpicklable_body_degrades_under_spawn(self):
        # Under a spawn context the (factory, env) payload must pickle;
        # a closure over a local can't, so the pipe silently runs as a
        # thread instead of erroring.
        local_secret = object()

        def body():
            yield id(local_secret)

        pipe = Pipe(
            CoExpression(body, name="closure"),
            backend="process",
            mp_context=multiprocessing.get_context("spawn"),
        ).start()
        assert pipe.degraded is not None
        assert "picklable" in pipe.degraded
        assert list(pipe.iterate()) == [id(local_secret)]

    def test_degraded_event_emitted(self):
        tracer = Tracer()
        with tracer.lifecycle():
            upstream = source_pipe(range(3))
            piped = stage(lambda x: x, upstream, backend="process").start()
            list(piped.iterate())
        kinds = [e.kind for e in tracer.events]
        assert EventKind.DEGRADED in kinds
        assert EventKind.SPAWN not in kinds


class TestCancellation:
    def test_cancel_stops_child_process(self):
        def body():
            i = 0
            while True:
                yield i
                i += 1

        pipe = proc_pipe(CoExpression(body, name="endless"), capacity=4).start()
        assert pipe.take() == 0
        worker = pipe._process_worker
        pipe.cancel(join=True)
        assert not worker.process.is_alive()
        # Cancel drains whatever was already buffered, then fails —
        # same contract as the thread backend.
        for _ in range(10):
            if pipe.take() is FAIL:
                break
        assert pipe.take() is FAIL

    def test_double_cancel_is_noop(self):
        pipe = proc_pipe(counted(1000), capacity=4).start()
        pipe.take()
        pipe.cancel(join=True)
        pipe.cancel(join=True)  # must not raise or double-fire
        for _ in range(10):
            if pipe.take() is FAIL:
                break
        assert pipe.take() is FAIL


class TestMonitoring:
    def test_spawn_and_loss_events(self):
        def body():
            yield 1
            os._exit(KILLED_EXIT)

        tracer = Tracer()
        with tracer.lifecycle():
            pipe = proc_pipe(CoExpression(body, name="victim")).start()
            with pytest.raises(PipeWorkerLost):
                list(pipe.iterate())
        kinds = [e.kind for e in tracer.events]
        assert EventKind.SPAWN in kinds
        assert EventKind.WORKER_LOST in kinds

    def test_process_stats_summary(self):
        def body():
            yield 1
            os._exit(KILLED_EXIT)

        tracer = Tracer()
        with tracer.lifecycle():
            pipe = proc_pipe(CoExpression(body, name="victim")).start()
            with pytest.raises(PipeWorkerLost):
                list(pipe.iterate())
            upstream = source_pipe(range(2))
            degraded = stage(lambda x: x, upstream, backend="process").start()
            list(degraded.iterate())
        stats = tracer.process_stats()
        victim = stats["pipe:victim"]
        assert victim["spawns"] == 1
        assert victim["losses"] == 1
        assert victim["exitcodes"] == [KILLED_EXIT]
        degraded_rows = [
            row for row in stats.values() if row["degraded"]
        ]
        assert degraded_rows and degraded_rows[0]["reasons"]


class TestSchedulerProcessAccounting:
    def test_shutdown_reaps_child_processes(self):
        # The child idles (beating) after its first value, so the pump
        # is parked on the connection — shutdown must terminate the
        # child, let the pump observe the death, and untrack it.
        def body():
            yield 0
            time.sleep(60)
            yield 1  # pragma: no cover

        scheduler = PipeScheduler()
        pipe = Pipe(
            CoExpression(body, name="idler"),
            backend="process",
            scheduler=scheduler,
            heartbeat_interval=0.05,
        ).start()
        assert pipe.take() == 0
        process = pipe._process_worker.process
        scheduler.shutdown(timeout=5.0)
        assert not process.is_alive()
        assert scheduler.tracked_processes == 0
        assert scheduler.leaked(join_timeout=1.0) == []

    def test_track_after_shutdown_raises(self):
        scheduler = PipeScheduler()
        scheduler.shutdown()
        with pytest.raises(SchedulerShutdownError):
            Pipe(
                CoExpression(lambda: iter([1]), name="late"),
                backend="process",
                scheduler=scheduler,
            ).start()


class TestDataParallelProcessBackend:
    def test_map_reduce_matches_thread_backend(self):
        source = list(range(40))
        threaded = DataParallel(chunk_size=10).reduce(
            lambda x: x * x, source, lambda a, b: a + b, 0
        )
        processed = DataParallel(chunk_size=10, backend="process").reduce(
            lambda x: x * x, source, lambda a, b: a + b, 0
        )
        assert processed == threaded == sum(i * i for i in source)

    def test_map_flat_ordered(self):
        dp = DataParallel(chunk_size=4, backend="process")
        assert list(dp.map_flat(lambda x: x + 1, range(10))) == list(
            range(1, 11)
        )

    def test_per_call_backend_override(self):
        dp = DataParallel(chunk_size=5)  # thread default
        total = dp.reduce(
            lambda x: x, range(10), lambda a, b: a + b, 0, backend="process"
        )
        assert total == sum(range(10))

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            DataParallel(backend="fiber")
        dp = DataParallel()
        with pytest.raises(ValueError, match="backend"):
            list(dp.map_flat(lambda x: x, range(3), backend="fiber"))
