"""The supervision layer: deadlines, retry/backoff, cancellation, leaks."""

import threading
import time

import pytest

from repro.errors import (
    PipeTimeoutError,
    RetryExhaustedError,
    SchedulerShutdownError,
)
from repro.runtime.failure import FAIL
from repro.coexpr.channel import Channel
from repro.coexpr.coexpression import CoExpression
from repro.coexpr.future import MVar
from repro.coexpr.pipe import Pipe
from repro.coexpr.patterns import pipeline, source_pipe
from repro.coexpr.scheduler import PipeScheduler
from repro.coexpr.supervision import (
    NO_BACKOFF,
    BackoffPolicy,
    FaultPlan,
    SupervisedPipe,
    supervise,
    supervised_pipeline,
    supervised_stage,
)
from repro.monitor import EventKind, Tracer


class TestBackoffPolicy:
    def test_exponential_schedule(self):
        policy = BackoffPolicy(initial=0.1, multiplier=2.0, max_delay=1.0)
        assert [policy.delay(i) for i in (1, 2, 3, 4, 5)] == [
            0.1,
            0.2,
            0.4,
            0.8,
            1.0,  # capped
        ]

    def test_no_backoff_is_instant(self):
        assert NO_BACKOFF.delay(1) == 0.0
        assert NO_BACKOFF.delay(9) == 0.0

    def test_retry_is_one_based(self):
        with pytest.raises(ValueError):
            BackoffPolicy().delay(0)

    def test_default_has_no_jitter(self):
        # Regression: adding the jitter option must not change the
        # default schedule — same deterministic exponential as ever.
        policy = BackoffPolicy(initial=0.1, multiplier=2.0, max_delay=1.0)
        assert not policy.jitter
        assert [policy.delay(i) for i in (1, 2, 3)] == [
            policy.delay(i) for i in (1, 2, 3)
        ]
        assert policy.delay(2) == 0.2

    def test_full_jitter_draws_within_the_exponential_cap(self):
        policy = BackoffPolicy(
            initial=0.1, multiplier=2.0, max_delay=1.0, jitter=True
        )
        # Full jitter: delay = U[0, 1) * min(initial * m^(n-1), cap).
        for retry, cap in ((1, 0.1), (2, 0.2), (3, 0.4), (4, 0.8), (5, 1.0)):
            assert policy.delay(retry, rand=lambda: 0.0) == 0.0
            assert policy.delay(retry, rand=lambda: 0.5) == pytest.approx(
                0.5 * cap
            )
            for _ in range(50):
                assert 0.0 <= policy.delay(retry) < cap

    def test_jitter_decorrelates_draws(self):
        policy = BackoffPolicy(
            initial=1.0, multiplier=1.0, max_delay=1.0, jitter=True
        )
        draws = {policy.delay(1) for _ in range(20)}
        assert len(draws) > 1  # a herd of reconnects spreads out


class TestFaultPlan:
    def test_counts_attempts_per_stage(self):
        plan = FaultPlan()
        plan.enter("a")
        plan.enter("a")
        plan.enter("b")
        assert plan.attempts("a") == 2
        assert plan.attempts("b") == 1
        assert plan.attempts("never") == 0

    def test_fail_at_body_start(self):
        plan = FaultPlan().fail_stage("s", on_attempts=(1,), error=ValueError)
        with pytest.raises(ValueError, match="injected fault"):
            plan.enter("s")
        plan.enter("s")  # attempt 2 is clean

    def test_fail_after_items(self):
        plan = FaultPlan().fail_stage("s", on_attempts=(1,), after_items=2)
        ctx = plan.enter("s")
        ctx.on_item("x")
        with pytest.raises(RuntimeError):
            ctx.on_item("y")

    def test_delay_uses_injected_sleep(self):
        slept = []
        plan = FaultPlan(sleep=slept.append).delay_stage("s", 0.5)
        ctx = plan.enter("s")
        ctx.on_item("x")
        ctx.on_item("y")
        assert slept == [0.5, 0.5]


class TestSupervisedSource:
    def test_clean_source_passes_through(self):
        sp = supervise(lambda: iter(range(5)), sleep=lambda d: None)
        assert list(sp) == [0, 1, 2, 3, 4]
        assert sp.failures == 0

    def test_replay_restart_is_exactly_once(self):
        """A deterministic source that crashes mid-stream twice: the
        consumer still sees each value exactly once."""
        runs = {"n": 0}

        def flaky():
            runs["n"] += 1
            attempt = runs["n"]

            def gen():
                for i in range(6):
                    if attempt <= 2 and i == 3:
                        raise RuntimeError("mid-stream crash")
                    yield i

            return gen()

        slept = []
        sp = supervise(
            flaky,
            max_retries=3,
            backoff=BackoffPolicy(initial=0.01, multiplier=2.0),
            sleep=slept.append,
        )
        assert list(sp) == [0, 1, 2, 3, 4, 5]
        assert runs["n"] == 3
        assert sp.failures == 2
        assert slept == [0.01, 0.02]  # deterministic backoff, no real sleep

    def test_exhausted_budget_raises_with_cause(self):
        def always_dies():
            raise OSError("permanent")
            yield

        sp = supervise(always_dies, max_retries=2, sleep=lambda d: None)
        with pytest.raises(RetryExhaustedError) as info:
            sp.take()
        assert info.value.attempts == 3  # initial run + 2 retries
        assert isinstance(info.value.__cause__, OSError)

    def test_zero_retries_fails_on_first_crash(self):
        def dies():
            raise KeyError("nope")
            yield

        sp = supervise(dies, max_retries=0, sleep=lambda d: None)
        with pytest.raises(RetryExhaustedError):
            sp.take()

    def test_take_after_cancel_fails(self):
        sp = supervise(lambda: iter(range(100)), capacity=1, sleep=lambda d: None)
        assert sp.take() == 0
        assert sp.cancel(join=True, timeout=2)
        assert sp.take() is FAIL


class TestSupervisedPipeline:
    def test_acceptance_middle_stage_retried(self, pipe_scheduler):
        """The issue's acceptance scenario: the middle stage raises on
        attempts 1 and 2 under supervise(max_retries=3, backoff=...);
        the pipeline completes with the correct results, deterministically
        (fault plan + injected sleep), and nothing leaks."""
        plan = FaultPlan()
        plan.fail_stage(1, on_attempts=(1, 2), error=ValueError)
        slept = []

        chain = supervised_pipeline(
            range(8),
            lambda x: x * x,
            str,
            max_retries=3,
            backoff=BackoffPolicy(initial=0.01, multiplier=2.0, max_delay=1.0),
            sleep=slept.append,
            fault_plan=plan,
        )
        assert list(chain) == [str(x * x) for x in range(8)]
        assert plan.attempts(1) == 3  # two injected crashes + the success
        assert plan.attempts(2) == 1  # the str stage never crashed
        assert slept == [0.01, 0.02]
        assert pipe_scheduler.leaked(join_timeout=2.0) == []

    def test_resume_stage_loses_nothing_on_start_faults(self, pipe_scheduler):
        plan = FaultPlan().fail_stage("mid", on_attempts=(1,))
        src = source_pipe(range(10))
        mid = supervised_stage(
            lambda x: x + 100,
            src,
            max_retries=2,
            backoff=NO_BACKOFF,
            sleep=lambda d: None,
            fault_plan=plan,
            stage_key="mid",
        )
        assert list(mid) == [x + 100 for x in range(10)]
        assert plan.attempts("mid") == 2

    def test_exhausted_stage_cancels_upstream(self, pipe_scheduler):
        plan = FaultPlan().fail_stage("mid", on_attempts=(1, 2, 3), error=OSError)
        src = source_pipe(range(1000), capacity=2)  # bounded: would orphan
        mid = supervised_stage(
            lambda x: x,
            src,
            max_retries=2,
            sleep=lambda d: None,
            fault_plan=plan,
            stage_key="mid",
        )
        with pytest.raises(RetryExhaustedError):
            list(mid)
        mid.cancel(join=True, timeout=2)
        assert pipe_scheduler.leaked(join_timeout=2.0) == []

    def test_cancel_propagates_whole_chain(self, pipe_scheduler):
        chain = supervised_pipeline(
            range(100_000),
            lambda x: x + 1,
            lambda x: x * 2,
            capacity=2,
            sleep=lambda d: None,
        )
        assert chain.take() == 2
        chain.cancel(join=True, timeout=2)
        assert pipe_scheduler.leaked(join_timeout=2.0) == []


class TestDeadlines:
    def test_pipe_take_timeout_within_2x(self, pipe_scheduler):
        release = threading.Event()

        def stalls():
            yield 1
            release.wait(30)  # cooperative stall
            yield 2

        pipe = Pipe(CoExpression(stalls), take_timeout=0.2)
        assert pipe.take() == 1
        start = time.monotonic()
        with pytest.raises(PipeTimeoutError):
            pipe.take()
        assert time.monotonic() - start < 0.4  # within 2x the deadline
        release.set()
        pipe.cancel(join=True, timeout=2)
        pipe_scheduler.shutdown(wait=True, timeout=2)
        assert pipe_scheduler.leaked() == []

    def test_pipeline_take_timeout_threads_through(self, pipe_scheduler):
        release = threading.Event()

        def slow(x):
            if x == 2:
                release.wait(30)
            return x

        chain = pipeline(range(5), slow, take_timeout=0.2)
        assert chain.take() == 0
        assert chain.take() == 1
        with pytest.raises(PipeTimeoutError):
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                chain.take()
        release.set()
        chain.cancel(join=True, timeout=2)

    def test_per_call_override_beats_pipe_default(self, pipe_scheduler):
        release = threading.Event()

        def stalls():
            release.wait(30)
            yield 1

        pipe = Pipe(CoExpression(stalls))  # no default deadline
        with pytest.raises(PipeTimeoutError):
            pipe.take(timeout=0.05)
        release.set()
        pipe.cancel(join=True, timeout=2)

    def test_timeout_is_not_retried_by_supervision(self, pipe_scheduler):
        release = threading.Event()

        def stalls():
            release.wait(30)
            yield 1

        sp = supervise(stalls, take_timeout=0.1, sleep=lambda d: None)
        with pytest.raises(PipeTimeoutError):
            sp.take()
        assert sp.failures == 0  # slow is not crashed
        release.set()
        sp.cancel(join=True, timeout=2)

    def test_supervised_timeout_leaves_no_threads(self, pipe_scheduler):
        """The acceptance leak criterion: after a deadline expiry the
        consumer cancels; leaked() then reports zero worker threads."""
        gate = Channel()  # never fed: the producer blocks cooperatively

        def stalls():
            yield 1
            yield gate.take()  # blocked until cancel closes the chain

        sp = supervise(stalls, take_timeout=0.2, sleep=lambda d: None)
        assert sp.take() == 1
        with pytest.raises(PipeTimeoutError):
            sp.take()
        gate.close()
        assert sp.cancel(join=True, timeout=2)
        pipe_scheduler.shutdown(wait=True, timeout=2)
        assert pipe_scheduler.leaked() == []


class TestDeadlineDrift:
    """Satellite: waits use one monotonic deadline, not a reset-per-wakeup."""

    def _spurious_wakeups(self, condition, lock, stop):
        while not stop.is_set():
            time.sleep(0.02)
            with lock:
                condition.notify_all()

    def test_channel_take_total_wait_bounded(self):
        channel = Channel()
        stop = threading.Event()
        waker = threading.Thread(
            target=self._spurious_wakeups,
            args=(channel._not_empty, channel._lock, stop),
        )
        waker.start()
        start = time.monotonic()
        try:
            with pytest.raises(TimeoutError):
                channel.take(timeout=0.25)
        finally:
            stop.set()
            waker.join(timeout=2)
        # A reset-per-wakeup wait would be extended past 0.25s by every
        # 20ms notification; the deadline form expires on schedule.
        assert time.monotonic() - start < 0.45

    def test_channel_put_total_wait_bounded(self):
        channel = Channel(capacity=1)
        channel.put("full")
        stop = threading.Event()
        waker = threading.Thread(
            target=self._spurious_wakeups,
            args=(channel._not_full, channel._lock, stop),
        )
        waker.start()
        start = time.monotonic()
        try:
            with pytest.raises(TimeoutError):
                channel.put("blocked", timeout=0.25)
        finally:
            stop.set()
            waker.join(timeout=2)
        assert time.monotonic() - start < 0.45

    def test_mvar_take_total_wait_bounded(self):
        cell = MVar()
        stop = threading.Event()
        waker = threading.Thread(
            target=self._spurious_wakeups,
            args=(cell._filled, cell._lock, stop),
        )
        waker.start()
        start = time.monotonic()
        try:
            with pytest.raises(TimeoutError):
                cell.take(timeout=0.25)
        finally:
            stop.set()
            waker.join(timeout=2)
        assert time.monotonic() - start < 0.45

    def test_mvar_put_read_expire(self):
        cell = MVar()
        cell.put(1)
        with pytest.raises(PipeTimeoutError):
            cell.put(2, timeout=0.05)
        empty = MVar()
        with pytest.raises(PipeTimeoutError):
            empty.read(timeout=0.05)


class TestLifecycleEvents:
    def test_retry_and_start_events_observable(self, pipe_scheduler):
        plan = FaultPlan().fail_stage(1, on_attempts=(1,), error=ValueError)
        tracer = Tracer()
        with tracer.lifecycle():
            chain = supervised_pipeline(
                range(3),
                lambda x: x,
                backoff=NO_BACKOFF,
                sleep=lambda d: None,
                fault_plan=plan,
            )
            assert list(chain) == [0, 1, 2]
        kinds = {event.kind for event in tracer.events}
        assert EventKind.START in kinds
        assert EventKind.RETRY in kinds
        retries = [e for e in tracer.events if e.kind == EventKind.RETRY]
        assert retries[0].value["attempt"] == 1

    def test_timeout_and_cancel_events(self, pipe_scheduler):
        release = threading.Event()

        def stalls():
            release.wait(30)
            yield 1

        tracer = Tracer()
        with tracer.lifecycle():
            pipe = Pipe(CoExpression(stalls, name="staller"), take_timeout=0.05)
            with pytest.raises(PipeTimeoutError):
                pipe.take()
            release.set()
            pipe.cancel(join=True, timeout=2)
        kinds = {event.kind for event in tracer.events}
        assert EventKind.TIMEOUT in kinds
        assert EventKind.CANCEL in kinds

    def test_exhaust_event(self, pipe_scheduler):
        def dies():
            raise OSError("permanent")
            yield

        tracer = Tracer()
        with tracer.lifecycle():
            sp = supervise(dies, max_retries=1, sleep=lambda d: None)
            with pytest.raises(RetryExhaustedError):
                sp.take()
        assert EventKind.EXHAUST in {event.kind for event in tracer.events}

    def test_no_events_collected_when_not_subscribed(self, pipe_scheduler):
        tracer = Tracer()  # never subscribed to the lifecycle bus
        pipe = Pipe(CoExpression(lambda: iter([1])))
        assert pipe.take() == 1
        assert pipe.take() is FAIL
        assert tracer.events == []


class TestSchedulerLifecycle:
    def test_max_workers_bounds_thread_creation(self):
        scheduler = PipeScheduler(max_workers=2)
        release = threading.Event()
        started = []

        def body():
            started.append(1)
            release.wait(10)

        for _ in range(2):
            scheduler.submit(body)
        # The third submit must block *before* spawning a thread.
        third_returned = threading.Event()

        def third():
            scheduler.submit(body)
            third_returned.set()

        helper = threading.Thread(target=third, daemon=True)
        helper.start()
        time.sleep(0.1)
        assert len(started) == 2  # the capped body has not started
        assert not third_returned.is_set()
        assert len(scheduler.leaked()) == 2  # only two threads exist
        release.set()
        assert third_returned.wait(2)
        helper.join(timeout=2)
        scheduler.shutdown(wait=True, timeout=2)
        assert scheduler.leaked() == []

    def test_shutdown_joins_workers(self):
        scheduler = PipeScheduler()
        done = []
        scheduler.submit(lambda: (time.sleep(0.1), done.append(1)))
        scheduler.shutdown(wait=True)
        assert done == [1]
        assert scheduler.leaked() == []

    def test_shutdown_idempotent_with_inflight_workers(self):
        scheduler = PipeScheduler()
        release = threading.Event()
        scheduler.submit(lambda: release.wait(10))
        scheduler.shutdown(wait=True, timeout=0.1)  # expires, doesn't hang
        scheduler.shutdown(wait=True, timeout=0.1)  # idempotent
        assert len(scheduler.leaked()) == 1  # honestly reported
        release.set()
        assert scheduler.leaked(join_timeout=2.0) == []

    def test_submit_after_shutdown_raises(self):
        scheduler = PipeScheduler()
        scheduler.shutdown()
        with pytest.raises(SchedulerShutdownError):
            scheduler.submit(lambda: None)

    def test_pooled_submit_returns_joinable_handle(self):
        scheduler = PipeScheduler(max_workers=2, pooled=True)
        handle = scheduler.submit(lambda: time.sleep(0.05))
        assert handle.join(timeout=2)
        assert not handle.is_alive()
        scheduler.shutdown(wait=True)

    def test_handle_tracks_running_body(self):
        scheduler = PipeScheduler()
        release = threading.Event()
        handle = scheduler.submit(lambda: release.wait(10))
        assert handle.is_alive()
        assert not handle.join(timeout=0.05)
        release.set()
        assert handle.join(timeout=2)


class TestBackoffInterrupt:
    """cancel() during a real (default-sleep) backoff returns immediately."""

    def test_cancel_interrupts_default_backoff_sleep(self):
        # A producer that always crashes, supervised with a backoff far
        # longer than any test budget and the *default* sleep: the first
        # crash parks the consumer in the backoff wait, and cancel must
        # interrupt that wait rather than serve out the 30 seconds.
        def always_dies():
            raise RuntimeError("crash")
            yield  # pragma: no cover - makes this a generator function

        sp = supervise(
            always_dies,
            max_retries=5,
            backoff=BackoffPolicy(initial=30.0, multiplier=1.0, max_delay=30.0),
        )
        results = []

        def consume():
            results.append(sp.take())

        consumer = threading.Thread(target=consume)
        consumer.start()
        time.sleep(0.3)  # let the crash land and the backoff wait begin
        started = time.monotonic()
        sp.cancel(join=True, timeout=5.0)
        consumer.join(5.0)
        elapsed = time.monotonic() - started
        assert not consumer.is_alive(), "consumer still parked in backoff"
        assert elapsed < 5.0, f"cancel took {elapsed:.1f}s — backoff not interrupted"
        assert results == [FAIL]  # cancelled mid-backoff: a clean FAIL, no error

    def test_injected_sleep_still_sees_exact_delays(self):
        # The interruptible wait only replaces the *default* sleep; an
        # injected sleep still receives the exact computed delays the
        # deterministic backoff tests depend on.
        slept = []
        runs = {"n": 0}

        def flaky():
            runs["n"] += 1

            def gen():
                if runs["n"] < 3:
                    raise RuntimeError("crash")
                yield from range(3)

            return gen()

        sp = supervise(
            flaky,
            max_retries=5,
            backoff=BackoffPolicy(initial=0.1, multiplier=2.0, max_delay=1.0),
            sleep=slept.append,
        )
        assert list(sp) == [0, 1, 2]
        assert slept == [0.1, 0.2]
