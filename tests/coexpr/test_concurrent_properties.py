"""Property-based tests over the concurrency layer.

The concurrency abstractions have sequential models: a pipeline is
function composition, map-reduce over a monoid is a serial fold, fan-out
plus merge is a permutation.  Hypothesis checks the equivalences over
random inputs and parameters.
"""

import operator
import os

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.coexpr.channel import CLOSED, Channel
from repro.coexpr.dataparallel import DataParallel
from repro.coexpr.patterns import merge, pipeline

values = st.lists(st.integers(-1000, 1000), max_size=30)
chunk_sizes = st.integers(1, 9)
capacities = st.integers(0, 4)

#: Tier-1 runs a quick pass; the acceptance sweep sets
#: REPRO_HYPOTHESIS_EXAMPLES=500 (same knob as test_channel_stateful).
relaxed = settings(
    max_examples=int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "25")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPipelineModel:
    @given(values, capacities)
    @relaxed
    def test_pipeline_is_composition(self, data, capacity):
        fn1 = lambda x: x * 2 + 1  # noqa: E731
        fn2 = lambda x: x - 3  # noqa: E731
        got = list(pipeline(list(data), fn1, fn2, capacity=capacity))
        assert got == [fn2(fn1(x)) for x in data]

    @given(values)
    @relaxed
    def test_identity_stage(self, data):
        assert list(pipeline(list(data), lambda x: x)) == data


class TestMapReduceModel:
    @given(values, chunk_sizes)
    @relaxed
    def test_sum_matches_serial_fold(self, data, chunk_size):
        dp = DataParallel(chunk_size=chunk_size)
        assert dp.reduce(lambda x: x, list(data), operator.add, 0) == sum(data)

    @given(values, chunk_sizes)
    @relaxed
    def test_map_flat_preserves_order(self, data, chunk_size):
        dp = DataParallel(chunk_size=chunk_size)
        assert list(dp.map_flat(lambda x: x * x, list(data))) == [x * x for x in data]

    @given(values, chunk_sizes, st.integers(1, 4))
    @relaxed
    def test_max_pending_does_not_change_results(self, data, chunk_size, pending):
        bounded = DataParallel(chunk_size=chunk_size, max_pending=pending)
        unbounded = DataParallel(chunk_size=chunk_size)
        fn = lambda x: x + 7  # noqa: E731
        assert list(bounded.map_flat(fn, list(data))) == list(
            unbounded.map_flat(fn, list(data))
        )

    @given(st.lists(st.text(max_size=5), max_size=15), chunk_sizes)
    @relaxed
    def test_string_concatenation_monoid(self, strings, chunk_size):
        dp = DataParallel(chunk_size=chunk_size)
        assert dp.reduce(lambda s: s, list(strings), operator.add, "") == "".join(
            strings
        )


#: Map functions and reducer monoids for the randomized map-reduce
#: equivalence: (fn, reducer, identity) triples where *identity* is a
#: genuine identity of *reducer* (the map-reduce contract).
_MAP_FNS = [lambda x: x, lambda x: x * 2 + 1, lambda x: -x, lambda x: x * x]
_MONOIDS = [
    (operator.add, 0),
    (operator.mul, 1),
    (max, -(10 ** 9)),
    (min, 10 ** 9),
]


class TestDataParallelProperty:
    """Randomized equivalence of the parallel map-reduce with its
    sequential model, across chunk sizes AND batched transport — the
    batching layer must be invisible to results and ordering."""

    @given(
        values,
        st.integers(0, len(_MAP_FNS) - 1),
        st.integers(0, len(_MONOIDS) - 1),
        chunk_sizes,
        st.integers(1, 16),
    )
    @relaxed
    def test_map_reduce_equals_sequential_fold(
        self, data, fn_index, monoid_index, chunk_size, batch
    ):
        fn = _MAP_FNS[fn_index]
        reducer, identity = _MONOIDS[monoid_index]
        dp = DataParallel(chunk_size=chunk_size, batch=batch)
        sequential = identity
        for value in data:
            sequential = reducer(sequential, fn(value))
        assert dp.reduce(fn, list(data), reducer, identity) == sequential

    @given(values, chunk_sizes, st.integers(1, 16))
    @relaxed
    def test_map_flat_batched_preserves_order(self, data, chunk_size, batch):
        dp = DataParallel(chunk_size=chunk_size, batch=batch)
        assert list(dp.map_flat(lambda x: x + 5, list(data))) == [
            x + 5 for x in data
        ]

    @given(
        st.lists(st.integers(-1000, 1000), min_size=4, max_size=30),
        chunk_sizes,
        st.integers(1, 16),
        st.integers(1, 3),
    )
    @relaxed
    def test_early_drain_cancellation_leaks_nothing(
        self, data, chunk_size, batch, keep
    ):
        # Abandon the generator after *keep* results: the finally-block
        # cancellation must tear down every outstanding chunk task.  The
        # package-level autouse fixture then asserts zero leaked worker
        # threads at teardown.
        dp = DataParallel(chunk_size=chunk_size, capacity=2, batch=batch)
        stream = dp.map_flat(lambda x: x * 2, list(data))
        got = []
        for value in stream:
            got.append(value)
            if len(got) >= keep:
                break
        stream.close()
        assert got == [x * 2 for x in data[: len(got)]]


class TestMergeModel:
    @given(values, values)
    @relaxed
    def test_merge_is_a_permutation(self, a, b):
        merged = list(merge(list(a), list(b)))
        assert sorted(merged) == sorted(a + b)


class TestChannelModel:
    @given(values, capacities)
    @relaxed
    def test_channel_is_fifo(self, data, capacity):
        import threading

        channel = Channel(capacity)

        def producer():
            for item in data:
                channel.put(item)
            channel.close()

        thread = threading.Thread(target=producer)
        thread.start()
        drained = list(channel)
        thread.join()
        assert drained == data
