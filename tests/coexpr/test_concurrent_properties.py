"""Property-based tests over the concurrency layer.

The concurrency abstractions have sequential models: a pipeline is
function composition, map-reduce over a monoid is a serial fold, fan-out
plus merge is a permutation.  Hypothesis checks the equivalences over
random inputs and parameters.
"""

import operator

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.coexpr.channel import CLOSED, Channel
from repro.coexpr.dataparallel import DataParallel
from repro.coexpr.patterns import merge, pipeline

values = st.lists(st.integers(-1000, 1000), max_size=30)
chunk_sizes = st.integers(1, 9)
capacities = st.integers(0, 4)

relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPipelineModel:
    @given(values, capacities)
    @relaxed
    def test_pipeline_is_composition(self, data, capacity):
        fn1 = lambda x: x * 2 + 1  # noqa: E731
        fn2 = lambda x: x - 3  # noqa: E731
        got = list(pipeline(list(data), fn1, fn2, capacity=capacity))
        assert got == [fn2(fn1(x)) for x in data]

    @given(values)
    @relaxed
    def test_identity_stage(self, data):
        assert list(pipeline(list(data), lambda x: x)) == data


class TestMapReduceModel:
    @given(values, chunk_sizes)
    @relaxed
    def test_sum_matches_serial_fold(self, data, chunk_size):
        dp = DataParallel(chunk_size=chunk_size)
        assert dp.reduce(lambda x: x, list(data), operator.add, 0) == sum(data)

    @given(values, chunk_sizes)
    @relaxed
    def test_map_flat_preserves_order(self, data, chunk_size):
        dp = DataParallel(chunk_size=chunk_size)
        assert list(dp.map_flat(lambda x: x * x, list(data))) == [x * x for x in data]

    @given(values, chunk_sizes, st.integers(1, 4))
    @relaxed
    def test_max_pending_does_not_change_results(self, data, chunk_size, pending):
        bounded = DataParallel(chunk_size=chunk_size, max_pending=pending)
        unbounded = DataParallel(chunk_size=chunk_size)
        fn = lambda x: x + 7  # noqa: E731
        assert list(bounded.map_flat(fn, list(data))) == list(
            unbounded.map_flat(fn, list(data))
        )

    @given(st.lists(st.text(max_size=5), max_size=15), chunk_sizes)
    @relaxed
    def test_string_concatenation_monoid(self, strings, chunk_size):
        dp = DataParallel(chunk_size=chunk_size)
        assert dp.reduce(lambda s: s, list(strings), operator.add, "") == "".join(
            strings
        )


class TestMergeModel:
    @given(values, values)
    @relaxed
    def test_merge_is_a_permutation(self, a, b):
        merged = list(merge(list(a), list(b)))
        assert sorted(merged) == sorted(a + b)


class TestChannelModel:
    @given(values, capacities)
    @relaxed
    def test_channel_is_fifo(self, data, capacity):
        import threading

        channel = Channel(capacity)

        def producer():
            for item in data:
                channel.put(item)
            channel.close()

        thread = threading.Thread(target=producer)
        thread.start()
        drained = list(channel)
        thread.join()
        assert drained == data
