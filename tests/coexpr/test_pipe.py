"""Pipes — the multithreaded generator proxies."""

import threading
import time

import pytest

from repro.errors import PipeError
from repro.runtime.failure import FAIL
from repro.coexpr.coexpression import CoExpression
from repro.coexpr.pipe import Pipe


def counted(n):
    return CoExpression(lambda: iter(range(n)))


class TestStreaming:
    def test_order_preserved(self):
        pipe = Pipe(counted(100))
        assert list(pipe) == list(range(100))

    def test_take_steps_one(self):
        pipe = Pipe(counted(2))
        assert pipe.take() == 0
        assert pipe.take() == 1
        assert pipe.take() is FAIL

    def test_next_value_is_take(self):
        pipe = Pipe(counted(1))
        assert pipe.next_value() == 0
        assert pipe.next_value() is FAIL

    def test_single_shot(self):
        pipe = Pipe(counted(3))
        assert list(pipe) == [0, 1, 2]
        assert list(pipe) == []  # exhausted; use refresh()

    def test_lazy_start(self):
        pipe = Pipe(counted(1))
        assert not pipe._started
        pipe.take()
        assert pipe._started

    def test_explicit_start_idempotent(self):
        pipe = Pipe(counted(1))
        assert pipe.start() is pipe
        assert pipe.start() is pipe

    def test_runs_in_separate_thread(self):
        main = threading.get_ident()

        def body():
            yield threading.get_ident()

        pipe = Pipe(CoExpression(body))
        assert pipe.take() != main


class TestThrottling:
    def test_bounded_queue_throttles_producer(self):
        produced = []

        def body():
            for i in range(1000):
                produced.append(i)
                yield i

        pipe = Pipe(CoExpression(body), capacity=4)
        assert pipe.take() == 0
        time.sleep(0.1)
        # producer can be at most capacity + a couple in flight ahead
        assert len(produced) <= 8
        pipe.cancel(join=True, timeout=2)

    def test_unbounded_runs_ahead(self):
        pipe = Pipe(counted(500), capacity=0)
        pipe.start()
        deadline = time.monotonic() + 2
        while len(pipe.out) < 500 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(pipe.out) == 500


class TestCancel:
    def test_cancel_stops_producer(self):
        produced = []

        def body():
            for i in range(100_000):
                produced.append(i)
                yield i

        pipe = Pipe(CoExpression(body), capacity=2)
        pipe.take()
        pipe.cancel()
        time.sleep(0.15)
        count_after_cancel = len(produced)
        time.sleep(0.1)
        assert len(produced) == count_after_cancel  # fully stopped
        assert count_after_cancel < 100

    def test_take_after_cancel_fails(self):
        pipe = Pipe(counted(10), capacity=1)
        pipe.take()
        pipe.cancel()
        # drains whatever is left, then fails
        for _ in range(5):
            if pipe.take() is FAIL:
                break
        assert pipe.take() is FAIL

    def test_double_cancel_join_is_noop(self):
        # Regression: a second cancel(join=True) — or any later cancel —
        # must neither raise nor re-run teardown.
        pipe = Pipe(counted(1000), capacity=2)
        pipe.take()
        pipe.cancel(join=True)
        pipe.cancel(join=True)
        pipe.cancel()
        for _ in range(5):
            if pipe.take() is FAIL:
                break
        assert pipe.take() is FAIL

    def test_cancel_after_exhaustion_is_noop(self):
        pipe = Pipe(counted(3))
        assert list(pipe) == [0, 1, 2]
        pipe.cancel(join=True)
        pipe.cancel(join=True)
        assert pipe.take() is FAIL

    def test_double_cancel_emits_one_cancel_event(self):
        from repro.monitor import EventKind, Tracer

        tracer = Tracer()
        with tracer.lifecycle():
            pipe = Pipe(counted(1000), capacity=2).start()
            pipe.take()
            pipe.cancel(join=True)
            pipe.cancel(join=True)
            pipe.cancel()
        cancels = [
            e for e in tracer.events if e.kind == EventKind.CANCEL
        ]
        assert len(cancels) == 1


class TestErrors:
    def test_producer_exception_reraises_in_consumer(self):
        def body():
            yield 1
            raise ValueError("producer exploded")

        pipe = Pipe(CoExpression(body))
        assert pipe.take() == 1
        with pytest.raises(ValueError, match="producer exploded"):
            pipe.take()

    def test_pipe_fails_after_error_delivery(self):
        def body():
            raise RuntimeError("x")
            yield

        pipe = Pipe(CoExpression(body))
        with pytest.raises(RuntimeError):
            pipe.take()
        assert pipe.take() is FAIL


class TestRefresh:
    def test_refresh_gives_fresh_pipe(self):
        pipe = Pipe(counted(2), capacity=7)
        assert list(pipe) == [0, 1]
        fresh = pipe.refresh()
        assert fresh is not pipe
        assert fresh.capacity == 7
        assert list(fresh) == [0, 1]


class TestRuntimeIntegration:
    def test_out_channel_is_public(self):
        pipe = Pipe(counted(1))
        pipe.start()
        from repro.coexpr.channel import Channel

        assert isinstance(pipe.out, Channel)

    def test_icon_activate(self):
        pipe = Pipe(counted(1))
        assert pipe.icon_activate() == 0
        assert pipe.icon_activate() is FAIL

    def test_transmit_rejected(self):
        pipe = Pipe(counted(1))
        with pytest.raises(PipeError):
            pipe.icon_activate("value")

    def test_icon_promote(self):
        pipe = Pipe(counted(3))
        assert list(pipe.icon_promote()) == [0, 1, 2]

    def test_icon_type_and_repr(self):
        pipe = Pipe(counted(1))
        assert pipe.icon_type() == "pipe"
        assert "unstarted" in repr(pipe)

    def test_usable_inside_expression_tree(self):
        from repro.runtime.operations import IconOperation, times
        from repro.runtime.iterator import IconValue

        pipe = Pipe(counted(3))
        node = IconOperation(times, IconValue(10), pipe)
        assert list(node) == [0, 10, 20]

    def test_results_deref_across_threads(self):
        """Refs must be dereferenced before crossing the channel."""
        values = [1, 2]

        def body():
            from repro.runtime.promote import promote_value

            yield from promote_value(values)  # yields ListRefs

        pipe = Pipe(CoExpression(body))
        taken = list(pipe)
        assert taken == [1, 2]
        assert not any(hasattr(item, "get") for item in taken)


class TestParallelism:
    def test_pipeline_stages_overlap(self):
        """Producer and consumer genuinely interleave (blocking handoff)."""
        order = []

        def body():
            for i in range(3):
                order.append(f"produce-{i}")
                yield i

        pipe = Pipe(CoExpression(body), capacity=1)
        for value in pipe:
            order.append(f"consume-{value}")
        assert order.index("produce-0") < order.index("consume-0")
        assert order.index("consume-2") > order.index("produce-2")
