"""DataParallel — chunking and map-reduce over pipes (Figure 4)."""

import operator

import pytest

from repro.runtime.failure import FAIL
from repro.runtime.iterator import IconGenerator
from repro.coexpr.coexpression import CoExpression
from repro.coexpr.dataparallel import (
    DataParallel,
    apply_mapped,
    iter_source,
    map_reduce,
)


class TestApplyMapped:
    def test_plain_function_single_result(self):
        assert list(apply_mapped(lambda x: x + 1, 1)) == [2]

    def test_fail_means_no_result(self):
        assert list(apply_mapped(lambda x: FAIL, 1)) == []

    def test_generator_function_fans_out(self):
        def dup(x):
            yield x
            yield x

        assert list(apply_mapped(dup, 3)) == [3, 3]

    def test_icon_iterator_result_delegates(self):
        assert list(apply_mapped(lambda x: IconGenerator(lambda: [x, x * 2]), 2)) == [2, 4]


class TestIterSource:
    def test_iterable(self):
        assert list(iter_source([1, 2])) == [1, 2]

    def test_factory(self):
        assert list(iter_source(lambda: range(3))) == [0, 1, 2]

    def test_icon_iterator(self):
        assert list(iter_source(IconGenerator(lambda: "ab"))) == ["a", "b"]

    def test_coexpression(self):
        assert list(iter_source(CoExpression(lambda: iter([5])))) == [5]


class TestChunking:
    def test_chunk_sizes(self):
        dp = DataParallel(chunk_size=3)
        chunks = list(dp.chunk(range(8)))
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7]]

    def test_empty_source(self):
        assert list(DataParallel(chunk_size=3).chunk([])) == []

    def test_exact_multiple(self):
        chunks = list(DataParallel(chunk_size=2).chunk(range(4)))
        assert chunks == [[0, 1], [2, 3]]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DataParallel(chunk_size=0)
        with pytest.raises(ValueError):
            DataParallel(max_pending=0)


class TestMapReduce:
    def test_per_chunk_results_in_order(self):
        dp = DataParallel(chunk_size=2)
        results = list(dp.map_reduce(lambda x: x, [1, 2, 3, 4, 5], operator.add, 0))
        assert results == [3, 7, 5]

    def test_reduce_totals(self):
        dp = DataParallel(chunk_size=10)
        total = dp.reduce(lambda x: x * 2, range(100), operator.add, 0)
        assert total == 2 * sum(range(100))

    def test_generator_map_function(self):
        def twice(x):
            yield x
            yield x * 10

        dp = DataParallel(chunk_size=2)
        totals = list(dp.map_reduce(twice, [1, 2], operator.add, 0))
        assert totals == [1 + 10 + 2 + 20]

    def test_string_monoid(self):
        dp = DataParallel(chunk_size=2)
        joined = dp.reduce(str, ["a", "b", "c"], operator.add, "")
        assert joined == "abc"

    def test_bounded_pending_window(self):
        dp = DataParallel(chunk_size=1, max_pending=2)
        results = list(dp.map_reduce(lambda x: x, range(6), operator.add, 0))
        assert results == list(range(6))

    def test_functional_shorthand(self):
        results = list(map_reduce(lambda x: x, [1, 2], operator.add, 0, chunk_size=1))
        assert results == [1, 2]


class TestMapFlat:
    def test_flattened_order_preserved(self):
        dp = DataParallel(chunk_size=4)
        assert list(dp.map_flat(lambda x: x + 1, range(10))) == [x + 1 for x in range(10)]

    def test_fan_out_inside_chunks(self):
        def dup(x):
            yield x
            yield -x

        dp = DataParallel(chunk_size=2)
        assert list(dp.map_flat(dup, [1, 2])) == [1, -1, 2, -2]

    def test_serial_reduction_equivalence(self):
        """The Section VII distinction: map_flat + serial sum equals
        map_reduce + combine."""
        dp = DataParallel(chunk_size=3)
        serial = sum(dp.map_flat(lambda x: x * x, range(20)))
        chunked = dp.reduce(lambda x: x * x, range(20), operator.add, 0)
        assert serial == chunked


class TestErrorPropagation:
    def test_mapper_error_reaches_caller(self):
        def explode(x):
            if x == 3:
                raise RuntimeError("mapper failed")
            return x

        dp = DataParallel(chunk_size=2)
        with pytest.raises(RuntimeError, match="mapper failed"):
            list(dp.map_flat(explode, range(5)))


class TestParallelStructure:
    def test_one_pipe_per_chunk(self):
        import threading

        seen_threads = set()

        def tag(x):
            seen_threads.add(threading.get_ident())
            return x

        dp = DataParallel(chunk_size=5)
        list(dp.map_flat(tag, range(20)))
        assert len(seen_threads) >= 2  # several worker threads participated
