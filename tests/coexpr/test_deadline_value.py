"""The Deadline value: budget semantics, clamping, normalization."""

import time

import pytest

from repro.coexpr.deadline import Deadline, deadline_from


class TestDeadline:
    def test_budget_counts_down(self):
        deadline = Deadline(5.0)
        assert not deadline.expired()
        assert 4.5 < deadline.remaining() <= 5.0

    def test_zero_budget_is_born_expired(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_negative_budget_clamps_to_zero(self):
        # A budget that arrived late (transit ate it all) is simply
        # expired — never a negative remaining or a raise.
        assert Deadline(-3.0).expired()
        assert Deadline(-3.0).remaining() == 0.0

    def test_expiry_is_monotonic(self):
        deadline = Deadline(0.05)
        time.sleep(0.06)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_bound_clips_a_timeout(self):
        deadline = Deadline(10.0)
        assert deadline.bound(0.5) == 0.5          # timeout under budget
        assert 9.0 < deadline.bound(60.0) <= 10.0  # clipped to remaining
        assert 9.0 < deadline.bound(None) <= 10.0  # None = the remaining

    def test_deadline_from_normalizes(self):
        assert deadline_from(None) is None
        shared = Deadline(1.0)
        assert deadline_from(shared) is shared  # passed through, not copied
        built = deadline_from(2.5)
        assert isinstance(built, Deadline)
        assert 2.0 < built.remaining() <= 2.5

    def test_deadline_from_rejects_garbage(self):
        with pytest.raises(ValueError):
            deadline_from(-1.0)
        with pytest.raises(TypeError):
            deadline_from("soon")
