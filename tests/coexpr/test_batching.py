"""Batched channel transport — the boundary-condition regression suite.

Batching is exactly the kind of change that silently reorders or drops
elements at close/cancel/error boundaries, so every such boundary gets an
explicit test: flush-on-exhaustion, flush-before-error, linger flushes,
cancellation mid-batch, interaction with deadlines, ``put_error``'s
capacity bypass, and the supervision replay/resume restart modes.
"""

import threading
import time

import pytest

from repro.errors import ChannelClosedError, PipeTimeoutError, RetryExhaustedError
from repro.coexpr.channel import CLOSED, Channel
from repro.coexpr.dataparallel import DataParallel
from repro.coexpr.patterns import pipeline, source_pipe, stage
from repro.coexpr.pipe import Pipe
from repro.coexpr.supervision import NO_BACKOFF, supervise, supervised_pipeline
from repro.monitor.events import EventKind
from repro.monitor.tracer import Tracer
from repro.runtime.failure import FAIL


# ---------------------------------------------------------------------------
# Channel.put_many / take_many
# ---------------------------------------------------------------------------

class TestPutMany:
    def test_roundtrip_preserves_order(self):
        ch = Channel(capacity=8)
        assert ch.put_many([1, 2, 3]) == 3
        assert ch.put_many([4, 5]) == 2
        assert [ch.take() for _ in range(5)] == [1, 2, 3, 4, 5]

    def test_empty_batch_is_a_noop(self):
        ch = Channel(capacity=1)
        assert ch.put_many([]) == 0
        assert len(ch) == 0

    def test_oversized_batch_waits_for_space(self):
        ch = Channel(capacity=2)
        taken = []

        def consumer():
            while True:
                item = ch.take()
                if item is CLOSED:
                    return
                taken.append(item)

        worker = threading.Thread(target=consumer, daemon=True)
        worker.start()
        ch.put_many(list(range(10)))  # 5x the capacity: several waits
        ch.close()
        worker.join(5.0)
        assert taken == list(range(10))

    def test_timeout_mid_batch_keeps_prefix(self):
        ch = Channel(capacity=3)
        with pytest.raises(PipeTimeoutError):
            ch.put_many([1, 2, 3, 4, 5], timeout=0.05)
        # the prefix that fit stays enqueued, in order
        assert ch.take_many(10) == [1, 2, 3]

    def test_put_many_on_closed_channel_raises(self):
        ch = Channel()
        ch.close()
        with pytest.raises(ChannelClosedError):
            ch.put_many([1])

    def test_close_mid_wait_unblocks_producer(self):
        ch = Channel(capacity=1)
        ch.put(0)
        error = []

        def producer():
            try:
                ch.put_many([1, 2, 3])
            except ChannelClosedError as exc:
                error.append(exc)

        worker = threading.Thread(target=producer, daemon=True)
        worker.start()
        time.sleep(0.05)
        ch.close()
        worker.join(5.0)
        assert error, "blocked put_many must raise when the channel closes"


class TestTakeMany:
    def test_drains_up_to_max_n(self):
        ch = Channel()
        ch.put_many(list(range(10)))
        assert ch.take_many(4) == [0, 1, 2, 3]
        assert ch.take_many(100) == [4, 5, 6, 7, 8, 9]

    def test_returns_as_soon_as_one_item_exists(self):
        ch = Channel()
        ch.put(1)
        start = time.monotonic()
        assert ch.take_many(64, timeout=5.0) == [1]
        assert time.monotonic() - start < 1.0  # no wait for a full batch

    def test_closed_and_drained_returns_sentinel(self):
        ch = Channel()
        ch.put(1)
        ch.close()
        assert ch.take_many(4) == [1]
        assert ch.take_many(4) is CLOSED

    def test_timeout_on_empty_open_channel(self):
        ch = Channel()
        with pytest.raises(PipeTimeoutError):
            ch.take_many(4, timeout=0.05)

    def test_error_envelope_never_reordered_past_data(self):
        ch = Channel()
        ch.put_many([1, 2])
        ch.put_error(ValueError("boom"))
        ch.put_many([3, 4])
        assert ch.take_many(100) == [1, 2]  # stops just before the envelope
        with pytest.raises(ValueError):
            ch.take_many(100)  # envelope at the head re-raises
        assert ch.take_many(100) == [3, 4]

    def test_max_n_must_be_positive(self):
        with pytest.raises(ValueError):
            Channel().take_many(0)


# ---------------------------------------------------------------------------
# The PR-1 wart: put on a capacity=0 channel and the deadline API
# ---------------------------------------------------------------------------

class TestUnboundedPutDeadline:
    """Pins the uniform deadline semantics: the deadline bounds the wait
    for space, and a put that needs no wait succeeds regardless of it."""

    def test_unbounded_put_accepts_and_trivially_meets_any_timeout(self):
        ch = Channel(capacity=0)
        ch.put(1, timeout=0.0)  # never waits, so never expires
        ch.put_many([2, 3], timeout=0.0)
        assert ch.take_many(10) == [1, 2, 3]

    def test_bounded_put_with_free_space_ignores_expired_deadline(self):
        ch = Channel(capacity=1)
        ch.put(1, timeout=0.0)  # same rule: no wait needed, no expiry
        assert ch.take() == 1

    def test_bounded_full_put_expires(self):
        ch = Channel(capacity=1)
        ch.put(1)
        with pytest.raises(PipeTimeoutError):
            ch.put(2, timeout=0.0)

    def test_unbounded_put_after_close_raises_not_times_out(self):
        ch = Channel(capacity=0)
        ch.close()
        with pytest.raises(ChannelClosedError):
            ch.put(1, timeout=1.0)


# ---------------------------------------------------------------------------
# Pipe-level batching: equivalence and boundary flushes
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("batch", [1, 2, 7, 64, 512])
def test_batched_pipe_equals_unbatched_stream(batch):
    n = 200
    piped = Pipe(lambda: iter(range(n)), batch=batch)
    assert list(piped) == list(range(n))


@pytest.mark.parametrize("batch", [2, 5, 64])
def test_flush_on_exhaustion_strands_nothing(batch):
    # 7 elements never divide evenly into these batches: the tail is a
    # partial batch that only flush-on-close delivers.
    piped = Pipe(lambda: iter(range(7)), batch=batch)
    assert list(piped) == list(range(7))


def test_batch_of_one_is_the_unbatched_path():
    piped = Pipe(lambda: iter(range(5)), batch=1)
    assert list(piped) == list(range(5))
    assert piped.batch_stats == {"flushes": 0, "items": 0, "mean_batch": 0.0}


def test_batch_must_be_positive():
    with pytest.raises(ValueError):
        Pipe(lambda: iter(()), batch=0)
    with pytest.raises(ValueError):
        Pipe(lambda: iter(()), max_linger=-1.0)


def test_error_after_partial_batch_delivers_data_first():
    def body():
        yield 1
        yield 2
        raise RuntimeError("producer crashed")

    piped = Pipe(body, batch=64)
    assert piped.take() == 1
    assert piped.take() == 2  # buffered results beat the crash report
    with pytest.raises(RuntimeError):
        piped.take()


def test_error_with_full_bounded_queue_still_delivered():
    # The crash report must arrive even when the (tiny) queue is full of
    # flushed batches: put_error bypasses capacity.
    def body():
        for i in range(4):
            yield i
        raise RuntimeError("late crash")

    piped = Pipe(body, capacity=2, batch=2)
    piped.start()
    got = []
    with pytest.raises(RuntimeError):
        while True:
            value = piped.take(timeout=5.0)
            if value is FAIL:
                break
            got.append(value)
    assert got == [0, 1, 2, 3]


def test_max_linger_flushes_partial_batches():
    gate = threading.Event()

    def body():
        yield 1
        yield 2
        gate.wait(5.0)  # stall far longer than the linger
        yield 3

    piped = Pipe(body, batch=64, max_linger=0.01)
    # Without linger the first two results would sit in the worker buffer
    # until the batch filled; the age check after each result flushes them.
    assert piped.take(timeout=2.0) == 1
    assert piped.take(timeout=2.0) == 2
    gate.set()
    assert piped.take(timeout=2.0) == 3
    assert piped.take() is FAIL


def test_cancel_mid_batch_unblocks_producer_and_propagates_upstream():
    src = source_pipe(iter(range(10_000)), capacity=4, batch=2)
    downstream = stage(lambda x: x, src, capacity=4, batch=2)
    assert downstream.take() == 0
    downstream.cancel(join=True, timeout=5.0)
    assert src.cancelled  # upstream chain torn down, nothing left blocked


def test_take_timeout_with_batching_still_expires():
    gate = threading.Event()

    def body():
        gate.wait(10.0)
        yield 1

    piped = Pipe(body, batch=8)
    with pytest.raises(PipeTimeoutError):
        piped.take(timeout=0.05)
    gate.set()
    assert piped.take(timeout=5.0) == 1


def test_refresh_carries_batch_configuration():
    piped = Pipe(lambda: iter(range(3)), capacity=5, batch=4, max_linger=0.5)
    fresh = piped.refresh()
    assert (fresh.batch, fresh.max_linger, fresh.capacity) == (4, 0.5, 5)
    assert list(fresh) == [0, 1, 2]
    piped.cancel()


# ---------------------------------------------------------------------------
# Composition layers
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("batch", [1, 3, 16])
def test_pipeline_batched_matches_composition(batch):
    data = list(range(100))
    got = list(pipeline(data, lambda x: x + 1, lambda x: x * 2, batch=batch))
    assert got == [(x + 1) * 2 for x in data]


def test_pipeline_batched_with_bounded_capacity():
    data = list(range(64))
    got = list(pipeline(data, lambda x: -x, capacity=4, batch=8))
    assert got == [-x for x in data]


@pytest.mark.parametrize("batch", [1, 4])
def test_dataparallel_map_flat_batched(batch):
    dp = DataParallel(chunk_size=5, batch=batch)
    assert list(dp.map_flat(lambda x: x * x, range(23))) == [
        x * x for x in range(23)
    ]


def test_supervised_replay_restart_with_batching():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        for i in range(10):
            if calls["n"] == 1 and i == 6:
                raise RuntimeError("first-run crash")
            yield i

    sp = supervise(flaky, batch=4, backoff=NO_BACKOFF, sleep=lambda d: None)
    # Exactly-once despite the crash landing mid-batch: flushed-but-
    # undelivered results are skipped by the replay accounting.
    assert list(sp) == list(range(10))
    assert sp.failures == 1


def test_supervised_resume_pipeline_with_batching():
    from repro.coexpr.supervision import FaultPlan

    plan = FaultPlan(sleep=lambda d: None).fail_stage(1, on_attempts=(1,))
    out = supervised_pipeline(
        range(20),
        lambda x: x * 3,
        backoff=NO_BACKOFF,
        batch=4,
        sleep=lambda d: None,
        fault_plan=plan,
    )
    # The stage crashes at body start on attempt 1 (nothing consumed), so
    # the resumed body sees the full upstream stream.
    assert list(out) == [x * 3 for x in range(20)]
    assert plan.attempts(1) == 2


def test_supervised_exhaust_with_batching():
    def always_crash():
        yield 1
        raise RuntimeError("again")

    sp = supervise(
        always_crash, batch=8, max_retries=1, backoff=NO_BACKOFF, sleep=lambda d: None
    )
    with pytest.raises(RetryExhaustedError):
        list(sp)


# ---------------------------------------------------------------------------
# Monitor-bus stats
# ---------------------------------------------------------------------------

def test_batch_events_and_tracer_stats():
    tracer = Tracer()
    with tracer.lifecycle():
        piped = Pipe(lambda: iter(range(100)), batch=16)
        assert list(piped) == list(range(100))
        # drain fully inside the sink subscription
        piped.cancel(join=True, timeout=5.0)
    batch_events = [e for e in tracer.events if e.kind == EventKind.BATCH]
    assert batch_events, "each flush must emit a batch event"
    sizes = [e.value["size"] for e in batch_events]
    assert sum(sizes) == 100
    assert all(1 <= s <= 16 for s in sizes)
    assert all("queued" in e.value for e in batch_events)

    stats = tracer.batch_stats()
    (node_stats,) = stats.values()
    assert node_stats["items"] == 100
    assert node_stats["flushes"] == len(sizes)
    assert node_stats["mean_batch"] == pytest.approx(100 / len(sizes))
    assert node_stats["mean_occupancy"] >= 0.0

    counts = tracer.counts()
    assert counts[EventKind.BATCH] == len(sizes)


def test_pipe_batch_stats_counters():
    piped = Pipe(lambda: iter(range(10)), batch=4)
    assert list(piped) == list(range(10))
    stats = piped.batch_stats
    assert stats["items"] == 10
    assert stats["flushes"] == 3  # 4 + 4 + 2 (flush-on-exhaustion)
    assert stats["mean_batch"] == pytest.approx(10 / 3)
