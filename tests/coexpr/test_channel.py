"""Blocking channels: put/take, close, bounds, error propagation."""

import threading
import time

import pytest

from repro.errors import ChannelClosedError
from repro.coexpr.channel import CLOSED, Channel, RaiseEnvelope


class TestBasics:
    def test_fifo_order(self):
        channel = Channel()
        for value in (1, 2, 3):
            channel.put(value)
        assert [channel.take() for _ in range(3)] == [1, 2, 3]

    def test_len(self):
        channel = Channel()
        channel.put(1)
        channel.put(2)
        assert len(channel) == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Channel(-1)

    def test_repr(self):
        channel = Channel(capacity=4)
        assert "capacity=4" in repr(channel)


class TestClose:
    def test_take_after_close_drains_then_closed(self):
        channel = Channel()
        channel.put(1)
        channel.close()
        assert channel.take() == 1
        assert channel.take() is CLOSED
        assert channel.take() is CLOSED  # idempotent

    def test_put_after_close_raises(self):
        channel = Channel()
        channel.close()
        with pytest.raises(ChannelClosedError):
            channel.put(1)

    def test_close_unblocks_take(self):
        channel = Channel()
        results = []

        def consumer():
            results.append(channel.take())

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        channel.close()
        thread.join(timeout=2)
        assert results == [CLOSED]

    def test_close_unblocks_blocked_put(self):
        channel = Channel(capacity=1)
        channel.put("fill")
        errors = []

        def producer():
            try:
                channel.put("blocked")
            except ChannelClosedError:
                errors.append("closed")

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        channel.close()
        thread.join(timeout=2)
        assert errors == ["closed"]

    def test_closed_property(self):
        channel = Channel()
        assert not channel.closed
        channel.close()
        assert channel.closed


class TestCapacity:
    def test_bounded_put_blocks_until_take(self):
        channel = Channel(capacity=2)
        channel.put(1)
        channel.put(2)
        done = threading.Event()

        def producer():
            channel.put(3)
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not done.wait(0.1)  # blocked on the bound
        assert channel.take() == 1
        assert done.wait(2)

    def test_unbounded_put_ignores_timeout(self):
        """capacity=0 never waits for space: timeout is documented as
        ignored, and the put returns immediately."""
        channel = Channel(capacity=0)
        start = time.monotonic()
        for i in range(100):
            channel.put(i, timeout=0.000001)  # would expire if honoured
        assert time.monotonic() - start < 0.5
        assert len(channel) == 100

    def test_unbounded_put_raises_promptly_after_close(self):
        """Regression pin: a closed unbounded channel rejects puts at
        once — it never blocks or silently accepts."""
        channel = Channel(capacity=0)
        channel.close()
        start = time.monotonic()
        with pytest.raises(ChannelClosedError):
            channel.put(1)
        with pytest.raises(ChannelClosedError):
            channel.put(2, timeout=5.0)  # the timeout must not delay the error
        assert time.monotonic() - start < 0.5

    def test_put_error_bypasses_capacity(self):
        """Error delivery is unthrottled: a full bounded channel still
        accepts the crash report (a dying producer never blocks on it)."""
        channel = Channel(capacity=1)
        channel.put("fill")
        channel.put_error(RuntimeError("crash"))  # must not block
        assert channel.take() == "fill"
        with pytest.raises(RuntimeError, match="crash"):
            channel.take()

    def test_put_error_on_closed_channel_raises(self):
        channel = Channel()
        channel.close()
        with pytest.raises(ChannelClosedError):
            channel.put_error(RuntimeError("late"))

    def test_put_timeout(self):
        channel = Channel(capacity=1)
        channel.put(1)
        with pytest.raises(TimeoutError):
            channel.put(2, timeout=0.05)

    def test_take_timeout(self):
        channel = Channel()
        with pytest.raises(TimeoutError):
            channel.take(timeout=0.05)

    def test_unbounded_never_blocks(self):
        channel = Channel(capacity=0)
        for value in range(10_000):
            channel.put(value)
        assert len(channel) == 10_000


class TestErrors:
    def test_put_error_reraises_at_consumer(self):
        channel = Channel()
        channel.put_error(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            channel.take()

    def test_error_ordered_with_items(self):
        channel = Channel()
        channel.put(1)
        channel.put_error(KeyError("k"))
        assert channel.take() == 1
        with pytest.raises(KeyError):
            channel.take()

    def test_raise_envelope_is_data_until_taken(self):
        envelope = RaiseEnvelope(ValueError("x"))
        assert isinstance(envelope.error, ValueError)


class TestPollAndIter:
    def test_poll_states(self):
        channel = Channel()
        assert channel.poll() is None
        channel.put(1)
        assert channel.poll() == 1
        channel.close()
        assert channel.poll() is CLOSED

    def test_poll_reraises_errors(self):
        channel = Channel()
        channel.put_error(RuntimeError("r"))
        with pytest.raises(RuntimeError):
            channel.poll()

    def test_iteration_drains_until_close(self):
        channel = Channel()
        for value in range(3):
            channel.put(value)
        channel.close()
        assert list(channel) == [0, 1, 2]

    def test_concurrent_producers_consumers(self):
        channel = Channel(capacity=8)
        collected = []
        lock = threading.Lock()

        def producer(base):
            for i in range(100):
                channel.put(base + i)

        def consumer():
            while True:
                item = channel.take()
                if item is CLOSED:
                    return
                with lock:
                    collected.append(item)

        producers = [
            threading.Thread(target=producer, args=(base,)) for base in (0, 1000)
        ]
        consumers = [threading.Thread(target=consumer) for _ in range(2)]
        for thread in producers + consumers:
            thread.start()
        for thread in producers:
            thread.join()
        channel.close()
        for thread in consumers:
            thread.join()
        assert sorted(collected) == sorted(list(range(100)) + list(range(1000, 1100)))
