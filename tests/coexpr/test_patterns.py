"""Pipeline composition patterns (Figure 2)."""

import math
import threading
import time

import pytest

from repro.coexpr.patterns import fan_out, merge, pipeline, source_pipe, stage


class TestSourcePipe:
    def test_streams_source(self):
        assert list(source_pipe(range(5))) == [0, 1, 2, 3, 4]

    def test_factory_source(self):
        assert list(source_pipe(lambda: iter("ab"))) == ["a", "b"]


class TestStage:
    def test_maps_elementwise(self):
        assert list(stage(lambda x: x * 2, range(3))) == [0, 2, 4]

    def test_generator_stage_fans_out(self):
        def split(s):
            yield from s.split()

        assert list(stage(split, ["a b", "c"])) == ["a", "b", "c"]

    def test_stage_over_pipe(self):
        upstream = source_pipe(range(3))
        assert list(stage(lambda x: x + 1, upstream)) == [1, 2, 3]

    def test_runs_in_own_thread(self):
        main = threading.get_ident()
        seen = []

        def probe(x):
            seen.append(threading.get_ident())
            return x

        list(stage(probe, [1]))
        assert seen and seen[0] != main


class TestPipeline:
    def test_chained_stages(self):
        result = list(pipeline(range(10), lambda x: x * x, math.sqrt))
        assert result == [float(x) for x in range(10)]

    def test_no_stages_is_source(self):
        assert list(pipeline([3, 4])) == [3, 4]

    def test_each_stage_own_thread(self):
        threads = {}

        def tag(label):
            def fn(x):
                threads.setdefault(label, threading.get_ident())
                return x

            fn.__name__ = label
            return fn

        list(pipeline(range(3), tag("s1"), tag("s2")))
        assert threads["s1"] != threads["s2"]

    def test_capacity_throttles_whole_chain(self):
        produced = []

        def source():
            for i in range(1000):
                produced.append(i)
                yield i

        chain = pipeline(source, lambda x: x, capacity=2)
        assert chain.take() == 0
        time.sleep(0.1)
        assert len(produced) < 50
        chain.cancel(join=True, timeout=2)  # propagates to the source stage

    def test_stage_error_propagates(self):
        def explode(x):
            raise ValueError("stage error")

        with pytest.raises(ValueError, match="stage error"):
            list(pipeline([1], explode))


class TestFanOut:
    def test_partitions_work(self):
        parts = fan_out(range(30), 3)
        collected = []
        lock = threading.Lock()

        def drain(part):
            for value in part:
                with lock:
                    collected.append(value)

        threads = [threading.Thread(target=drain, args=(p,)) for p in parts]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert sorted(collected) == list(range(30))

    def test_work_sharing_not_broadcast(self):
        parts = fan_out(range(10), 2)
        all_values = list(parts[0]) + list(parts[1])
        assert sorted(all_values) == list(range(10))

    def test_count_validation(self):
        with pytest.raises(ValueError):
            fan_out([1], 0)


class TestMerge:
    def test_merges_all_items(self):
        merged = merge(range(5), range(10, 15))
        assert sorted(merged) == sorted(list(range(5)) + list(range(10, 15)))

    def test_empty_merge_closes(self):
        assert list(merge()) == []

    def test_merge_of_stages(self):
        left = stage(lambda x: x * 2, range(3))
        right = stage(lambda x: x + 100, range(3))
        merged = sorted(merge(left, right))
        assert merged == [0, 2, 4, 100, 101, 102]


class TestFigure2Shapes:
    def test_pipeline_vs_dataparallel_same_answer(self):
        """Figure 2: both decompositions compute the same stream."""
        from repro.coexpr.dataparallel import DataParallel

        data = list(range(40))
        fn = lambda x: x * 3 + 1  # noqa: E731
        via_pipeline = list(pipeline(data, fn))
        via_chunks = list(DataParallel(chunk_size=7).map_flat(fn, data))
        assert via_pipeline == via_chunks == [fn(x) for x in data]
