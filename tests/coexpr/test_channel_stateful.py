"""Stateful property testing of Channel against a queue model.

A hypothesis rule-based machine drives a bounded channel through
interleaved put/put_many/put_error/take/take_many/poll/close operations
and checks it against a plain deque model.  The invariants the batched
transport must not break:

* the concatenation of taken batches equals the sequence of puts (FIFO,
  nothing dropped, nothing duplicated);
* errors are never reordered past data that preceded them — a batch
  stops just before a queued envelope, and an envelope at the head
  re-raises;
* capacity discipline: a full channel times out producers (``put_many``
  keeps the prefix that fit), a drained closed channel yields CLOSED.

``REPRO_HYPOTHESIS_EXAMPLES`` scales the example count (default 40; the
PR's acceptance run used 500).
"""

import os
from collections import deque

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.errors import ChannelClosedError, PipeTimeoutError
from repro.coexpr.channel import CLOSED, Channel

CAPACITY = 4
EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "40"))

#: Model entries: ("item", value) or ("error", message).
ITEM = "item"
ERROR = "error"


class ChannelMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.channel = Channel(capacity=CAPACITY)
        self.model: deque = deque()
        self.closed = False

    # -- producer rules -------------------------------------------------------

    @rule(value=st.integers())
    def put(self, value):
        if self.closed:
            try:
                self.channel.put(value, timeout=0.01)
                raise AssertionError("put on closed channel must raise")
            except ChannelClosedError:
                return
        if len(self.model) >= CAPACITY:
            # would block: verify it times out rather than succeeding
            try:
                self.channel.put(value, timeout=0.01)
                raise AssertionError("put into a full channel must block")
            except TimeoutError:
                return
        self.channel.put(value)
        self.model.append((ITEM, value))

    @rule(values=st.lists(st.integers(), min_size=1, max_size=7))
    def put_many(self, values):
        if self.closed:
            try:
                self.channel.put_many(values, timeout=0.01)
                raise AssertionError("put_many on closed channel must raise")
            except ChannelClosedError:
                return
        free = CAPACITY - len(self.model)
        if len(values) <= free:
            assert self.channel.put_many(values) == len(values)
            self.model.extend((ITEM, v) for v in values)
        else:
            # Mid-batch timeout: the prefix that fit stays enqueued, in
            # order; the rest is reported via PipeTimeoutError.
            try:
                self.channel.put_many(values, timeout=0.01)
                raise AssertionError("oversized put_many must time out")
            except PipeTimeoutError:
                self.model.extend((ITEM, v) for v in values[: max(free, 0)])

    @rule(message=st.text(min_size=1, max_size=8))
    def put_error(self, message):
        if self.closed:
            try:
                self.channel.put_error(KeyError(message))
                raise AssertionError("put_error on closed channel must raise")
            except ChannelClosedError:
                return
        # Error delivery bypasses the capacity bound: succeeds even full.
        self.channel.put_error(KeyError(message))
        self.model.append((ERROR, message))

    # -- consumer rules -------------------------------------------------------

    def _expect_head(self, got):
        kind, payload = self.model.popleft()
        assert kind == ITEM, "envelope heads must raise, not be returned"
        assert got == payload

    @rule()
    def take(self):
        if self.model:
            kind, payload = self.model[0]
            if kind == ERROR:
                self.model.popleft()
                with pytest.raises(KeyError):
                    self.channel.take()
            else:
                self._expect_head(self.channel.take())
        elif self.closed:
            assert self.channel.take() is CLOSED
        else:
            try:
                self.channel.take(timeout=0.01)
                raise AssertionError("take from empty open channel must block")
            except TimeoutError:
                pass

    @rule(max_n=st.integers(1, 6))
    def take_many(self, max_n):
        if not self.model:
            if self.closed:
                assert self.channel.take_many(max_n) is CLOSED
            else:
                try:
                    self.channel.take_many(max_n, timeout=0.01)
                    raise AssertionError(
                        "take_many from empty open channel must block"
                    )
                except TimeoutError:
                    pass
            return
        if self.model[0][0] == ERROR:
            _, message = self.model.popleft()
            with pytest.raises(KeyError):
                self.channel.take_many(max_n)
            return
        expected = []
        while (
            self.model
            and len(expected) < max_n
            and self.model[0][0] == ITEM
        ):
            expected.append(self.model.popleft()[1])
        # The batch must stop just before any queued envelope: errors are
        # never reordered past data that preceded them.
        assert self.channel.take_many(max_n) == expected

    @rule()
    def poll(self):
        if self.model:
            kind, payload = self.model[0]
            if kind == ERROR:
                self.model.popleft()
                with pytest.raises(KeyError):
                    self.channel.poll()
            else:
                self.model.popleft()
                assert self.channel.poll() == payload
        elif self.closed:
            assert self.channel.poll() is CLOSED
        else:
            assert self.channel.poll() is None

    @precondition(lambda self: not self.closed)
    @rule()
    def close(self):
        self.channel.close()
        self.closed = True

    # -- invariants -----------------------------------------------------------

    @invariant()
    def length_matches_model(self):
        assert len(self.channel) == len(self.model)

    @invariant()
    def closed_flag_matches(self):
        assert self.channel.closed == self.closed


ChannelMachine.TestCase.settings = settings(
    max_examples=EXAMPLES, stateful_step_count=30, deadline=None
)
TestChannelStateful = ChannelMachine.TestCase
