"""Stateful property testing of Channel against a queue model.

A hypothesis rule-based machine drives a bounded channel through
interleaved put/take/poll/close operations and checks it against a plain
deque model: FIFO order, capacity discipline, and close semantics.
"""

from collections import deque

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.errors import ChannelClosedError
from repro.coexpr.channel import CLOSED, Channel

CAPACITY = 4


class ChannelMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.channel = Channel(capacity=CAPACITY)
        self.model: deque = deque()
        self.closed = False

    @rule(value=st.integers())
    def put(self, value):
        if self.closed:
            try:
                self.channel.put(value, timeout=0.01)
                raise AssertionError("put on closed channel must raise")
            except ChannelClosedError:
                return
        if len(self.model) >= CAPACITY:
            # would block: verify it times out rather than succeeding
            try:
                self.channel.put(value, timeout=0.01)
                raise AssertionError("put into a full channel must block")
            except TimeoutError:
                return
        self.channel.put(value)
        self.model.append(value)

    @rule()
    def take(self):
        if self.model:
            assert self.channel.take() == self.model.popleft()
        elif self.closed:
            assert self.channel.take() is CLOSED
        else:
            try:
                self.channel.take(timeout=0.01)
                raise AssertionError("take from empty open channel must block")
            except TimeoutError:
                pass

    @rule()
    def poll(self):
        if self.model:
            assert self.channel.poll() == self.model.popleft()
        elif self.closed:
            assert self.channel.poll() is CLOSED
        else:
            assert self.channel.poll() is None

    @precondition(lambda self: not self.closed)
    @rule()
    def close(self):
        self.channel.close()
        self.closed = True

    @invariant()
    def length_matches_model(self):
        assert len(self.channel) == len(self.model)

    @invariant()
    def closed_flag_matches(self):
        assert self.channel.closed == self.closed


ChannelMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestChannelStateful = ChannelMachine.TestCase
