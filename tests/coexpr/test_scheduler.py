"""Pipe schedulers: dedicated threads, pooling, the default swap."""

import threading
import time

from repro.coexpr.scheduler import (
    PipeScheduler,
    default_scheduler,
    set_default_scheduler,
    use_scheduler,
)


class TestDedicated:
    def test_runs_bodies_concurrently(self):
        barrier = threading.Barrier(3, timeout=2)
        scheduler = PipeScheduler()

        def body():
            barrier.wait()

        scheduler.submit(body)
        scheduler.submit(body)
        barrier.wait()  # only reached if both bodies run in parallel

    def test_gate_caps_concurrency(self):
        scheduler = PipeScheduler(max_workers=1)
        running = []
        overlap = []
        lock = threading.Lock()

        def body():
            with lock:
                running.append(1)
                if len(running) > 1:
                    overlap.append(1)
            time.sleep(0.05)
            with lock:
                running.pop()

        for _ in range(4):
            scheduler.submit(body)
        deadline = time.monotonic() + 3
        while scheduler.active and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not overlap

    def test_active_counter(self):
        scheduler = PipeScheduler()
        gate = threading.Event()
        scheduler.submit(lambda: gate.wait(2))
        time.sleep(0.05)
        assert scheduler.active == 1
        gate.set()
        deadline = time.monotonic() + 2
        while scheduler.active and time.monotonic() < deadline:
            time.sleep(0.01)
        assert scheduler.active == 0


class TestPooled:
    def test_pool_executes(self):
        scheduler = PipeScheduler(max_workers=2, pooled=True)
        done = threading.Event()
        scheduler.submit(done.set)
        assert done.wait(2)
        scheduler.shutdown()

    def test_shutdown_idempotent(self):
        scheduler = PipeScheduler(pooled=True)
        scheduler.submit(lambda: None)
        scheduler.shutdown()
        scheduler.shutdown()


class TestDefaultScheduler:
    def test_default_exists(self):
        assert isinstance(default_scheduler(), PipeScheduler)

    def test_set_returns_previous(self):
        original = default_scheduler()
        replacement = PipeScheduler()
        previous = set_default_scheduler(replacement)
        try:
            assert previous is original
            assert default_scheduler() is replacement
        finally:
            set_default_scheduler(original)

    def test_use_scheduler_context(self):
        original = default_scheduler()
        replacement = PipeScheduler()
        with use_scheduler(replacement) as active:
            assert active is replacement
            assert default_scheduler() is replacement
        assert default_scheduler() is original

    def test_pipes_use_installed_default(self):
        from repro.coexpr.pipe import Pipe
        from repro.coexpr.coexpression import CoExpression

        submissions = []

        class Spy(PipeScheduler):
            def submit(self, body, name="pipe"):
                submissions.append(name)
                super().submit(body, name)

        with use_scheduler(Spy()):
            pipe = Pipe(CoExpression(lambda: iter([1]), name="tagged"))
            assert pipe.take() == 1
        assert any("tagged" in name for name in submissions)
