"""Pipe schedulers: dedicated threads, pooling, the default swap."""

import threading
import time

from repro.coexpr.scheduler import (
    PipeScheduler,
    default_scheduler,
    set_default_scheduler,
    use_scheduler,
)


class TestDedicated:
    def test_runs_bodies_concurrently(self):
        barrier = threading.Barrier(3, timeout=2)
        scheduler = PipeScheduler()

        def body():
            barrier.wait()

        scheduler.submit(body)
        scheduler.submit(body)
        barrier.wait()  # only reached if both bodies run in parallel

    def test_gate_caps_concurrency(self):
        scheduler = PipeScheduler(max_workers=1)
        running = []
        overlap = []
        lock = threading.Lock()

        def body():
            with lock:
                running.append(1)
                if len(running) > 1:
                    overlap.append(1)
            time.sleep(0.05)
            with lock:
                running.pop()

        for _ in range(4):
            scheduler.submit(body)
        deadline = time.monotonic() + 3
        while scheduler.active and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not overlap

    def test_active_counter(self):
        scheduler = PipeScheduler()
        gate = threading.Event()
        scheduler.submit(lambda: gate.wait(2))
        time.sleep(0.05)
        assert scheduler.active == 1
        gate.set()
        deadline = time.monotonic() + 2
        while scheduler.active and time.monotonic() < deadline:
            time.sleep(0.01)
        assert scheduler.active == 0


class TestPooled:
    def test_pool_executes(self):
        scheduler = PipeScheduler(max_workers=2, pooled=True)
        done = threading.Event()
        scheduler.submit(done.set)
        assert done.wait(2)
        scheduler.shutdown()

    def test_shutdown_idempotent(self):
        scheduler = PipeScheduler(pooled=True)
        scheduler.submit(lambda: None)
        scheduler.shutdown()
        scheduler.shutdown()


class TestShutdownRacingSubmit:
    """shutdown() concurrent with submit(): late submits must raise
    cleanly, in-flight workers must be joined, and leaked() must end
    empty — for thread workers and child processes alike."""

    def test_post_shutdown_submit_raises(self):
        import pytest

        from repro.errors import SchedulerShutdownError

        scheduler = PipeScheduler()
        scheduler.shutdown()
        with pytest.raises(SchedulerShutdownError):
            scheduler.submit(lambda: None)

    def test_post_shutdown_track_process_raises(self):
        import pytest

        from repro.errors import SchedulerShutdownError

        scheduler = PipeScheduler()
        scheduler.shutdown()
        with pytest.raises(SchedulerShutdownError):
            scheduler.track_process(object())

    def test_racing_submits_raise_or_complete(self):
        # Hammer submit() from several threads while shutdown() runs:
        # every call either completes normally or raises
        # SchedulerShutdownError — never a crash, never a leak.
        from repro.errors import SchedulerShutdownError

        scheduler = PipeScheduler()
        outcomes = []
        lock = threading.Lock()
        go = threading.Event()

        def submitter():
            go.wait(2)
            for _ in range(25):
                try:
                    scheduler.submit(lambda: time.sleep(0.001))
                    result = "ok"
                except SchedulerShutdownError:
                    result = "refused"
                with lock:
                    outcomes.append(result)

        racers = [threading.Thread(target=submitter) for _ in range(4)]
        for racer in racers:
            racer.start()
        go.set()
        time.sleep(0.01)
        scheduler.shutdown(timeout=5.0)
        for racer in racers:
            racer.join(5.0)
        assert len(outcomes) == 100
        assert set(outcomes) <= {"ok", "refused"}
        assert scheduler.leaked(join_timeout=2.0) == []

    def test_shutdown_joins_both_worker_kinds(self):
        # One in-flight thread worker and one child process: a waited
        # shutdown reaps both and leaked() reports neither.
        from repro.coexpr.coexpression import CoExpression
        from repro.coexpr.pipe import Pipe

        def idle_body():
            yield 0
            time.sleep(30)
            yield 1  # pragma: no cover

        scheduler = PipeScheduler()
        release = threading.Event()
        scheduler.submit(lambda: release.wait(10), name="thread-worker")
        pipe = Pipe(
            CoExpression(idle_body, name="proc-worker"),
            backend="process",
            scheduler=scheduler,
            heartbeat_interval=0.05,
        ).start()
        assert pipe.take() == 0
        if pipe.degraded is None:
            assert scheduler.tracked_processes == 1
        release.set()
        scheduler.shutdown(timeout=10.0)
        assert scheduler.tracked_processes == 0
        assert scheduler.leaked(join_timeout=2.0) == []


class TestDefaultScheduler:
    def test_default_exists(self):
        assert isinstance(default_scheduler(), PipeScheduler)

    def test_set_returns_previous(self):
        original = default_scheduler()
        replacement = PipeScheduler()
        previous = set_default_scheduler(replacement)
        try:
            assert previous is original
            assert default_scheduler() is replacement
        finally:
            set_default_scheduler(original)

    def test_use_scheduler_context(self):
        original = default_scheduler()
        replacement = PipeScheduler()
        with use_scheduler(replacement) as active:
            assert active is replacement
            assert default_scheduler() is replacement
        assert default_scheduler() is original

    def test_pipes_use_installed_default(self):
        from repro.coexpr.pipe import Pipe
        from repro.coexpr.coexpression import CoExpression

        submissions = []

        class Spy(PipeScheduler):
            def submit(self, body, name="pipe"):
                submissions.append(name)
                super().submit(body, name)

        with use_scheduler(Spy()):
            pipe = Pipe(CoExpression(lambda: iter([1]), name="tagged"))
            assert pipe.take() == 1
        assert any("tagged" in name for name in submissions)
