"""The async execution tier: AsyncChannel, AsyncPipe, backend="async".

The contract under test is the backend matrix's: a pipe whose producer
is a coroutine on the shared event loop must be observationally
identical to one whose producer is a thread — production order, data
before error, close terminates, batching counters, refresh-as-snapshot,
cancellation, and scheduler accounting (the autouse leak fixture covers
pending tasks the way it covers threads and sockets).
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.coexpr.aio import AsyncChannel, AsyncPipe, start_async_worker
from repro.coexpr.channel import CLOSED
from repro.coexpr.dataparallel import DataParallel
from repro.coexpr.patterns import pipeline, source_pipe, stage
from repro.coexpr.pipe import Pipe
from repro.coexpr.supervision import NO_BACKOFF, supervise
from repro.errors import (
    ChannelClosedError,
    PipeDeadlineExceeded,
    PipeTimeoutError,
    SchedulerShutdownError,
)
from repro.monitor import EventKind, Tracer
from repro.runtime.failure import FAIL


def run(coro):
    """Run one test coroutine on a fresh loop (no pytest-asyncio dep)."""
    return asyncio.run(coro)


class TestAsyncChannel:
    def test_roundtrip_preserves_order(self):
        async def body():
            ch = AsyncChannel()
            for i in range(5):
                await ch.put(i)
            ch.close()
            return [item async for item in ch]

        assert run(body()) == [0, 1, 2, 3, 4]

    def test_bounded_put_parks_until_space(self):
        async def body():
            ch = AsyncChannel(capacity=1)
            await ch.put("a")
            parked = asyncio.get_running_loop().create_task(ch.put("b"))
            await asyncio.sleep(0.01)
            assert not parked.done()  # capacity bound holds the producer
            assert await ch.take() == "a"
            await parked
            return await ch.take()

        assert run(body()) == "b"

    def test_put_timeout_raises_pipe_timeout(self):
        async def body():
            ch = AsyncChannel(capacity=1)
            await ch.put(1)
            with pytest.raises(PipeTimeoutError):
                await ch.put(2, timeout=0.05)

        run(body())

    def test_take_timeout_on_empty_open_channel(self):
        async def body():
            ch = AsyncChannel()
            with pytest.raises(PipeTimeoutError):
                await ch.take(timeout=0.05)

        run(body())

    def test_closed_and_drained_returns_sentinel(self):
        async def body():
            ch = AsyncChannel()
            await ch.put(1)
            ch.close()
            assert await ch.take() == 1
            return await ch.take()

        assert run(body()) is CLOSED

    def test_put_on_closed_channel_raises(self):
        async def body():
            ch = AsyncChannel()
            ch.close()
            with pytest.raises(ChannelClosedError):
                await ch.put(1)

        run(body())

    def test_close_mid_wait_unblocks_consumer(self):
        async def body():
            ch = AsyncChannel()
            taker = asyncio.get_running_loop().create_task(ch.take())
            await asyncio.sleep(0.01)
            ch.close()
            return await taker

        assert run(body()) is CLOSED

    def test_error_never_overtakes_preceding_data(self):
        async def body():
            ch = AsyncChannel()
            await ch.put_many([1, 2])
            ch.put_error(ValueError("late"))
            ch.close()
            # take_many stops at the error and delivers the data first.
            assert await ch.take_many(10) == [1, 2]
            with pytest.raises(ValueError):
                await ch.take_many(10)

        run(body())

    def test_error_bypasses_the_capacity_bound(self):
        async def body():
            ch = AsyncChannel(capacity=1)
            await ch.put(1)
            ch.put_error(RuntimeError("crash"))  # unthrottled, no await
            assert await ch.take() == 1
            with pytest.raises(RuntimeError):
                await ch.take()

        run(body())

    def test_put_many_interleaves_with_consumer(self):
        async def body():
            ch = AsyncChannel(capacity=2)
            loop = asyncio.get_running_loop()
            producer = loop.create_task(ch.put_many(list(range(10))))
            got = []
            while len(got) < 10:
                got.append(await ch.take())
            await producer
            return got

        assert run(body()) == list(range(10))


def counter(n):
    return iter(range(n))


def crashing():
    yield 1
    yield 2
    raise ValueError("body crashed")


class TestAsyncPipe:
    def test_async_for_streams_the_body(self):
        async def body():
            piped = AsyncPipe(lambda: counter(6))
            return [v async for v in piped]

        assert run(body()) == [0, 1, 2, 3, 4, 5]

    def test_take_returns_fail_on_exhaustion(self):
        async def body():
            piped = AsyncPipe(lambda: counter(1))
            assert await piped.take() == 0
            return await piped.take()

        assert run(body()) is FAIL

    def test_batched_takes_unbatch_in_order(self):
        async def body():
            piped = AsyncPipe(lambda: counter(10), batch=4, capacity=8)
            return [v async for v in piped]

        assert run(body()) == list(range(10))

    def test_error_arrives_after_the_data(self):
        async def body():
            piped = AsyncPipe(crashing)
            got = []
            with pytest.raises(ValueError):
                async for v in piped:
                    got.append(v)
            return got

        assert run(body()) == [1, 2]

    def test_cancel_stops_the_producer(self):
        async def body():
            piped = AsyncPipe(lambda: counter(10**6), capacity=2)
            piped.start()
            assert await piped.take() == 0
            piped.cancel()
            await asyncio.sleep(0.05)
            assert piped._task.done()

        run(body())

    def test_refresh_restarts_from_the_snapshot(self):
        async def body():
            piped = AsyncPipe(lambda: counter(5))
            assert await piped.take() == 0
            assert await piped.take() == 1
            refreshed = piped.refresh()
            piped.cancel()
            # Snapshot-and-restart: the sibling replays from the start.
            return [v async for v in refreshed]

        assert run(body()) == [0, 1, 2, 3, 4]

    def test_deadline_expiry_raises_and_cancels(self):
        def slow():
            while True:
                yield 1
                time.sleep(0.05)

        async def body():
            piped = AsyncPipe(slow, deadline=0.2)
            with pytest.raises(PipeDeadlineExceeded):
                async for _ in piped:
                    pass
            assert piped.cancelled

        run(body())


class TestAsyncBackend:
    """``backend="async"`` behind the ordinary (threaded-surface) Pipe."""

    def test_streams_identically_to_threads(self):
        threaded = source_pipe(lambda: counter(20), backend="thread")
        looped = source_pipe(lambda: counter(20), backend="async")
        assert list(looped.iterate()) == list(threaded.iterate())

    def test_bounded_channel_backpressures_the_worker(self):
        piped = Pipe(lambda: counter(100), backend="async", capacity=4).start()
        time.sleep(0.1)
        # The coroutine parked on the full channel instead of overfilling.
        assert len(piped.out) <= 4
        assert list(piped.iterate()) == list(range(100))

    def test_batching_counters_match_the_thread_tier(self):
        piped = Pipe(
            lambda: counter(20), backend="async", batch=5, capacity=20
        ).start()
        assert list(piped.iterate()) == list(range(20))
        assert piped._flushes == 4
        assert piped._batched_items == 20

    def test_error_never_overtakes_data(self):
        piped = Pipe(crashing, backend="async").start()
        got = []
        with pytest.raises(ValueError, match="body crashed"):
            for v in piped.iterate():
                got.append(v)
        assert got == [1, 2]

    def test_cancel_releases_the_task(self, pipe_scheduler):
        piped = Pipe(lambda: counter(10**6), backend="async", capacity=2)
        piped.start()
        assert piped.take() == 0
        piped.cancel(join=True, timeout=5.0)
        assert pipe_scheduler.leaked(join_timeout=2.0) == []

    def test_emits_async_session_event(self):
        tracer = Tracer()
        with tracer.lifecycle():
            piped = Pipe(lambda: counter(3), backend="async").start()
            assert list(piped.iterate()) == [0, 1, 2]
        kinds = [e.kind for e in tracer.events]
        assert EventKind.ASYNC_SESSION in kinds
        stats = tracer.async_stats()
        workers = sum(s["workers"] for s in stats.values())
        assert workers == 1

    def test_supervision_replays_an_async_worker(self):
        plan = {"calls": 0}

        def flaky():
            plan["calls"] += 1
            yield 1
            yield 2
            if plan["calls"] < 3:
                raise OSError("transient")
            yield 3

        piped = supervise(
            source_pipe(flaky).coexpr,
            backend="async",
            backoff=NO_BACKOFF,
            max_retries=5,
        )
        # Exactly-once: the replayed prefix is skipped, not re-delivered.
        assert list(piped.iterate()) == [1, 2, 3]
        assert piped.failures == 2

    def test_pipeline_source_on_loop_stages_degrade(self):
        # The cooperative caveat, mirrored from the process tier: the
        # source runs on the loop, but a channel-fed stage's blocking
        # take would starve (here: deadlock) the loop, so it degrades to
        # a thread with a DEGRADED event — and the stream is unchanged.
        tracer = Tracer()
        with tracer.lifecycle():
            piped = pipeline(
                lambda: counter(10), lambda x: x * x, backend="async"
            )
            assert list(piped.iterate()) == [x * x for x in range(10)]
        assert piped.degraded is not None
        assert "starve the loop" in piped.degraded
        degraded = [e for e in tracer.events if e.kind == EventKind.DEGRADED]
        assert degraded
        # The source itself did go async: exactly one loop session.
        stats = tracer.async_stats()
        assert sum(s["workers"] for s in stats.values()) == 1

    def test_dataparallel_on_the_loop(self):
        dp = DataParallel(chunk_size=10, backend="async")
        assert list(dp.map_flat(lambda x: 2 * x, range(50))) == [
            2 * x for x in range(50)
        ]

    def test_unknown_backend_message_names_all_four(self):
        with pytest.raises(ValueError, match="async"):
            Pipe(lambda: counter(1), backend="fiber")

    def test_scheduler_shutdown_gates_the_spawn(self, pipe_scheduler):
        pipe_scheduler.shutdown(wait=False)
        piped = Pipe(lambda: counter(5), backend="async")
        with pytest.raises(SchedulerShutdownError):
            piped.start()

    def test_shutdown_awaits_pending_tasks(self, pipe_scheduler):
        piped = Pipe(lambda: counter(10**6), backend="async", capacity=2)
        piped.start()
        assert piped.take() == 0
        # Satellite contract: shutdown kills AND awaits the loop task, so
        # the leak check right after sees nothing pending.
        pipe_scheduler.shutdown(wait=True, timeout=5.0)
        assert pipe_scheduler.leaked() == []

    def test_max_linger_flushes_partial_batches(self):
        # Cooperative linger: activations are atomic on the loop, so
        # staleness is checked at activation boundaries — a partial
        # batch older than max_linger is flushed with the next item
        # instead of waiting out the full batch size.
        def trickle():
            yield 1
            yield 2
            time.sleep(0.25)  # the gap that makes [1, 2] stale
            yield from range(3, 21)

        piped = Pipe(
            trickle,
            backend="async",
            batch=10,
            capacity=20,
            max_linger=0.05,
        ).start()
        assert list(piped.iterate()) == list(range(1, 21))
        # Three flushes: the stale partial [1, 2, 3], one full batch,
        # and the exhaustion flush — a pure size-10 batcher would have
        # done two.
        assert piped._flushes == 3
        assert piped._batched_items == 20

    def test_refresh_replays_from_snapshot(self):
        piped = Pipe(lambda: counter(5), backend="async").start()
        assert piped.take() == 0
        refreshed = piped.refresh()
        piped.cancel(join=True, timeout=5.0)
        assert list(refreshed.iterate()) == [0, 1, 2, 3, 4]
