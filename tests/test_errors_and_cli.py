"""Exception hierarchy and command-line entry points."""

import subprocess
import sys

import pytest

from repro import errors


class TestErrorHierarchy:
    def test_everything_roots_at_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_icon_errors_carry_classic_numbers(self):
        assert errors.IconTypeError.number == 102
        assert errors.IconIndexError.number == 205

    def test_icon_errors_double_as_python_errors(self):
        assert issubclass(errors.IconTypeError, TypeError)
        assert issubclass(errors.IconValueError, ValueError)
        assert issubclass(errors.IconIndexError, IndexError)

    def test_language_errors_carry_positions(self):
        error = errors.ParseError("bad", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_language_error_without_position(self):
        error = errors.LexError("bad")
        assert "line" not in str(error)

    def test_catching_by_family(self):
        with pytest.raises(errors.LanguageError):
            raise errors.ParseError("x")
        with pytest.raises(errors.ConcurrencyError):
            raise errors.ChannelClosedError("y")


class TestTranslateCli:
    def test_translate_to_stdout(self, tmp_path):
        source = tmp_path / "prog.py"
        source.write_text(
            '@<script lang="junicon">\ndef f() { return 1; }\n@</script>\n'
        )
        from repro.lang.embed import main

        import io
        from contextlib import redirect_stdout

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            assert main([str(source)]) == 0
        assert "IconMethodBody" in buffer.getvalue()

    def test_translate_to_file(self, tmp_path):
        source = tmp_path / "prog.py"
        out = tmp_path / "out.py"
        source.write_text(
            '@<script lang="junicon">\ndef g() { return 2; }\n@</script>\n'
            "answer = g().first()\n"
        )
        from repro.lang.embed import main

        assert main([str(source), "-o", str(out)]) == 0
        namespace = {}
        exec(compile(out.read_text(), str(out), "exec"), namespace)
        assert namespace["answer"] == 2

    def test_no_prelude_flag(self, tmp_path):
        source = tmp_path / "prog.py"
        source.write_text('@<script lang="junicon">\n1 + 1;\n@</script>\n')
        from repro.lang.embed import main

        import io
        from contextlib import redirect_stdout

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            main([str(source), "--no-prelude"])
        assert "prelude" not in buffer.getvalue()


class TestBenchCli:
    def test_report_main_tiny_run(self, capsys):
        from repro.bench.report import main

        assert (
            main(
                [
                    "--weight", "light",
                    "--lines", "4",
                    "--words", "3",
                    "--warmup", "0",
                    "--iterations", "1",
                    "--chunk", "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "Junicon" in out


class TestReplCli:
    def test_repl_main_runs_file(self, tmp_path, capsys):
        from repro.harness.repl import main

        path = tmp_path / "prog.py"
        path.write_text(
            '@<script lang="junicon">\ndef h() { return 3; }\n@</script>\n'
            "print('value is', h().first())\n"
        )
        assert main([str(path)]) == 0
        assert "value is 3" in capsys.readouterr().out


class TestModuleExecution:
    def test_python_dash_m_report_help(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.bench.report", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "Figure 6" in result.stdout


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_lazy_lang_attributes(self):
        import repro

        assert callable(repro.compile_junicon)
        assert callable(repro.transform_source)
        with pytest.raises(AttributeError):
            repro.no_such_attribute

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_prelude_all_resolves(self):
        import repro.lang.prelude as prelude

        for name in prelude.__all__:
            assert hasattr(prelude, name), name
