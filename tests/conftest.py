"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import faulthandler
import os
import signal
import threading

import pytest

from repro.runtime import seed_random
from repro.runtime.cache import MethodBodyCache

#: Per-test watchdog budget in seconds.  A deadlocked channel/pipe test
#: fails with a traceback instead of hanging the whole suite (the role
#: pytest-timeout would play if it were a dependency).
_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "60"))


@pytest.fixture(autouse=True)
def _watchdog():
    """Abort any single test that runs longer than the watchdog budget.

    Primary mechanism: SIGALRM raises in the main thread, which unblocks
    even an untimed ``Condition.wait`` / ``lock.acquire``.  Backstop:
    ``faulthandler`` dumps all thread stacks and exits the process if the
    main thread itself is wedged beyond twice the budget.
    """
    use_alarm = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        yield
        return

    def _expired(signum, frame):
        faulthandler.dump_traceback()
        raise TimeoutError(
            f"test exceeded the {_TEST_TIMEOUT}s watchdog (likely deadlock)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT)
    faulthandler.dump_traceback_later(_TEST_TIMEOUT * 2, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _stable_random():
    """Make the ? operator deterministic inside every test."""
    seed_random(1234)
    yield


@pytest.fixture
def cache_disabled():
    """Disable the method-body cache for the duration of a test."""
    MethodBodyCache.enabled_globally = False
    try:
        yield
    finally:
        MethodBodyCache.enabled_globally = True


@pytest.fixture
def interp():
    """A fresh Junicon interpreter session."""
    from repro.lang.interp import JuniconInterpreter

    return JuniconInterpreter()
