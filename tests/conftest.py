"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime import seed_random
from repro.runtime.cache import MethodBodyCache


@pytest.fixture(autouse=True)
def _stable_random():
    """Make the ? operator deterministic inside every test."""
    seed_random(1234)
    yield


@pytest.fixture
def cache_disabled():
    """Disable the method-body cache for the duration of a test."""
    MethodBodyCache.enabled_globally = False
    try:
        yield
    finally:
        MethodBodyCache.enabled_globally = True


@pytest.fixture
def interp():
    """A fresh Junicon interpreter session."""
    from repro.lang.interp import JuniconInterpreter

    return JuniconInterpreter()
