"""Icon operator semantics: coercion, arithmetic, comparisons, assignment."""

import pytest

from repro.errors import IconTypeError, IconValueError
from repro.runtime.failure import FAIL
from repro.runtime.combinators import IconProduct
from repro.runtime.iterator import IconFail, IconGenerator, IconValue, IconVarIterator
from repro.runtime import operations as ops
from repro.runtime.operations import (
    IconAssign,
    IconDeref,
    IconNonNullTest,
    IconNullTest,
    IconOperation,
    IconRevAssign,
    IconRevSwap,
    IconSwap,
    IconToBy,
    operation,
    seed_random,
)
from repro.runtime.refs import IconVar, ReadOnlyRef
from repro.runtime.types import Cset


def cell(value=None, name="v"):
    var = IconVar(name)
    var.set(value)
    return var


class TestCoercion:
    def test_numeric_strings_convert(self):
        assert ops.need_number("42") == 42
        assert ops.need_number(" 3.5 ") == 3.5

    def test_non_numeric_string_raises(self):
        with pytest.raises(IconTypeError):
            ops.need_number("zap")

    def test_boolean_rejected(self):
        with pytest.raises(IconTypeError):
            ops.need_number(True)

    def test_integer_from_integral_float(self):
        assert ops.need_integer(4.0) == 4

    def test_integer_from_fractional_float_raises(self):
        with pytest.raises(IconTypeError):
            ops.need_integer(4.5)

    def test_string_from_number(self):
        assert ops.need_string(12) == "12"
        assert ops.need_string(1.5) == "1.5"

    def test_string_from_cset(self):
        assert ops.need_string(Cset("ba")) == "ab"


class TestArithmetic:
    def test_plus_coerces(self):
        assert ops.plus("2", 3) == 5

    def test_integer_division_truncates_toward_zero(self):
        assert ops.divide(7, 2) == 3
        assert ops.divide(-7, 2) == -3
        assert ops.divide(7, -2) == -3

    def test_float_division(self):
        assert ops.divide(7.0, 2) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(IconValueError):
            ops.divide(1, 0)

    def test_modulo_sign_of_dividend(self):
        assert ops.modulo(7, 3) == 1
        assert ops.modulo(-7, 3) == -1
        assert ops.modulo(7, -3) == 1

    def test_power(self):
        assert ops.power(2, 10) == 1024
        assert ops.power(2, -1) == 0.5

    def test_negate_and_numerate(self):
        assert ops.negate("5") == -5
        assert ops.numerate("6") == 6


class TestComparisons:
    def test_numeric_lt_returns_right_operand(self):
        assert ops.num_lt(1, 2) == 2
        assert ops.num_lt(2, 1) is FAIL

    def test_chaining_via_right_operand(self):
        # 1 <= x <= 10 with x = 5
        node = IconOperation(
            ops.num_le,
            IconOperation(ops.num_le, IconValue(1), IconValue(5)),
            IconValue(10),
        )
        assert list(node) == [10]

    def test_numeric_comparison_coerces_strings(self):
        assert ops.num_eq("5", 5.0) == 5.0

    def test_lexical_comparisons(self):
        assert ops.lex_lt("abc", "abd") == "abd"
        assert ops.lex_eq("x", "x") == "x"
        assert ops.lex_eq("x", "y") is FAIL
        assert ops.lex_ge("b", "a") == "a"

    def test_value_eq_same_type(self):
        assert ops.value_eq(3, 3) == 3
        assert ops.value_eq("3", 3) is FAIL

    def test_value_eq_mutables_by_identity(self):
        shared = [1]
        assert ops.value_eq(shared, shared) is shared
        assert ops.value_eq([1], [1]) is FAIL

    def test_value_ne(self):
        assert ops.value_ne(1, 2) == 2
        assert ops.value_ne(1, 1) is FAIL


class TestConcatAndSets:
    def test_string_concat_coerces(self):
        assert ops.concat("a", 1) == "a1"

    def test_list_concat(self):
        assert ops.list_concat([1], [2]) == [1, 2]
        with pytest.raises(IconTypeError):
            ops.list_concat([1], "x")

    def test_cset_union_difference_intersection(self):
        assert ops.union("ab", "bc") == Cset("abc")
        assert ops.difference("abc", "b") == Cset("ac")
        assert ops.intersection("abc", "bcd") == Cset("bc")

    def test_set_algebra_on_python_sets(self):
        assert ops.union({1}, {2}) == {1, 2}
        assert ops.difference({1, 2}, {2}) == {1}
        assert ops.intersection({1, 2}, {2, 3}) == {2}

    def test_complement(self):
        comp = ops.complement("a")
        assert "a" not in comp
        assert "b" in comp
        assert len(comp) == 255


class TestSizeAndRandom:
    def test_size_of_containers(self):
        assert ops.size("abc") == 3
        assert ops.size([1, 2]) == 2
        assert ops.size({"k": 1}) == 1
        assert ops.size(Cset("ab")) == 2

    def test_size_of_number_is_string_length(self):
        assert ops.size(1234) == 4

    def test_size_undefined(self):
        with pytest.raises(IconTypeError):
            ops.size(object())

    def test_random_integer_range(self):
        seed_random(1)
        for _ in range(50):
            value = ops.random_of(6)
            assert 1 <= value <= 6

    def test_random_reproducible(self):
        seed_random(99)
        first = [ops.random_of(100) for _ in range(5)]
        seed_random(99)
        assert [ops.random_of(100) for _ in range(5)] == first

    def test_random_of_empty_fails(self):
        assert ops.random_of("") is FAIL
        assert ops.random_of([]) is FAIL


class TestOperationNode:
    def test_cross_product(self):
        node = IconOperation(ops.times, IconGenerator(lambda: [1, 2]),
                             IconGenerator(lambda: [10, 20]))
        assert list(node) == [10, 20, 20, 40]

    def test_fail_filters(self):
        node = IconOperation(ops.num_lt, IconGenerator(lambda: [1, 5]),
                             IconValue(3))
        assert list(node) == [3]  # only 1 < 3 succeeds

    def test_three_operands(self):
        node = IconOperation(
            lambda a, b, c: a + b + c, IconValue(1), IconValue(2), IconValue(3)
        )
        assert list(node) == [6]

    def test_operation_by_symbol(self):
        assert list(operation("+", IconValue(1), IconValue(2))) == [3]
        assert list(operation("*", IconValue("abc"))) == [3]

    def test_unknown_symbol(self):
        with pytest.raises(IconValueError):
            operation("???", IconValue(1), IconValue(2))


class TestToBy:
    def test_basic_range(self):
        assert list(IconToBy(1, 4)) == [1, 2, 3, 4]

    def test_step(self):
        assert list(IconToBy(0, 10, 3)) == [0, 3, 6, 9]

    def test_negative_step(self):
        assert list(IconToBy(5, 1, -2)) == [5, 3, 1]

    def test_empty_range(self):
        assert list(IconToBy(5, 1)) == []

    def test_zero_step_errors(self):
        with pytest.raises(IconValueError):
            list(IconToBy(1, 5, 0))

    def test_generator_bounds_cross_product(self):
        node = IconToBy(IconGenerator(lambda: [1, 10]), IconValue(2))
        # 1 to 2 yields 1,2; 10 to 2 yields nothing
        assert list(node) == [1, 2]

    def test_float_progression(self):
        assert list(IconToBy(0, 1, 0.5)) == [0, 0.5, 1.0]


class TestAssignment:
    def test_plain_assignment_yields_variable(self):
        var = cell()
        results = list(IconAssign(IconVarIterator(var), IconValue(5)).iterate())
        assert var.get() == 5
        assert results == [var]

    def test_assignment_chains(self):
        a, b = cell(name="a"), cell(name="b")
        node = IconAssign(IconVarIterator(a), IconAssign(IconVarIterator(b), IconValue(1)))
        list(node)
        assert a.get() == 1 and b.get() == 1

    def test_augmented(self):
        var = cell(10)
        list(IconAssign(IconVarIterator(var), IconValue(5), augment=ops.plus))
        assert var.get() == 15

    def test_augmented_comparison_assigns_only_on_success(self):
        var = cell(10)
        # var <:= 5 — fails, no assignment
        assert list(IconAssign(IconVarIterator(var), IconValue(5), augment=ops.num_lt)) == []
        assert var.get() == 10
        # var <:= 20 — succeeds, assigns the right operand
        list(IconAssign(IconVarIterator(var), IconValue(20), augment=ops.num_lt))
        assert var.get() == 20

    def test_assignment_generates_per_rhs_result(self):
        var = cell()
        node = IconAssign(IconVarIterator(var), IconGenerator(lambda: [1, 2]))
        assert list(node) == [1, 2]
        assert var.get() == 2


class TestReversibleAssignment:
    def test_kept_when_accepted(self):
        var = cell(1)
        node = IconRevAssign(IconVarIterator(var), IconValue(9))
        assert node.first() == 9  # bounded acceptance
        assert var.get() == 9

    def test_reversed_on_backtracking(self):
        var = cell(1)
        node = IconProduct(IconRevAssign(IconVarIterator(var), IconValue(9)), IconFail())
        assert list(node) == []
        assert var.get() == 1

    def test_non_variable_target_raises(self):
        node = IconRevAssign(IconValue(1), IconValue(2))
        with pytest.raises(IconTypeError):
            list(node)


class TestSwap:
    def test_swap(self):
        a, b = cell(1, "a"), cell(2, "b")
        node = IconSwap(IconVarIterator(a), IconVarIterator(b))
        assert node.first() == 2  # yields the left variable (now 2)
        assert (a.get(), b.get()) == (2, 1)

    def test_reversible_swap_undone_on_backtracking(self):
        a, b = cell(1, "a"), cell(2, "b")
        node = IconProduct(
            IconRevSwap(IconVarIterator(a), IconVarIterator(b)), IconFail()
        )
        assert list(node) == []
        assert (a.get(), b.get()) == (1, 2)

    def test_swap_requires_variables(self):
        with pytest.raises(IconTypeError):
            list(IconSwap(IconValue(1), IconValue(2)))


class TestNullTests:
    def test_null_test_yields_variable_when_null(self):
        var = cell(None)
        results = list(IconNullTest(IconVarIterator(var)).iterate())
        assert results == [var]

    def test_null_test_fails_when_bound(self):
        var = cell(5)
        assert list(IconNullTest(IconVarIterator(var))) == []

    def test_null_test_enables_default_idiom(self):
        # /x := 5 — assign only if currently null
        var = cell(None)
        list(IconAssign(IconNullTest(IconVarIterator(var)), IconValue(5)))
        assert var.get() == 5
        list(IconAssign(IconNullTest(IconVarIterator(var)), IconValue(99)))
        assert var.get() == 5  # second assignment did not fire

    def test_non_null_test(self):
        var = cell(5)
        assert list(IconNonNullTest(IconVarIterator(var))) == [5]
        var.set(None)
        assert list(IconNonNullTest(IconVarIterator(var))) == []


class TestDeref:
    def test_results_become_values(self):
        var = cell(3)
        results = list(IconDeref(IconVarIterator(var)).iterate())
        assert results == [3]
        assert not isinstance(results[0], ReadOnlyRef)
