"""String scanning: environments, tab/move reversibility, analysis fns."""

import threading

import pytest

from repro.errors import IconValueError
from repro.runtime.failure import FAIL
from repro.runtime.combinators import IconProduct
from repro.runtime.invoke import IconInvoke
from repro.runtime.iterator import IconFail, IconValue
from repro.runtime.scanning import (
    IconScan,
    ScanEnv,
    bal,
    current_env,
    find,
    get_pos,
    get_subject,
    many,
    match,
    move,
    pop_env,
    pos,
    push_env,
    set_pos,
    tab,
    tab_match,
    upto,
    any_,
)
from repro.runtime.types import Cset

LC = Cset("abcdefghijklmnopqrstuvwxyz")


@pytest.fixture
def env():
    scan_env = ScanEnv("hello world", 1)
    push_env(scan_env)
    yield scan_env
    pop_env()


class TestEnvironment:
    def test_no_env_raises(self):
        with pytest.raises(IconValueError):
            current_env()

    def test_subject_and_pos(self, env):
        assert get_subject() == "hello world"
        assert get_pos() == 1

    def test_set_pos(self, env):
        assert set_pos(3) == 3
        assert get_pos() == 3

    def test_set_pos_nonpositive(self, env):
        set_pos(0)
        assert get_pos() == len("hello world") + 1

    def test_set_pos_out_of_range_fails(self, env):
        assert set_pos(99) is FAIL
        assert get_pos() == 1

    def test_envs_nest(self, env):
        inner = ScanEnv("inner", 1)
        push_env(inner)
        assert get_subject() == "inner"
        pop_env()
        assert get_subject() == "hello world"

    def test_envs_are_thread_local(self, env):
        seen = []

        def worker():
            try:
                current_env()
            except IconValueError:
                seen.append("no-env")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen == ["no-env"]


class TestTabMove:
    def test_tab_moves_and_returns_span(self, env):
        piece = next(tab(6))
        assert piece == "hello"
        assert get_pos() == 6

    def test_tab_backward(self, env):
        set_pos(6)
        assert next(tab(1)) == "hello"
        assert get_pos() == 1

    def test_tab_out_of_range_fails(self, env):
        assert list(tab(99)) == []

    def test_tab_reverses_on_resumption_only(self, env):
        stepper = tab(6)
        next(stepper)
        assert get_pos() == 6
        # Resumption (backtracking) restores and exhausts:
        assert list(stepper) == []
        assert get_pos() == 1

    def test_tab_acceptance_keeps_position(self, env):
        stepper = tab(6)
        next(stepper)
        stepper.close()  # the surrounding expression accepted the result
        assert get_pos() == 6

    def test_move(self, env):
        assert next(move(5)) == "hello"
        assert get_pos() == 6
        assert next(move(1)) == " "

    def test_move_negative(self, env):
        set_pos(6)
        assert next(move(-2)) == "lo"
        assert get_pos() == 4

    def test_move_out_of_bounds_fails(self, env):
        assert list(move(99)) == []

    def test_pos_test(self, env):
        assert next(pos(1)) == 1
        assert list(pos(3)) == []

    def test_tab_match(self, env):
        assert next(tab_match("hello")) == "hello"
        assert get_pos() == 6

    def test_tab_match_miss(self, env):
        assert list(tab_match("world")) == []


class TestAnalysis:
    def test_find_all_positions(self):
        assert list(find("ab", "xabyab")) == [2, 5]

    def test_find_with_range(self):
        assert list(find("a", "aaaa", 2, 4)) == [2, 3]

    def test_find_in_subject(self, env):
        assert list(find("o")) == [5, 8]

    def test_find_respects_pos(self, env):
        set_pos(6)
        assert list(find("o")) == [8]

    def test_upto(self):
        assert list(upto(LC, " ab c")) == [2, 3, 5]

    def test_many(self):
        assert list(many(LC, "abc de")) == [4]
        assert list(many(LC, " abc")) == []

    def test_any(self):
        assert list(any_(LC, "abc")) == [2]
        assert list(any_(LC, " abc")) == []

    def test_match(self):
        assert list(match("ab", "abc")) == [3]
        assert list(match("zz", "abc")) == []

    def test_bal_parens(self):
        # positions where a char lies at depth 0
        assert list(bal(Cset("+"), s="(a+b)+c")) == [6]

    def test_bal_default_csets(self):
        assert 1 in list(bal(s="x(y)z"))

    def test_bal_unbalanced_stops(self):
        assert list(bal(Cset("+"), s=")+")) == []

    def test_empty_needle_find(self):
        # an empty needle matches at every position up to the end
        assert list(find("", "ab")) == [1, 2, 3]


class TestScanNode:
    def test_scan_establishes_env(self):
        node = IconScan(IconValue("abc"), IconInvoke(IconValue(tab), IconValue(0)))
        assert list(node) == ["abc"]

    def test_scan_failing_subject(self):
        node = IconScan(IconFail(), IconValue(1))
        assert list(node) == []

    def test_scan_results_are_body_results(self):
        node = IconScan(IconValue("a b"), IconInvoke(IconValue(upto), IconValue(LC)))
        assert list(node) == [1, 3]

    def test_nested_scans(self):
        inner = IconScan(IconValue("xy"), IconInvoke(IconValue(tab), IconValue(0)))
        node = IconScan(IconValue("abc"), IconProduct(inner, IconInvoke(IconValue(tab), IconValue(0))))
        assert list(node) == ["abc"]

    def test_scan_subject_coerced_to_string(self):
        node = IconScan(IconValue(123), IconInvoke(IconValue(tab), IconValue(0)))
        assert list(node) == ["123"]
