"""Subscripting, sections, field access — Icon positions and variables."""

import pytest

from repro.errors import IconTypeError
from repro.runtime.access import (
    IconField,
    IconIndex,
    IconSection,
    StringRef,
    resolve_element,
    resolve_position,
)
from repro.runtime.iterator import IconGenerator, IconValue, IconVarIterator
from repro.runtime.refs import IconVar


def cell(value, name="v"):
    var = IconVar(name)
    var.set(value)
    return var


class TestPositions:
    def test_positive_positions(self):
        assert resolve_position(1, 3) == 0
        assert resolve_position(4, 3) == 3

    def test_nonpositive_positions(self):
        assert resolve_position(0, 3) == 3  # after the last element
        assert resolve_position(-1, 3) == 2
        assert resolve_position(-3, 3) == 0

    def test_out_of_range(self):
        assert resolve_position(5, 3) is None
        assert resolve_position(-4, 3) is None

    def test_element_resolution(self):
        assert resolve_element(1, 3) == 0
        assert resolve_element(3, 3) == 2
        assert resolve_element(4, 3) is None  # the position after the end
        assert resolve_element(-1, 3) == 2
        assert resolve_element(0, 3) is None


class TestListIndexing:
    def test_one_based(self):
        values = [10, 20, 30]
        node = IconIndex(IconValue(values), IconValue(1))
        assert list(node) == [10]

    def test_negative_from_right(self):
        node = IconIndex(IconValue([10, 20, 30]), IconValue(-1))
        assert list(node) == [30]

    def test_out_of_range_fails_not_errors(self):
        node = IconIndex(IconValue([1]), IconValue(9))
        assert list(node) == []

    def test_result_is_assignable(self):
        values = [1, 2, 3]
        ref = IconIndex(IconValue(values), IconValue(2)).first(default=None)
        node = IconIndex(IconValue(values), IconValue(2))
        result = next(node.iterate())
        result.set(99)
        assert values == [1, 99, 3]
        del ref

    def test_generator_subscript(self):
        node = IconIndex(IconValue([10, 20, 30]), IconGenerator(lambda: [1, 3]))
        assert list(node) == [10, 30]


class TestStringIndexing:
    def test_character(self):
        node = IconIndex(IconValue("abc"), IconValue(2))
        assert list(node) == ["b"]

    def test_string_variable_subscript_is_assignable(self):
        var = cell("abc")
        node = IconIndex(IconVarIterator(var), IconValue(2))
        result = next(node.iterate())
        assert isinstance(result, StringRef)
        result.set("X")
        assert var.get() == "aXc"

    def test_string_value_subscript_not_assignable(self):
        node = IconIndex(IconValue("abc"), IconValue(1))
        result = next(node.iterate())
        with pytest.raises(Exception):
            result.set("X")

    def test_string_ref_assignment_needs_string(self):
        var = cell("abc")
        ref = StringRef(var, 0)
        with pytest.raises(IconTypeError):
            ref.set(5)


class TestTableIndexing:
    def test_any_key_yields_variable(self):
        table = {}
        node = IconIndex(IconValue(table), IconValue("k"))
        result = next(node.iterate())
        assert result.get() is None
        result.set(5)
        assert table == {"k": 5}


class TestForeignIndexing:
    def test_tuple(self):
        node = IconIndex(IconValue((1, 2)), IconValue(2))
        assert list(node) == [2]

    def test_unsubscriptable_raises(self):
        with pytest.raises(IconTypeError):
            list(IconIndex(IconValue(3.5), IconValue(1)))


class TestSections:
    def test_string_section(self):
        node = IconSection(IconValue("abcdef"), IconValue(2), IconValue(4))
        assert list(node) == ["bc"]

    def test_whole_string_via_zero(self):
        node = IconSection(IconValue("abc"), IconValue(1), IconValue(0))
        assert list(node) == ["abc"]

    def test_reversed_bounds_normalize(self):
        node = IconSection(IconValue("abc"), IconValue(3), IconValue(1))
        assert list(node) == ["ab"]

    def test_plus_colon(self):
        node = IconSection(IconValue("abcdef"), IconValue(2), IconValue(3), mode="+:")
        assert list(node) == ["bcd"]

    def test_minus_colon(self):
        node = IconSection(IconValue("abcdef"), IconValue(4), IconValue(2), mode="-:")
        assert list(node) == ["bc"]

    def test_list_section_copies(self):
        values = [1, 2, 3, 4]
        node = IconSection(IconValue(values), IconValue(1), IconValue(3))
        section = next(iter(node))
        assert section == [1, 2]
        section.append(99)
        assert values == [1, 2, 3, 4]

    def test_out_of_range_fails(self):
        node = IconSection(IconValue("abc"), IconValue(1), IconValue(9))
        assert list(node) == []

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            IconSection(IconValue("a"), IconValue(1), IconValue(1), mode="??")

    def test_non_sequence_errors(self):
        with pytest.raises(IconTypeError):
            list(IconSection(IconValue(5), IconValue(1), IconValue(1)))


class TestFieldAccess:
    def test_object_field_is_variable(self):
        class Point:
            x = 0

        point = Point()
        node = IconField(IconValue(point), "x")
        result = next(node.iterate())
        result.set(7)
        assert point.x == 7

    def test_missing_field_errors(self):
        with pytest.raises(IconTypeError):
            list(IconField(IconValue(object()), "nope"))

    def test_dict_field_access_as_table(self):
        table = {"name": "icon"}
        node = IconField(IconValue(table), "name")
        assert list(node) == ["icon"]
