"""The failure sentinel, control signals, and suspension envelopes."""

import pickle

import pytest

from repro.runtime.failure import (
    FAIL,
    BreakSignal,
    ControlSignal,
    FailSignal,
    NextSignal,
    ReturnSignal,
    Suspension,
    _FailSentinel,
    succeeded,
)


class TestFailSentinel:
    def test_singleton(self):
        assert _FailSentinel() is FAIL

    def test_falsy(self):
        assert not FAIL
        assert bool(FAIL) is False

    def test_repr(self):
        assert repr(FAIL) == "FAIL"

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(FAIL)) is FAIL

    def test_succeeded(self):
        assert succeeded(0)
        assert succeeded(None)
        assert succeeded("")
        assert not succeeded(FAIL)


class TestSignals:
    def test_signals_are_exceptions_not_base_exceptions(self):
        for cls in (BreakSignal, NextSignal, ReturnSignal, FailSignal):
            assert issubclass(cls, ControlSignal)
            assert issubclass(cls, Exception)

    def test_break_carries_value_iterator(self):
        marker = object()
        assert BreakSignal(marker).value_iterator is marker
        assert BreakSignal().value_iterator is None

    def test_return_carries_value(self):
        assert ReturnSignal(42).value == 42
        assert ReturnSignal(FAIL).value is FAIL
        assert ReturnSignal().value is None

    def test_signals_raisable(self):
        with pytest.raises(NextSignal):
            raise NextSignal()
        with pytest.raises(FailSignal):
            raise FailSignal()


class TestSuspension:
    def test_carries_value(self):
        envelope = Suspension(7)
        assert envelope.value == 7

    def test_repr(self):
        assert "7" in repr(Suspension(7))

    def test_nesting_preserved(self):
        inner = Suspension(1)
        outer = Suspension(inner)
        assert outer.value is inner
