"""Cset algebra and coercion."""

import pytest

from repro.errors import IconTypeError
from repro.runtime.types import (
    ASCII,
    CSET_ALL,
    Cset,
    DIGITS,
    LCASE,
    LETTERS,
    UCASE,
    UNIVERSE,
    need_cset,
)


class TestConstruction:
    def test_from_string_deduplicates(self):
        assert len(Cset("aab")) == 2

    def test_multicharacter_pieces_contribute_each_char(self):
        assert Cset(["ab", "c"]) == Cset("abc")

    def test_non_string_member_rejected(self):
        with pytest.raises(IconTypeError):
            Cset([1])

    def test_immutable(self):
        charset = Cset("a")
        with pytest.raises(AttributeError):
            charset.chars = frozenset()


class TestAlgebra:
    def test_union(self):
        assert Cset("ab").union(Cset("bc")) == Cset("abc")

    def test_difference(self):
        assert Cset("abc").difference(Cset("b")) == Cset("ac")

    def test_intersection(self):
        assert Cset("abc").intersection(Cset("bcd")) == Cset("bc")

    def test_complement_is_involutive(self):
        charset = Cset("xyz")
        assert charset.complement().complement() == charset

    def test_complement_against_universe(self):
        charset = Cset("a")
        comp = charset.complement()
        assert len(comp) == len(UNIVERSE) - 1
        assert "a" not in comp


class TestProtocol:
    def test_contains(self):
        assert "a" in Cset("abc")
        assert "z" not in Cset("abc")

    def test_iteration_sorted(self):
        assert list(Cset("cba")) == ["a", "b", "c"]

    def test_string_conversion_sorted(self):
        assert Cset("ba").string() == "ab"

    def test_equality_and_hash(self):
        assert Cset("ab") == Cset("ba")
        assert hash(Cset("ab")) == hash(Cset("ba"))
        assert Cset("a") != Cset("b")
        assert (Cset("a") == "a") is False

    def test_repr(self):
        assert repr(Cset("ab")) == "Cset('ab')"


class TestNeedCset:
    def test_accepts_cset_string_set(self):
        charset = Cset("ab")
        assert need_cset(charset) is charset
        assert need_cset("ab") == charset
        assert need_cset({"a", "b"}) == charset

    def test_numbers_coerce_through_strings(self):
        assert need_cset(121) == Cset("12")

    def test_rejects_other_types(self):
        with pytest.raises(IconTypeError):
            need_cset([1, 2])


class TestStandardCsets:
    def test_sizes(self):
        assert len(DIGITS) == 10
        assert len(LCASE) == 26
        assert len(UCASE) == 26
        assert len(LETTERS) == 52
        assert len(ASCII) == 128
        assert len(CSET_ALL) == 256

    def test_letters_union(self):
        assert LETTERS == LCASE.union(UCASE)
