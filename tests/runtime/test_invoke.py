"""Invocation: delegation rules, method bodies, the body cache."""

import threading

import pytest

from repro.errors import IconNotAFunctionError
from repro.runtime.cache import MethodBodyCache
from repro.runtime.control import IconSuspend
from repro.runtime.combinators import IconSequence
from repro.runtime.failure import FAIL
from repro.runtime.invoke import (
    IconInvoke,
    IconInvokeIterator,
    IconMethodBody,
    icon_function,
    is_generator_function,
    iterate_call_result,
)
from repro.runtime.iterator import IconFail, IconGenerator, IconValue


class TestDelegationRules:
    def test_plain_function_promotes_to_singleton(self):
        node = IconInvoke(IconValue(len), IconValue("abc"))
        assert list(node) == [3]

    def test_list_result_not_iterated(self):
        node = IconInvoke(IconValue(lambda: [1, 2, 3]))
        assert list(node) == [[1, 2, 3]]

    def test_generator_function_delegates(self):
        def firsts(n):
            yield from range(n)

        node = IconInvoke(IconValue(firsts), IconValue(3))
        assert list(node) == [0, 1, 2]

    def test_failing_generator_function(self):
        def nothing(x):
            return
            yield

        node = IconInvoke(IconValue(nothing), IconValue(1))
        assert list(node) == []

    def test_icon_function_marker(self):
        @icon_function
        def wrapped(x):
            return iter([x, x + 1])

        assert is_generator_function(wrapped)
        node = IconInvoke(IconValue(wrapped), IconValue(5))
        assert list(node) == [5, 6]

    def test_fail_return_means_failure(self):
        node = IconInvoke(IconValue(lambda: FAIL))
        assert list(node) == []

    def test_native_flag_forces_singleton(self):
        def gen(n):
            yield from range(n)

        produced = gen(2)
        node = IconInvoke(IconValue(lambda: produced), native=True)
        results = list(node.iterate())
        assert results == [produced]

    def test_cross_product_of_args(self):
        node = IconInvoke(
            IconValue(lambda a, b: a * b),
            IconGenerator(lambda: [1, 2]),
            IconGenerator(lambda: [10, 100]),
        )
        assert list(node) == [10, 100, 20, 200]

    def test_callee_generator(self):
        node = IconInvoke(
            IconGenerator(lambda: [lambda x: x + 1, lambda x: x * 10]),
            IconValue(5),
        )
        assert list(node) == [6, 50]

    def test_mutual_evaluation(self):
        node = IconInvoke(IconValue(2), IconValue("a"), IconValue("b"))
        assert list(node) == ["b"]
        node = IconInvoke(IconValue(-1), IconValue("a"), IconValue("b"))
        assert list(node) == ["b"]
        node = IconInvoke(IconValue(5), IconValue("a"))
        assert list(node) == []

    def test_string_invocation_resolves_builtins(self):
        node = IconInvoke(IconValue("sqrt"), IconValue(9))
        assert list(node) == [3.0]

    def test_string_invocation_unknown_name_fails(self):
        node = IconInvoke(IconValue("no_such_procedure"), IconValue(1))
        assert list(node) == []

    def test_non_callable_raises(self):
        with pytest.raises(IconNotAFunctionError):
            list(IconInvoke(IconValue(3.5), IconValue(1)))


class TestInvokeIterator:
    def test_closure_reinvoked_per_pass(self):
        counter = {"n": 0}

        def closure():
            counter["n"] += 1
            return counter["n"]

        node = IconInvokeIterator(closure)
        assert list(node) == [1]
        assert list(node) == [2]

    def test_icon_iterator_result_delegated(self):
        node = IconInvokeIterator(lambda: IconGenerator(lambda: [1, 2]))
        assert list(node) == [1, 2]

    def test_fail_result(self):
        node = IconInvokeIterator(lambda: FAIL)
        assert list(node) == []

    def test_iterate_call_result_helper(self):
        assert list(iterate_call_result(FAIL)) == []
        assert list(iterate_call_result(5)) == [5]
        assert list(iterate_call_result(iter([1, 2]))) == [1, 2]


class TestMethodBody:
    def _body(self):
        return IconMethodBody(
            IconSequence(IconSuspend(IconGenerator(lambda: [1, 2])), IconFail())
        )

    def test_unpack_closure(self):
        captured = []
        body = IconMethodBody(IconFail(), unpack=lambda *a: captured.append(a))
        body.unpack_args(1, 2)
        assert captured == [(1, 2)]

    def test_fluent_api_aliases(self):
        body = IconMethodBody(IconFail())
        assert body.setUnpackClosure(lambda *a: None) is body
        assert body.unpackArgs() is body

    def test_released_to_cache_on_completion(self):
        cache = MethodBodyCache()
        body = self._body().set_cache(cache, "m")
        assert list(body) == [1, 2]
        assert cache.get_free("m") is body

    def test_cache_roundtrip_reuse(self):
        cache = MethodBodyCache()
        body = self._body().set_cache(cache, "m")
        list(body)
        again = cache.get_free("m")
        assert again is body
        assert list(again.reset()) == [1, 2]


class TestMethodBodyCache:
    def test_miss_then_hit(self):
        cache = MethodBodyCache()
        assert cache.get_free("k") is None
        cache.release("k", "body")
        assert cache.get_free("k") == "body"
        assert cache.stats() == {"hits": 1, "misses": 1}

    def test_lifo(self):
        cache = MethodBodyCache()
        cache.release("k", "a")
        cache.release("k", "b")
        assert cache.get_free("k") == "b"
        assert cache.get_free("k") == "a"

    def test_capacity_bound(self):
        cache = MethodBodyCache(max_per_method=2)
        for body in ("a", "b", "c"):
            cache.release("k", body)
        # deque(maxlen=2) keeps the two most recent
        assert cache.get_free("k") == "c"
        assert cache.get_free("k") == "b"
        assert cache.get_free("k") is None

    def test_double_release_filtered(self):
        cache = MethodBodyCache()
        cache.release("k", "x")
        cache.release("k", "x")
        assert cache.get_free("k") == "x"
        assert cache.get_free("k") is None

    def test_disabled_instance(self):
        cache = MethodBodyCache(enabled=False)
        cache.release("k", "x")
        assert cache.get_free("k") is None

    def test_disabled_globally(self, cache_disabled):
        cache = MethodBodyCache()
        cache.release("k", "x")
        assert cache.get_free("k") is None

    def test_clear(self):
        cache = MethodBodyCache()
        cache.release("k", "x")
        cache.clear()
        assert cache.get_free("k") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MethodBodyCache(max_per_method=-1)

    def test_thread_safety_smoke(self):
        cache = MethodBodyCache(max_per_method=64)
        errors = []

        def worker(tag):
            try:
                for i in range(500):
                    cache.release("k", f"{tag}-{i}")
                    cache.get_free("k")
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
