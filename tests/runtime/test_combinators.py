"""Composition forms: product, alternation, sequence, limit, every, ..."""

import pytest

from repro.runtime.failure import FAIL
from repro.runtime.combinators import (
    IconBound,
    IconConcat,
    IconEvery,
    IconIn,
    IconLimit,
    IconNot,
    IconProduct,
    IconRepeatAlt,
    IconSequence,
)
from repro.runtime.control import IconBreak, IconNext
from repro.runtime.iterator import IconFail, IconGenerator, IconValue
from repro.runtime.operations import IconAssign, IconToBy
from repro.runtime.refs import IconTmp, IconVar


def gen(*values):
    return IconGenerator(lambda: values)


class TestProduct:
    def test_yields_right_operand_results(self):
        node = IconProduct(gen(1, 2), gen("a", "b"))
        assert list(node) == ["a", "b", "a", "b"]

    def test_left_failure_short_circuits(self):
        effects = []
        right = IconGenerator(lambda: effects.append("evaluated") or [1])
        node = IconProduct(IconFail(), right)
        assert list(node) == []
        assert effects == []

    def test_right_reevaluated_per_left_result(self):
        counter = {"n": 0}

        def factory():
            counter["n"] += 1
            return [counter["n"]]

        node = IconProduct(gen(0, 0, 0), IconGenerator(factory))
        assert list(node) == [1, 2, 3]

    def test_nary(self):
        node = IconProduct(gen(1, 2), gen(0), gen("x", "y"))
        assert list(node) == ["x", "y", "x", "y"]

    def test_requires_operands(self):
        with pytest.raises(ValueError):
            IconProduct()


class TestIn:
    def test_binds_each_result(self):
        tmp = IconTmp()
        seen = []
        node = IconProduct(
            IconIn(tmp, gen(1, 2, 3)),
            IconGenerator(lambda: [tmp.get() * 10]),
        )
        seen = list(node)
        assert seen == [10, 20, 30]

    def test_yields_the_ref(self):
        tmp = IconTmp()
        results = list(IconIn(tmp, gen(5)).iterate())
        assert results == [tmp]

    def test_derefs_before_binding(self):
        cell = IconVar("x")
        cell.set(9)
        tmp = IconTmp()
        list(IconIn(tmp, IconGenerator(lambda: [cell])).iterate())
        assert tmp.get() == 9


class TestConcat:
    def test_alternation_order(self):
        assert list(IconConcat(gen(1), gen(2, 3))) == [1, 2, 3]

    def test_empty_operands(self):
        assert list(IconConcat(IconFail(), gen(7), IconFail())) == [7]

    def test_no_operands_fails(self):
        assert list(IconConcat()) == []


class TestSequence:
    def test_delegates_to_last(self):
        assert list(IconSequence(gen(1, 2), gen(3, 4))) == [3, 4]

    def test_non_final_bounded_to_one_result(self):
        counter = {"n": 0}

        def count():
            counter["n"] += 1
            return [counter["n"], counter["n"] + 100]  # 2 results available

        node = IconSequence(IconGenerator(count), gen("end"))
        assert list(node) == ["end"]
        assert counter["n"] == 1  # evaluated once, bounded

    def test_failing_statement_does_not_stop_sequence(self):
        assert list(IconSequence(IconFail(), gen("ok"))) == ["ok"]

    def test_empty_sequence_fails(self):
        assert list(IconSequence()) == []


class TestBound:
    def test_limits_to_one(self):
        assert list(IconBound(gen(1, 2, 3))) == [1]

    def test_propagates_failure(self):
        assert list(IconBound(IconFail())) == []


class TestLimit:
    def test_limits_results(self):
        assert list(IconLimit(IconToBy(1, 100), IconValue(3))) == [1, 2, 3]

    def test_limit_beyond_length(self):
        assert list(IconLimit(gen(1, 2), IconValue(10))) == [1, 2]

    def test_zero_limit(self):
        assert list(IconLimit(gen(1), IconValue(0))) == []

    def test_failing_limit(self):
        assert list(IconLimit(gen(1), IconFail())) == []


class TestRepeatAlt:
    def test_repeats_until_empty_pass(self):
        remaining = {"passes": 3}

        def factory():
            if remaining["passes"] == 0:
                return []
            remaining["passes"] -= 1
            return [remaining["passes"]]

        node = IconRepeatAlt(IconGenerator(factory))
        assert list(node) == [2, 1, 0]

    def test_immediately_empty(self):
        assert list(IconRepeatAlt(IconFail())) == []

    def test_limited_infinite(self):
        node = IconLimit(IconRepeatAlt(gen(1, 2)), IconValue(5))
        assert list(node) == [1, 2, 1, 2, 1]


class TestNot:
    def test_succeeds_on_failure(self):
        assert list(IconNot(IconFail())) == [None]

    def test_fails_on_success(self):
        assert list(IconNot(gen(1))) == []


class TestEvery:
    def test_drains_generator_and_fails(self):
        seen = []
        body = IconGenerator(lambda: [seen.append("tick")])
        node = IconEvery(gen(1, 2, 3), body)
        assert list(node) == []
        assert seen == ["tick"] * 3

    def test_no_body(self):
        node = IconEvery(gen(1, 2))
        assert list(node) == []

    def test_break_in_body_stops(self):
        cell = IconVar("count")
        cell.set(0)
        node = IconEvery(
            IconIn(cell, IconToBy(1, 100)),
            IconSequence(
                # break when cell reaches 3
                _break_if_three(cell),
            ),
        )
        assert list(node) == []
        assert cell.get() == 3

    def test_break_with_value_becomes_outcome(self):
        node = IconEvery(gen(1), IconBreak(IconValue("done")))
        assert list(node) == ["done"]

    def test_next_in_body_continues(self):
        ticks = []
        node = IconEvery(
            gen(1, 2),
            IconConcat(IconNext(), IconGenerator(lambda: [ticks.append(1)])),
        )
        assert list(node) == []
        assert ticks == []  # next skipped the rest of the body both times

    def test_assignment_driver(self):
        """every x := 1 to 3 — the common driving idiom."""
        cell = IconVar("x")
        collected = []
        node = IconEvery(
            IconAssign(cell, IconToBy(1, 3)),
            IconGenerator(lambda: [collected.append(cell.get())]),
        )
        list(node)
        assert collected == [1, 2, 3]


def _break_if_three(cell):
    from repro.runtime.control import IconIf
    from repro.runtime.operations import IconOperation, num_ge, plus

    bump = IconAssign(cell, IconOperation(plus, cell, IconValue(1)))
    return IconSequence(
        bump,
        IconIf(IconOperation(num_ge, cell, IconValue(3)), IconBreak()),
    )
