"""Icon built-in function library."""

import math

import pytest

from repro.errors import IconTypeError, IconValueError
from repro.runtime.failure import FAIL
from repro.runtime import functions as fn
from repro.runtime.functions import BUILTINS, keyword, set_keyword
from repro.runtime.types import Cset


class TestConversions:
    def test_integer_converts_or_fails(self):
        assert fn.icon_integer("42") == 42
        assert fn.icon_integer(3.0) == 3
        assert fn.icon_integer("x") is FAIL
        assert fn.icon_integer(3.5) is FAIL

    def test_numeric(self):
        assert fn.icon_numeric("2.5") == 2.5
        assert fn.icon_numeric([1]) is FAIL

    def test_real(self):
        assert fn.icon_real("2") == 2.0
        assert fn.icon_real("zap") is FAIL

    def test_string(self):
        assert fn.icon_string(12) == "12"
        assert fn.icon_string([1]) is FAIL

    def test_cset(self):
        assert fn.icon_cset("ab") == Cset("ab")
        assert fn.icon_cset([1]) is FAIL


class TestTypeAndImage:
    def test_type_names(self):
        assert fn.icon_type(1) == "integer"
        assert fn.icon_type(1.5) == "real"
        assert fn.icon_type("s") == "string"
        assert fn.icon_type(None) == "null"
        assert fn.icon_type([]) == "list"
        assert fn.icon_type({}) == "table"
        assert fn.icon_type(set()) == "set"
        assert fn.icon_type(Cset("a")) == "cset"
        assert fn.icon_type(len) == "procedure"

    def test_image(self):
        assert fn.icon_image("a\"b") == '"a\\"b"'
        assert fn.icon_image(None) == "&null"
        assert fn.icon_image(5) == "5"
        assert fn.icon_image(Cset("ab")) == "'ab'"
        assert fn.icon_image([1, 2]).startswith("list_")
        assert "procedure" in fn.icon_image(len)

    def test_copy_is_one_level(self):
        nested = [1, [2]]
        duplicate = fn.icon_copy(nested)
        assert duplicate == nested and duplicate is not nested
        assert duplicate[1] is nested[1]

    def test_copy_table_and_set(self):
        assert fn.icon_copy({"a": 1}) == {"a": 1}
        assert fn.icon_copy({1, 2}) == {1, 2}

    def test_copy_scalar_passthrough(self):
        assert fn.icon_copy("x") == "x"


class TestNumericBuiltins:
    def test_abs_min_max(self):
        assert fn.icon_abs("-5") == 5
        assert fn.icon_min(3, "1", 2) == 1
        assert fn.icon_max(3, "10", 2) == 10
        assert fn.icon_min() is FAIL

    def test_char_ord(self):
        assert fn.icon_char(65) == "A"
        assert fn.icon_ord("A") == 65
        with pytest.raises(IconValueError):
            fn.icon_ord("AB")
        with pytest.raises(IconValueError):
            fn.icon_char(-1)

    def test_math(self):
        assert fn.icon_sqrt(4) == 2.0
        assert fn.icon_exp(0) == 1.0
        assert abs(fn.icon_sin(math.pi)) < 1e-9
        assert fn.icon_log(math.e) == pytest.approx(1.0)
        assert fn.icon_log(8, 2) == pytest.approx(3.0)
        assert fn.icon_atan(1) == pytest.approx(math.pi / 4)
        assert fn.icon_atan(1, 1) == pytest.approx(math.pi / 4)


class TestGenerators:
    def test_seq_unbounded(self):
        stream = fn.seq(5, 10)
        assert [next(stream) for _ in range(3)] == [5, 15, 25]

    def test_seq_zero_step_errors(self):
        with pytest.raises(IconValueError):
            next(fn.seq(1, 0))

    def test_key_generates_table_keys(self):
        assert sorted(fn.key({"b": 1, "a": 2})) == ["a", "b"]

    def test_key_requires_table(self):
        with pytest.raises(IconTypeError):
            list(fn.key([1]))


class TestStringBuiltins:
    def test_left_right_center(self):
        assert fn.left("ab", 5) == "ab   "
        assert fn.left("abcdef", 3) == "abc"
        assert fn.right("ab", 5) == "   ab"
        assert fn.right("abcdef", 3) == "def"
        assert fn.center("ab", 6, "-") == "--ab--"
        assert fn.center("abcdef", 2) == "cd"

    def test_pad_characters(self):
        assert fn.left("x", 4, "ab") == "xaba"

    def test_negative_width_errors(self):
        with pytest.raises(IconValueError):
            fn.left("x", -1)

    def test_repl(self):
        assert fn.repl("ab", 3) == "ababab"
        assert fn.repl("ab", 0) == ""
        with pytest.raises(IconValueError):
            fn.repl("a", -1)

    def test_reverse(self):
        assert fn.reverse("abc") == "cba"
        assert fn.reverse([1, 2, 3]) == [3, 2, 1]

    def test_trim(self):
        assert fn.trim("abc   ") == "abc"
        assert fn.trim("abcxxx", Cset("x")) == "abc"

    def test_map_transliteration(self):
        assert fn.icon_map("HELLO") == "hello"  # default: upper→lower
        assert fn.icon_map("abc", "abc", "xyz") == "xyz"
        with pytest.raises(IconValueError):
            fn.icon_map("a", "ab", "x")


class TestStructureBuiltins:
    def test_list_constructor(self):
        assert fn.icon_list(3, 0) == [0, 0, 0]
        assert fn.icon_list() == []

    def test_table_with_default(self):
        table = fn.icon_table("none")
        assert table.get("missing") == "none"
        table["k"] = 1
        assert table.get("k") == 1

    def test_set_constructor(self):
        assert fn.icon_set([1, 2, 2]) == {1, 2}
        assert fn.icon_set() == set()
        with pytest.raises(IconTypeError):
            fn.icon_set("abc")

    def test_put_push_get_pull(self):
        values = [2]
        fn.put(values, 3, 4)
        fn.push(values, 1)
        assert values == [1, 2, 3, 4]
        assert fn.get(values) == 1
        assert fn.pull(values) == 4
        assert values == [2, 3]

    def test_get_pull_fail_on_empty(self):
        assert fn.get([]) is FAIL
        assert fn.pull([]) is FAIL

    def test_put_requires_list(self):
        with pytest.raises(IconTypeError):
            fn.put("x", 1)

    def test_insert_delete_member(self):
        table = {}
        fn.insert(table, "k", 1)
        assert fn.member(table, "k") == "k"
        fn.delete(table, "k")
        assert fn.member(table, "k") is FAIL

        members = set()
        fn.insert(members, 5)
        assert fn.member(members, 5) == 5
        fn.delete(members, 5)
        assert fn.member(members, 5) is FAIL

    def test_sort(self):
        assert fn.icon_sort([3, 1, 2]) == [1, 2, 3]
        assert fn.icon_sort({"b": 2, "a": 1}) == [["a", 1], ["b", 2]]
        assert fn.icon_sort({2, 1}) == [1, 2]
        assert fn.icon_sort(Cset("ba")) == ["a", "b"]
        assert fn.icon_sort([2, "a", 1]) == [1, 2, "a"]  # numbers before strings


class TestIO:
    def test_write_returns_last_argument(self, capsys):
        assert fn.write("total=", 5) == 5
        assert capsys.readouterr().out == "total=5\n"

    def test_writes_no_newline(self, capsys):
        fn.writes("a")
        assert capsys.readouterr().out == "a"

    def test_write_nulls_are_empty(self, capsys):
        fn.write(None, "x")
        assert capsys.readouterr().out == "x\n"

    def test_read_from_handle(self):
        import io

        handle = io.StringIO("line1\nline2\n")
        assert fn.read(handle) == "line1"
        assert fn.read(handle) == "line2"
        assert fn.read(handle) is FAIL

    def test_stop_exits(self, capsys):
        with pytest.raises(SystemExit):
            fn.stop("bye")
        assert "bye" in capsys.readouterr().err


class TestKeywords:
    def test_constant_keywords(self):
        assert keyword("null") is None
        assert keyword("digits") == Cset("0123456789")
        assert len(keyword("lcase")) == 26
        assert len(keyword("ucase")) == 26
        assert len(keyword("letters")) == 52
        assert len(keyword("ascii")) == 128
        assert len(keyword("cset")) == 256
        assert keyword("fail") is FAIL

    def test_clock_and_date_shapes(self):
        assert len(keyword("clock").split(":")) == 3
        assert len(keyword("date").split("/")) == 3

    def test_time_monotonic(self):
        assert isinstance(keyword("time"), int)

    def test_version(self):
        assert "Junicon" in keyword("version") or "junicon" in keyword("version").lower()

    def test_unknown_keyword(self):
        with pytest.raises(IconValueError):
            keyword("nosuch")

    def test_random_assignable(self):
        set_keyword("random", 5)
        from repro.runtime.operations import random_of

        first = random_of(1000)
        set_keyword("random", 5)
        assert random_of(1000) == first

    def test_unassignable_keyword(self):
        with pytest.raises(IconValueError):
            set_keyword("digits", "x")


class TestRegistry:
    def test_registry_contains_core_names(self):
        for name in (
            "abs", "center", "char", "copy", "find", "image", "insert",
            "integer", "left", "many", "map", "match", "move", "pos", "pull",
            "push", "put", "read", "repl", "reverse", "right", "seq", "sort",
            "sqrt", "tab", "table", "trim", "type", "upto", "write",
        ):
            assert name in BUILTINS, name

    def test_registry_callables(self):
        assert all(callable(value) for value in BUILTINS.values())
