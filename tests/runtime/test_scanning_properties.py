"""Property-based tests pinning string-analysis builtins to Python models."""

from hypothesis import given, settings, strategies as st

from repro.runtime.scanning import ScanEnv, find, many, match, pop_env, push_env, tab, upto, any_
from repro.runtime.types import Cset

texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=25
)
needles = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1,
    max_size=4,
)
charsets = st.text(alphabet="abcxyz ", min_size=1, max_size=5)

relaxed = settings(max_examples=60, deadline=None)


class TestFindModel:
    @given(needles, texts)
    @relaxed
    def test_positions_match_str_find(self, needle, text):
        expected = []
        start = 0
        while True:
            hit = text.find(needle, start)
            if hit < 0:
                break
            expected.append(hit + 1)
            start = hit + 1
        assert list(find(needle, text)) == expected

    @given(needles, texts)
    @relaxed
    def test_every_position_is_a_real_occurrence(self, needle, text):
        for position in find(needle, text):
            assert text[position - 1: position - 1 + len(needle)] == needle


class TestUptoModel:
    @given(charsets, texts)
    @relaxed
    def test_positions_are_exactly_member_indices(self, chars, text):
        charset = Cset(chars)
        expected = [i + 1 for i, ch in enumerate(text) if ch in charset]
        assert list(upto(charset, text)) == expected


class TestManyAnyModels:
    @given(charsets, texts)
    @relaxed
    def test_many_is_longest_prefix_run(self, chars, text):
        charset = Cset(chars)
        run = 0
        while run < len(text) and text[run] in charset:
            run += 1
        expected = [run + 1] if run else []
        assert list(many(charset, text)) == expected

    @given(charsets, texts)
    @relaxed
    def test_any_matches_first_character_only(self, chars, text):
        charset = Cset(chars)
        expected = [2] if text and text[0] in charset else []
        assert list(any_(charset, text)) == expected


class TestMatchModel:
    @given(needles, texts)
    @relaxed
    def test_match_is_startswith(self, needle, text):
        expected = [len(needle) + 1] if text.startswith(needle) else []
        assert list(match(needle, text)) == expected


class TestTabInvariants:
    @given(texts.filter(bool), st.data())
    @relaxed
    def test_tab_moves_exactly_to_target(self, text, data):
        target = data.draw(st.integers(1, len(text) + 1))
        env = ScanEnv(text, 1)
        push_env(env)
        try:
            piece = next(tab(target))
            assert piece == text[: target - 1]
            assert env.pos == target
        finally:
            pop_env()

    @given(texts.filter(bool))
    @relaxed
    def test_tab_roundtrip_reconstructs_subject(self, text):
        env = ScanEnv(text, 1)
        push_env(env)
        try:
            first_half = next(tab(len(text) // 2 + 1))
            second_half = next(tab(0))
            assert first_half + second_half == text
        finally:
            pop_env()
