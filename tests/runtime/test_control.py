"""Control constructs: if/while/until/repeat/case/suspend/return/fail."""

import pytest

from repro.runtime.failure import FAIL, FailSignal, ReturnSignal
from repro.runtime.combinators import IconConcat, IconIn, IconSequence
from repro.runtime.control import (
    IconBreak,
    IconCase,
    IconFailStmt,
    IconIf,
    IconNext,
    IconRepeat,
    IconReturn,
    IconSuspend,
    IconUntil,
    IconWhile,
)
from repro.runtime.invoke import IconMethodBody
from repro.runtime.iterator import IconFail, IconGenerator, IconValue, IconVarIterator
from repro.runtime.operations import IconAssign, IconOperation, IconToBy, num_lt, plus
from repro.runtime.refs import IconVar


def gen(*values):
    return IconGenerator(lambda: values)


def cell(value=None):
    var = IconVar("v")
    var.set(value)
    return var


class TestIf:
    def test_then_branch_generates_all_results(self):
        node = IconIf(IconValue(1), gen(1, 2, 3))
        assert list(node) == [1, 2, 3]

    def test_else_branch(self):
        node = IconIf(IconFail(), gen(1), gen("e1", "e2"))
        assert list(node) == ["e1", "e2"]

    def test_no_else_fails(self):
        assert list(IconIf(IconFail(), gen(1))) == []

    def test_condition_is_bounded(self):
        counter = {"n": 0}

        def cond():
            counter["n"] += 1
            return [1, 2, 3]

        node = IconIf(IconGenerator(cond), IconValue("t"))
        assert list(node) == ["t"]
        assert counter["n"] == 1


class TestWhile:
    def test_loops_until_cond_fails_then_fails(self):
        var = cell(0)
        node = IconWhile(
            IconOperation(num_lt, var, IconValue(3)),
            IconAssign(var, IconOperation(plus, var, IconValue(1))),
        )
        assert list(node) == []
        assert var.get() == 3

    def test_break_value_is_loop_outcome(self):
        node = IconWhile(IconValue(1), IconBreak(IconValue(42)))
        assert list(node) == [42]

    def test_bare_break(self):
        node = IconWhile(IconValue(1), IconBreak())
        assert list(node) == []

    def test_next_skips_rest_of_body(self):
        var = cell(0)
        effects = []
        node = IconWhile(
            IconOperation(num_lt, var, IconValue(2)),
            IconSequence(
                IconAssign(var, IconOperation(plus, var, IconValue(1))),
                IconNext(),
                IconGenerator(lambda: [effects.append("never")]),
            ),
        )
        list(node)
        assert effects == []
        assert var.get() == 2


class TestUntil:
    def test_loops_until_cond_succeeds(self):
        var = cell(0)
        node = IconUntil(
            IconOperation(lambda a, b: b if a >= b else FAIL, var, IconValue(3)),
            IconAssign(var, IconOperation(plus, var, IconValue(1))),
        )
        assert list(node) == []
        assert var.get() == 3

    def test_break_in_body(self):
        node = IconUntil(IconFail(), IconBreak(IconValue("out")))
        assert list(node) == ["out"]


class TestRepeat:
    def test_loops_forever_until_break(self):
        var = cell(0)
        node = IconRepeat(
            IconSequence(
                IconAssign(var, IconOperation(plus, var, IconValue(1))),
                IconIf(
                    IconOperation(lambda a, b: b if a >= b else FAIL, var, IconValue(5)),
                    IconBreak(),
                ),
            )
        )
        assert list(node) == []
        assert var.get() == 5


class TestCase:
    def _case(self, subject):
        return IconCase(
            IconValue(subject),
            [
                (IconValue(1), IconValue("one")),
                (IconConcat(IconValue(2), IconValue(3)), IconValue("few")),
            ],
            default=IconValue("many"),
        )

    def test_first_match(self):
        assert list(self._case(1)) == ["one"]

    def test_alternation_selector(self):
        assert list(self._case(3)) == ["few"]

    def test_default(self):
        assert list(self._case(99)) == ["many"]

    def test_no_default_fails(self):
        node = IconCase(IconValue(9), [(IconValue(1), IconValue("one"))])
        assert list(node) == []

    def test_failing_subject_fails(self):
        node = IconCase(IconFail(), [(IconValue(1), IconValue("one"))])
        assert list(node) == []

    def test_no_numeric_string_cross_match(self):
        node = IconCase(IconValue("1"), [(IconValue(1), IconValue("int"))])
        assert list(node) == []

    def test_branch_body_generates(self):
        node = IconCase(IconValue(1), [(IconValue(1), gen("a", "b"))])
        assert list(node) == ["a", "b"]


class TestSuspendInProcedures:
    def _method(self, body):
        return IconMethodBody(IconSequence(body, IconFail()))

    def test_suspend_generates_all(self):
        body = self._method(IconSuspend(gen(1, 2, 3)))
        assert list(body) == [1, 2, 3]

    def test_suspend_through_while(self):
        var = cell(0)
        body = self._method(
            IconWhile(
                IconOperation(num_lt, var, IconValue(3)),
                IconSequence(
                    IconSuspend(IconVarIterator(var)),
                    IconAssign(var, IconOperation(plus, var, IconValue(1))),
                ),
            )
        )
        assert list(body) == [0, 1, 2]

    def test_do_clause_runs_between_results(self):
        ticks = []
        body = self._method(
            IconSuspend(gen("a", "b"), IconGenerator(lambda: [ticks.append(1)]))
        )
        out = []
        for value in body:
            out.append((value, len(ticks)))
        # the do-clause runs on *resumption*, i.e. after each yield
        assert out == [("a", 0), ("b", 1)]
        assert len(ticks) == 2

    def test_statements_after_suspend_run(self):
        effects = []
        body = self._method(
            IconSequence(
                IconSuspend(gen(1)),
                IconGenerator(lambda: [effects.append("after")]),
                IconFail(),
            )
        )
        assert list(body) == [1]
        assert effects == ["after"]


class TestReturnFail:
    def test_return_value(self):
        body = IconMethodBody(IconSequence(IconReturn(IconValue(9)), IconFail()))
        assert list(body) == [9]

    def test_return_of_failing_expr_means_failure(self):
        body = IconMethodBody(IconReturn(IconFail()))
        assert list(body) == []

    def test_bare_return_is_null(self):
        body = IconMethodBody(IconReturn())
        assert list(body) == [None]

    def test_fail_statement(self):
        body = IconMethodBody(IconSequence(IconFailStmt(), IconValue(1)))
        assert list(body) == []

    def test_return_signal_outside_body_escapes(self):
        with pytest.raises(ReturnSignal):
            list(IconReturn(IconValue(1)).iterate())

    def test_fail_signal_outside_body_escapes(self):
        with pytest.raises(FailSignal):
            list(IconFailStmt().iterate())

    def test_falling_off_end_fails(self):
        body = IconMethodBody(IconSequence(IconValue(1), IconFail()))
        assert list(body) == []

    def test_return_stops_suspension(self):
        body = IconMethodBody(
            IconSequence(
                IconSuspend(gen(1, 2)),
                IconReturn(IconValue("done")),
                IconFail(),
            )
        )
        assert list(body) == [1, 2, "done"]

    def test_return_first_result_only(self):
        body = IconMethodBody(IconReturn(gen(5, 6, 7)))
        assert list(body) == [5]


class TestSuspendInEveryLoop:
    def test_suspend_inside_every_do(self):
        var = IconVar("i")
        body = IconMethodBody(
            IconSequence(
                # every i := 1 to 3 do suspend i * 10
                _every_suspend(var),
                IconFail(),
            )
        )
        assert list(body) == [10, 20, 30]


def _every_suspend(var):
    from repro.runtime.combinators import IconEvery
    from repro.runtime.operations import times

    return IconEvery(
        IconAssign(var, IconToBy(1, 3)),
        IconSuspend(IconOperation(times, var, IconValue(10))),
    )
