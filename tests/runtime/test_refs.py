"""Reified variables: IconVar, IconTmp, structure refs, deref/assign."""

import pytest

from repro.errors import IconIndexError, IconNotAssignableError
from repro.runtime.refs import (
    FieldRef,
    IconTmp,
    IconVar,
    ListRef,
    ReadOnlyRef,
    TableRef,
    assign,
    deref,
)


class TestIconVar:
    def test_self_contained_cell(self):
        cell = IconVar("x")
        assert cell.get() is None
        assert cell.set(5) == 5
        assert cell.get() == 5

    def test_closure_backed_cell_aliases_external_storage(self):
        store = {"x": 1}
        cell = IconVar("x", lambda: store["x"], lambda v: store.__setitem__("x", v))
        assert cell.get() == 1
        cell.set(9)
        assert store["x"] == 9

    def test_local_marking_is_fluent(self):
        cell = IconVar("x").local()
        assert cell.is_local
        assert not IconVar("y").is_local

    def test_repr_shows_value(self):
        cell = IconVar("x")
        cell.set(3)
        assert "3" in repr(cell)


class TestIconTmp:
    def test_slot_semantics(self):
        tmp = IconTmp()
        assert tmp.get() is None
        tmp.set("v")
        assert tmp.get() == "v"

    def test_initial_value(self):
        assert IconTmp(10).get() == 10


class TestListRef:
    def test_read_write(self):
        values = [1, 2, 3]
        ref = ListRef(values, 1)
        assert ref.get() == 2
        ref.set(20)
        assert values == [1, 20, 3]

    def test_out_of_range_read_raises(self):
        with pytest.raises(IconIndexError):
            ListRef([1], 5).get()

    def test_out_of_range_write_raises(self):
        with pytest.raises(IconIndexError):
            ListRef([1], 5).set(0)


class TestTableRef:
    def test_missing_key_reads_default(self):
        table = {}
        ref = TableRef(table, "k")
        assert ref.get() is None
        ref.set(1)
        assert table == {"k": 1}

    def test_custom_default(self):
        assert TableRef({}, "k", default=0).get() == 0


class TestFieldRef:
    def test_read_write(self):
        class Obj:
            x = 1

        obj = Obj()
        ref = FieldRef(obj, "x")
        assert ref.get() == 1
        ref.set(2)
        assert obj.x == 2


class TestReadOnlyRef:
    def test_read(self):
        assert ReadOnlyRef("a").get() == "a"

    def test_write_rejected(self):
        with pytest.raises(IconNotAssignableError):
            ReadOnlyRef("a").set("b")


class TestHelpers:
    def test_deref_collapses_refs(self):
        cell = IconVar("x")
        cell.set(7)
        assert deref(cell) == 7

    def test_deref_passthrough(self):
        assert deref(7) == 7
        assert deref(None) is None

    def test_deref_is_single_level(self):
        inner = IconVar("i")
        inner.set(1)
        outer = IconVar("o")
        outer.set(inner)
        assert deref(outer) is inner

    def test_assign_requires_ref(self):
        with pytest.raises(IconNotAssignableError):
            assign(42, 1)

    def test_assign_through_ref(self):
        cell = IconVar("x")
        assert assign(cell, 3) == 3
        assert cell.get() == 3
