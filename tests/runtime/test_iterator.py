"""The iterator kernel: failure-driven stepping, restart, host views."""

import pytest

from repro.runtime.failure import FAIL, Suspension
from repro.runtime.iterator import (
    IconFail,
    IconGenerator,
    IconIterator,
    IconLazy,
    IconNullIterator,
    IconValue,
    IconVarIterator,
    as_iterator,
    step_bounded,
    unwrap,
)
from repro.runtime.refs import IconVar


class TestIconValue:
    def test_singleton(self):
        assert list(IconValue(5)) == [5]

    def test_restartable(self):
        node = IconValue("x")
        assert list(node) == ["x"]
        assert list(node) == ["x"]


class TestIconFail:
    def test_empty(self):
        assert list(IconFail()) == []
        assert IconFail().first() is FAIL
        assert not IconFail().exists()


class TestIconNull:
    def test_produces_none_once(self):
        assert list(IconNullIterator()) == [None]


class TestIconLazy:
    def test_defers_computation(self):
        calls = []
        node = IconLazy(lambda: calls.append(1) or len(calls))
        assert not calls
        assert node.first() == 1
        assert node.first() == 2  # re-evaluated per pass


class TestIconGenerator:
    def test_factory_restart(self):
        node = IconGenerator(lambda: range(3))
        assert list(node) == [0, 1, 2]
        assert list(node) == [0, 1, 2]  # a fresh pass re-invokes the factory

    def test_single_shot_source_exhausts(self):
        source = iter([1, 2])
        node = IconGenerator(lambda: source)
        assert list(node) == [1, 2]
        assert list(node) == []


class TestStatefulStepping:
    def test_next_value_walks_results(self):
        node = IconGenerator(lambda: [10, 20])
        assert node.next_value() == 10
        assert node.next_value() == 20
        assert node.next_value() is FAIL

    def test_restart_after_failure(self):
        """The paper's kernel contract: after failure the iterator is
        restarted on the following next()."""
        node = IconGenerator(lambda: [1])
        assert node.next_value() == 1
        assert node.next_value() is FAIL
        assert node.next_value() == 1

    def test_explicit_restart(self):
        node = IconGenerator(lambda: [1, 2, 3])
        assert node.next_value() == 1
        node.restart()
        assert node.next_value() == 1

    def test_reset_alias(self):
        node = IconValue(1)
        assert node.reset() is node


class TestHostViews:
    def test_iter_derefs(self):
        cell = IconVar("x")
        cell.set(42)
        assert list(IconVarIterator(cell)) == [42]

    def test_first_default(self):
        assert IconFail().first(default="d") == "d"

    def test_last(self):
        assert IconGenerator(lambda: [1, 2, 3]).last() == 3
        assert IconFail().last(default=0) == 0

    def test_list(self):
        assert IconGenerator(lambda: "ab").list() == ["a", "b"]

    def test_values_alias(self):
        assert list(IconValue(1).values()) == [1]

    def test_exists(self):
        assert IconValue(None).exists()  # null is still a result


class TestAsIterator:
    def test_node_passthrough(self):
        node = IconValue(1)
        assert as_iterator(node) is node

    def test_ref_becomes_variable_iterator(self):
        cell = IconVar("x")
        node = as_iterator(cell)
        assert isinstance(node, IconVarIterator)

    def test_callable_is_a_value(self):
        fn = lambda: 1  # noqa: E731
        node = as_iterator(fn)
        assert list(node.iterate()) == [fn]

    def test_plain_value(self):
        assert list(as_iterator(99)) == [99]


class TestStepBounded:
    def test_returns_first_ordinary_result(self):
        def drive():
            outcome = yield from step_bounded(IconGenerator(lambda: [7, 8]))
            return outcome

        gen = drive()
        with pytest.raises(StopIteration) as info:
            next(gen)
        assert info.value.value == 7

    def test_fail_outcome(self):
        def drive():
            return (yield from step_bounded(IconFail()))

        gen = drive()
        with pytest.raises(StopIteration) as info:
            next(gen)
        assert info.value.value is FAIL

    def test_forwards_envelopes(self):
        class Suspender(IconIterator):
            def iterate(self):
                yield Suspension("s")
                yield "ordinary"

        def drive():
            return (yield from step_bounded(Suspender()))

        gen = drive()
        first = next(gen)
        assert isinstance(first, Suspension) and first.value == "s"
        with pytest.raises(StopIteration) as info:
            next(gen)
        assert info.value.value == "ordinary"


class TestUnwrap:
    def test_unwraps_envelope(self):
        assert unwrap(Suspension(3)) == 3

    def test_passthrough(self):
        assert unwrap(3) == 3

    def test_next_value_unwraps(self):
        class Suspender(IconIterator):
            def iterate(self):
                yield Suspension("v")

        assert Suspender().next_value() == "v"
