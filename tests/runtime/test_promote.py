"""Promotion (!) and activation (@) over host values and iterators."""

import io

import pytest

from repro.errors import IconTypeError
from repro.runtime.failure import FAIL
from repro.runtime.iterator import IconGenerator, IconValue
from repro.runtime.promote import (
    IconActivate,
    IconPromote,
    activate_value,
    promote_value,
)
from repro.runtime.refs import ListRef, TableRef
from repro.runtime.types import Cset


class TestPromoteValues:
    def test_list_elements_are_variables(self):
        values = [1, 2]
        results = list(promote_value(values))
        assert all(isinstance(r, ListRef) for r in results)
        results[0].set(10)
        assert values == [10, 2]

    def test_list_growth_during_promotion(self):
        values = [1]
        out = []
        for ref in promote_value(values):
            out.append(ref.get())
            if len(values) < 3:
                values.append(len(values) + 1)
        assert out == [1, 2, 3]

    def test_string_characters(self):
        assert list(promote_value("abc")) == ["a", "b", "c"]

    def test_integer_promotes_through_string(self):
        assert list(promote_value(123)) == ["1", "2", "3"]

    def test_table_values_are_variables(self):
        table = {"a": 1}
        results = list(promote_value(table))
        assert isinstance(results[0], TableRef)
        assert results[0].get() == 1

    def test_set_elements(self):
        assert sorted(promote_value({3, 1, 2})) == [1, 2, 3]

    def test_cset_sorted_characters(self):
        assert list(promote_value(Cset("ba"))) == ["a", "b"]

    def test_file_lines(self):
        handle = io.StringIO("one\ntwo\n")
        assert list(promote_value(handle)) == ["one", "two"]

    def test_python_generator_delegates(self):
        assert list(promote_value(iter([1, 2]))) == [1, 2]

    def test_icon_iterator_delegates(self):
        assert list(promote_value(IconGenerator(lambda: [5, 6]))) == [5, 6]

    def test_float_promotes_through_string_image(self):
        assert list(promote_value(2.5)) == ["2", ".", "5"]

    def test_unpromotable_raises(self):
        with pytest.raises(IconTypeError):
            list(promote_value(object()))

    def test_hook_protocol(self):
        class Custom:
            def icon_promote(self):
                return iter(["hooked"])

        assert list(promote_value(Custom())) == ["hooked"]


class TestIconPromoteNode:
    def test_promotes_each_operand_result(self):
        node = IconPromote(IconGenerator(lambda: ["ab", "cd"]))
        assert list(node) == ["a", "b", "c", "d"]

    def test_derefs_before_promoting(self):
        from repro.runtime.refs import IconVar

        var = IconVar("x")
        var.set([1, 2])
        node = IconPromote(IconGenerator(lambda: [var]))
        assert list(node) == [1, 2]


class TestActivation:
    def test_steps_icon_iterator(self):
        node = IconGenerator(lambda: [1, 2])
        assert activate_value(node) == 1
        assert activate_value(node) == 2
        assert activate_value(node) is FAIL

    def test_steps_python_iterator(self):
        it = iter([9])
        assert activate_value(it) == 9
        assert activate_value(it) is FAIL

    def test_unactivatable_raises(self):
        with pytest.raises(IconTypeError):
            activate_value(42)

    def test_hook_protocol(self):
        class Custom:
            def icon_activate(self, transmit=None):
                return ("stepped", transmit)

        assert activate_value(Custom(), "msg") == ("stepped", "msg")

    def test_activate_node(self):
        stepper = IconGenerator(lambda: iter([7, 8]))
        # Note: a fresh pass per target result; target yields the stepper
        node = IconActivate(IconValue(stepper))
        assert node.first() == 7
        assert node.first() == 8

    def test_activate_node_failure_filtered(self):
        exhausted = iter([])
        node = IconActivate(IconValue(exhausted))
        assert list(node) == []
