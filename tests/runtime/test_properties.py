"""Property-based tests (hypothesis) on the goal-directed kernel.

The kernel combinators have clean algebraic models over finite result
sequences; these properties pin them against itertools references.
"""

from hypothesis import given, settings, strategies as st

from repro.runtime.access import resolve_position
from repro.runtime.combinators import (
    IconConcat,
    IconLimit,
    IconProduct,
    IconSequence,
)
from repro.runtime.iterator import IconGenerator, IconValue
from repro.runtime.operations import IconToBy, divide, modulo
from repro.runtime.types import Cset, need_cset

values = st.lists(st.integers(-50, 50), max_size=8)
small_ints = st.integers(-30, 30)
charsets = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=255), max_size=12
)


def gen(seq):
    return IconGenerator(lambda: list(seq))


class TestCombinatorAlgebra:
    @given(values, values)
    def test_product_result_counts_multiply(self, left, right):
        node = IconProduct(gen(left), gen(right))
        assert len(list(node)) == len(left) * len(right)

    @given(values, values)
    def test_product_yields_repeated_right(self, left, right):
        node = IconProduct(gen(left), gen(right))
        assert list(node) == right * len(left)

    @given(values, values, values)
    def test_product_associativity(self, a, b, c):
        left_assoc = IconProduct(IconProduct(gen(a), gen(b)), gen(c))
        right_assoc = IconProduct(gen(a), IconProduct(gen(b), gen(c)))
        assert list(left_assoc) == list(right_assoc)

    @given(values, values)
    def test_concat_is_concatenation(self, a, b):
        assert list(IconConcat(gen(a), gen(b))) == a + b

    @given(values, values, values)
    def test_concat_associativity(self, a, b, c):
        assert list(IconConcat(IconConcat(gen(a), gen(b)), gen(c))) == list(
            IconConcat(gen(a), IconConcat(gen(b), gen(c)))
        )

    @given(values)
    def test_empty_is_product_annihilator(self, a):
        assert list(IconProduct(gen([]), gen(a))) == []
        assert list(IconProduct(gen(a), gen([]))) == []

    @given(values, st.integers(0, 12))
    def test_limit_is_prefix(self, a, n):
        node = IconLimit(gen(a), IconValue(n))
        assert list(node) == a[:n]

    @given(values, values)
    def test_sequence_is_last_operand(self, a, b):
        assert list(IconSequence(gen(a), gen(b))) == b

    @given(values)
    def test_restartability(self, a):
        node = gen(a)
        assert list(node) == list(node)


class TestToByModel:
    @given(st.integers(-40, 40), st.integers(-40, 40),
           st.integers(-5, 5).filter(lambda n: n != 0))
    def test_matches_python_range_model(self, start, stop, step):
        got = list(IconToBy(start, stop, step))
        inclusive = stop + (1 if step > 0 else -1)
        assert got == list(range(start, inclusive, step))

    @given(st.integers(-40, 40), st.integers(-40, 40))
    def test_default_step_is_one(self, start, stop):
        assert list(IconToBy(start, stop)) == list(range(start, stop + 1))


class TestArithmeticModels:
    @given(small_ints, small_ints.filter(lambda n: n != 0))
    def test_divide_truncates_toward_zero(self, a, b):
        assert divide(a, b) == int(a / b)

    @given(small_ints, small_ints.filter(lambda n: n != 0))
    def test_mod_identity(self, a, b):
        # a == (a / b) * b + (a % b) with truncating division
        assert divide(a, b) * b + modulo(a, b) == a

    @given(small_ints, small_ints.filter(lambda n: n != 0))
    def test_mod_sign_of_dividend(self, a, b):
        remainder = modulo(a, b)
        assert remainder == 0 or (remainder > 0) == (a > 0)


class TestCsetLaws:
    @given(charsets, charsets)
    def test_union_commutes(self, a, b):
        x, y = Cset(a), Cset(b)
        assert x.union(y) == y.union(x)

    @given(charsets, charsets)
    def test_de_morgan(self, a, b):
        x, y = Cset(a), Cset(b)
        assert x.union(y).complement() == x.complement().intersection(y.complement())

    @given(charsets)
    def test_difference_with_self_is_empty(self, a):
        x = Cset(a)
        assert len(x.difference(x)) == 0

    @given(charsets)
    def test_coercion_roundtrip(self, a):
        assert need_cset(Cset(a).string()) == Cset(a)


class TestPositionModel:
    @given(st.integers(-20, 20), st.integers(0, 10))
    def test_resolution_in_bounds_or_none(self, position, length):
        resolved = resolve_position(position, length)
        if resolved is not None:
            assert 0 <= resolved <= length

    @given(st.integers(1, 10))
    def test_position_symmetry(self, length):
        # position 0 is a synonym for length+1; -k for length+1-k
        for offset in range(length + 1):
            assert resolve_position(-offset, length) == resolve_position(
                length + 1 - offset, length
            )


class TestKernelInvariants:
    @given(values)
    @settings(max_examples=40)
    def test_next_value_then_fail_then_restart(self, a):
        node = gen(a)
        walked = []
        while True:
            from repro.runtime.failure import FAIL

            value = node.next_value()
            if value is FAIL:
                break
            walked.append(value)
        assert walked == a
        # restart-after-failure: a fresh walk reproduces the sequence
        assert node.next_value() == (a[0] if a else node.next_value())
