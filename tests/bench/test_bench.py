"""Benchmark infrastructure: workloads, suites, measurement harness."""

import math

import pytest

from repro.bench.workloads import (
    HEAVY,
    LIGHT,
    WEIGHTS,
    expected_total,
    generate_lines,
    hash_number_heavy,
    hash_number_light,
    word_to_number_heavy,
    word_to_number_light,
    _is_probable_prime,
)
from repro.bench.native import (
    NATIVE_VARIANTS,
    _chunks,
    native_dataparallel,
    native_mapreduce,
    native_pipeline,
    native_sequential,
)
from repro.bench.embedded import EMBEDDED_VARIANTS, EmbeddedSuite
from repro.bench.harness import Measurement, measure, run_figure6, t_critical
from repro.bench.report import check_claims, format_report


@pytest.fixture(scope="module")
def corpus():
    return generate_lines(num_lines=12, words_per_line=4)


@pytest.fixture(scope="module")
def light_expected(corpus):
    return expected_total(corpus, LIGHT)


class TestWorkloads:
    def test_corpus_deterministic(self):
        assert generate_lines(5, 3, seed=1) == generate_lines(5, 3, seed=1)
        assert generate_lines(5, 3, seed=1) != generate_lines(5, 3, seed=2)

    def test_corpus_shape(self, corpus):
        assert len(corpus) == 12
        assert all(len(line.split()) == 4 for line in corpus)

    def test_words_are_base36(self, corpus):
        for line in corpus:
            for word in line.split():
                int(word, 36)  # must not raise

    def test_light_components(self):
        assert word_to_number_light("10") == 36
        assert hash_number_light(49) == 7.0

    def test_heavy_word_is_probable_prime_scaled(self):
        value = word_to_number_heavy("zz")
        assert value > 10 ** 9  # big-int territory

    def test_heavy_hash_finite(self):
        assert math.isfinite(hash_number_heavy(word_to_number_heavy("abcd")))

    def test_miller_rabin_on_knowns(self):
        primes = [2, 3, 5, 7, 97, 104729, 2 ** 61 - 1]
        composites = [1, 4, 100, 561, 104730, 2 ** 61 - 3]
        assert all(_is_probable_prime(p) for p in primes)
        assert not any(_is_probable_prime(c) for c in composites)

    def test_weights_registry(self):
        assert set(WEIGHTS) == {"light", "heavy"}
        assert WEIGHTS["light"] is LIGHT and WEIGHTS["heavy"] is HEAVY


class TestNativeSuite:
    def test_all_variants_agree(self, corpus, light_expected):
        for name, fn in NATIVE_VARIANTS.items():
            assert fn(corpus, LIGHT) == pytest.approx(light_expected), name

    def test_heavy_agreement(self, corpus):
        expected = expected_total(corpus, HEAVY)
        assert native_sequential(corpus, HEAVY) == pytest.approx(expected)
        assert native_pipeline(corpus, HEAVY) == pytest.approx(expected)

    def test_chunking(self):
        chunks = _chunks(["a b c", "d e"], 2)
        assert chunks == [["a", "b"], ["c", "d"], ["e"]]

    def test_chunk_size_parameter(self, corpus, light_expected):
        assert native_mapreduce(corpus, LIGHT, chunk_size=5) == pytest.approx(
            light_expected
        )
        assert native_dataparallel(corpus, LIGHT, chunk_size=5) == pytest.approx(
            light_expected
        )

    def test_empty_corpus(self):
        for fn in NATIVE_VARIANTS.values():
            assert fn([], LIGHT) == 0.0


class TestEmbeddedSuite:
    def test_all_variants_agree(self, corpus, light_expected):
        suite = EmbeddedSuite(corpus, LIGHT, chunk_size=7)
        for name in EMBEDDED_VARIANTS:
            assert suite.variant(name)() == pytest.approx(light_expected), name

    def test_reconfigure_without_recompile(self, corpus):
        suite = EmbeddedSuite(corpus, LIGHT)
        light_total = suite.sequential()
        suite.configure(corpus, HEAVY)
        heavy_total = suite.sequential()
        assert heavy_total != pytest.approx(light_total)
        assert heavy_total == pytest.approx(expected_total(corpus, HEAVY))

    def test_chunk_size_affects_task_count(self, corpus, light_expected):
        small = EmbeddedSuite(corpus, LIGHT, chunk_size=2)
        assert small.mapreduce() == pytest.approx(light_expected)

    def test_variant_lookup_rejects_unknown(self, corpus):
        suite = EmbeddedSuite(corpus, LIGHT)
        with pytest.raises(KeyError):
            suite.variant("Quantum")


class TestMeasurementHarness:
    def test_measure_protocol(self):
        calls = []

        def bench():
            calls.append(1)
            return 42.0

        result = measure(bench, "demo", warmup=3, iterations=5)
        assert len(calls) == 8
        assert len(result.times) == 5
        assert result.result == 42.0
        assert result.label == "demo"

    def test_statistics(self):
        m = Measurement("x", times=[1.0, 2.0, 3.0])
        assert m.mean == 2.0
        assert m.stdev == 1.0
        assert m.ci(0.99) > 0

    def test_ci_zero_for_single_sample(self):
        assert Measurement("x", times=[1.0]).ci() == 0.0

    def test_t_critical_reasonable(self):
        assert 2.5 < t_critical(0.99, 19) < 3.5
        assert t_critical(0.95, 19) < t_critical(0.99, 19)


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure6(
            weights=("light",),
            num_lines=8,
            words_per_line=4,
            warmup=1,
            iterations=3,
            chunk_size=10,
        )

    def test_eight_bars_per_weight(self, result):
        assert len(result.rows) == 8
        suites = {(row.suite, row.variant) for row in result.rows}
        assert len(suites) == 8

    def test_normalization_baseline_is_one(self, result):
        baseline = result.row("light", "Native", "MapReduce")
        assert baseline.normalized == pytest.approx(1.0)

    def test_row_lookup(self, result):
        row = result.row("light", "Junicon", "Pipeline")
        assert row.suite == "Junicon"
        with pytest.raises(KeyError):
            result.row("light", "Junicon", "Nope")

    def test_overhead_ratios_positive(self, result):
        ratios = result.overhead_ratios("light")
        assert set(ratios) == set(EMBEDDED_VARIANTS)
        assert all(value > 0 for value in ratios.values())

    def test_ordering_is_permutation(self, result):
        assert sorted(result.ordering("light", "Junicon")) == sorted(
            EMBEDDED_VARIANTS
        )

    def test_verification_catches_wrong_totals(self, monkeypatch):
        """verify=True cross-checks every variant against the reference;
        a sabotaged variant must be caught."""
        import repro.bench.harness as harness_mod

        broken = dict(harness_mod.NATIVE_VARIANTS)
        broken["Sequential"] = lambda lines, weight: 123.456
        monkeypatch.setattr(harness_mod, "NATIVE_VARIANTS", broken)
        with pytest.raises(AssertionError, match="Sequential"):
            run_figure6(
                weights=("light",),
                num_lines=3,
                words_per_line=2,
                warmup=0,
                iterations=1,
                chunk_size=5,
            )

    def test_report_formatting(self, result):
        text = format_report(result)
        assert "Figure 6" in text
        assert "Junicon" in text and "Native" in text
        assert "C3" in text

    def test_claims_structure(self, result):
        claims = check_claims(result)
        assert any(key.startswith("C1/") for key in claims)
        assert "C3 (ordering consistent)" in claims
        for passed, detail in claims.values():
            assert isinstance(passed, bool) and isinstance(detail, str)

    def test_json_export(self, result, tmp_path):
        import json

        from repro.bench.report import write_json

        path = tmp_path / "figure6.json"
        write_json(result, str(path))
        payload = json.loads(path.read_text())
        assert len(payload["rows"]) == 8
        assert payload["protocol"]["iterations"] == 3
        assert all("normalized" in row for row in payload["rows"])
        assert payload["claims"]
