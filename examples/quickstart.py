"""Quickstart — the concurrent-generators calculus from plain Python.

Covers the paper's Figure 1 operators through the host-facing API
(`repro.coexpr`), then a taste of embedded Junicon.  Run:

    python examples/quickstart.py
"""

import math

from repro import (
    DataParallel,
    FAIL,
    activate,
    coexpr,
    future,
    pipe,
    pipeline,
    promote,
    refresh,
)
from repro.lang import JuniconInterpreter


def first_class_generators() -> None:
    print("== first-class generators (<>e, @c, !c, ^c) ==")
    # <>e — reify a generator; @ steps it explicitly.
    gen = coexpr(lambda: (n * n for n in range(1, 6)), name="squares")
    print("stepping:", activate(gen), activate(gen), activate(gen))

    # !c — promote the rest back into an ordinary stream.
    print("remaining:", list(promote(gen)))
    print("exhausted:", activate(gen) is FAIL)

    # ^c — a fresh copy from the creation environment.
    print("refreshed:", list(promote(refresh(gen))))
    print()


def pipes_and_pipelines() -> None:
    print("== pipes (|>e): the generator proxy in its own thread ==")
    # A pipe runs its expression in a worker thread; consuming it overlaps
    # with production through a blocking queue (capacity throttles).
    squares = pipe(lambda: (n * n for n in range(8)), capacity=2)
    print("piped:", list(squares))

    # Chained stages — each in its own thread (Figure 2's pipeline).
    chain = pipeline(range(10), lambda x: 3 * x + 1, math.sqrt)
    print("pipeline:", [round(v, 2) for v in chain])
    print()


def futures() -> None:
    print("== futures: the singleton pipe ==")
    answer = future(lambda: iter([6 * 7]))
    print("future value:", answer.get())
    print()


def map_reduce() -> None:
    print("== map-reduce from chunks of piped tasks (Figure 4) ==")
    dp = DataParallel(chunk_size=250)
    total = dp.reduce(
        lambda n: math.sqrt(n), range(1, 10_001), lambda a, b: a + b, 0.0
    )
    print(f"sum of sqrt(1..10000) = {total:.2f}")
    print()


def embedded_junicon() -> None:
    print("== embedded Junicon: goal-directed evaluation ==")
    interp = JuniconInterpreter()
    # Every expression is a generator; the product searches.
    print("(1 to 2) * (4 to 7)  =>", interp.results("(1 to 2) * (4 to 7)"))

    interp.load(
        """
        def isprime(n) {
            local d;
            if n < 2 then fail;
            every d := 2 to n - 1 do { if n % d == 0 then fail; };
            return n;
        }
        """
    )
    print(
        "(1 to 2) * isprime(4 to 7)  =>",
        interp.results("(1 to 2) * isprime(4 to 7)"),
    )

    # The same concurrency operators inside the language:
    print(
        "! |> isprime(2 to 20)  =>",
        interp.results("! |> isprime(2 to 20)"),
    )


if __name__ == "__main__":
    first_class_generators()
    pipes_and_pipelines()
    futures()
    map_reduce()
    embedded_junicon()
