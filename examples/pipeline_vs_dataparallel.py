"""Figure 2 — the two decompositions the calculus expresses.

*Pipeline* (fixed-code): each stage owns a thread and the entire stream;
data flows between stages through blocking queues.

*Data-parallel* (fixed-data): the stream is chunked and every thread
applies the whole function chain to its chunk.

This demo runs a two-stage hash computation both ways, checks they agree,
and prints where the time went.  Run:

    python examples/pipeline_vs_dataparallel.py
"""

import math
import time

from repro.coexpr import DataParallel, pipeline


def stage_one(word: str) -> int:
    """words -> numbers (the paper's wordToNumber)."""
    return int(word, 36)


def stage_two(number: int) -> float:
    """numbers -> hashes (the paper's hashNumber)."""
    return math.sqrt(float(number))


def make_words(count: int) -> list:
    return [format(7919 * (i + 1), "x") for i in range(count)]


def run_pipeline(words: list, capacity: int) -> float:
    """f(! |> s): stage_one in its own thread, stage_two in another."""
    chain = pipeline(words, stage_one, stage_two, capacity=capacity)
    return sum(chain)


def run_data_parallel(words: list, chunk_size: int) -> float:
    """every (c := chunk(s)) do |> f(!c): whole chain per chunk."""
    dp = DataParallel(chunk_size=chunk_size)
    return sum(dp.map_flat(lambda w: stage_two(stage_one(w)), words))


def main() -> None:
    words = make_words(20_000)
    reference = sum(stage_two(stage_one(w)) for w in words)

    print(f"{len(words)} words; reference total = {reference:.3f}\n")
    print(f"{'model':<24} {'params':<16} {'ms':>8}  total")

    for capacity in (1, 64, 0):
        start = time.perf_counter()
        total = run_pipeline(words, capacity)
        elapsed = (time.perf_counter() - start) * 1e3
        label = f"capacity={capacity or 'inf'}"
        print(f"{'pipeline':<24} {label:<16} {elapsed:>8.2f}  {total:.3f}")
        assert abs(total - reference) < 1e-6

    for chunk_size in (500, 2000, 10_000):
        start = time.perf_counter()
        total = run_data_parallel(words, chunk_size)
        elapsed = (time.perf_counter() - start) * 1e3
        label = f"chunk={chunk_size}"
        print(f"{'data-parallel':<24} {label:<16} {elapsed:>8.2f}  {total:.3f}")
        assert abs(total - reference) < 1e-6

    print(
        "\nNote: under CPython's GIL these CPU-bound stages do not gain "
        "wall-clock speedup from threads;\nthe point is the *shape* — both "
        "decompositions express the same computation through the calculus\n"
        "(see DESIGN.md, host-substitution notes)."
    )


if __name__ == "__main__":
    main()
