"""Figure 3 — embedding concurrent generators into a host class.

The paper's WordCount program: a host (Python, standing in for Java)
class whose generator methods are written in Junicon inside scoped
annotations, with an inline expression region spinning off a pipeline.
The mixed source below is transformed to pure Python by
`repro.lang.embed.transform_source` and executed.  Run:

    python examples/wordcount_embedding.py
"""

import math  # noqa: F401 - used by the embedded program after exec

from repro.lang.embed import transform_source

MIXED_SOURCE = '''
import math


class WordCount:
    """Figure 3: lines -> words -> base-36 numbers -> sqrt -> sum."""

    lines = [
        "the quick brown fox",
        "jumps over the lazy dog",
        "pack my box with five dozen jugs",
    ]

    @<script lang="junicon" context="class">
      def readLines() { suspend ! this::get_lines(); }
      def splitWords(line) { suspend ! line::split(); }
      def hashWords(line) {
        suspend this::hashNumber(this::wordToNumber(splitWords(line)));
      }
    @</script>

    def get_lines(self):
        return WordCount.lines

    def wordToNumber(self, word):
        return int(str(word), 36)

    def hashNumber(self, number):
        return math.sqrt(float(number))

    def runSequential(self):
        total = 0.0
        for i in @<script lang="junicon"> hashWords(readLines()) @</script>:
            total += i
        return total

    def runPipeline(self):
        # The |> spawns wordToNumber into its own thread; hashNumber runs
        # in this one -- the hash function split into two parallel tasks.
        total = 0.0
        for i in @<script lang="junicon"> this::hashNumber( ! (|> this::wordToNumber( splitWords(readLines()) ) ) ) @</script>:
            total += i
        return total


wc = WordCount()
sequential_total = wc.runSequential()
pipeline_total = wc.runPipeline()
reference = sum(
    math.sqrt(int(w, 36)) for line in WordCount.lines for w in line.split()
)
'''


def main() -> None:
    python_source = transform_source(MIXED_SOURCE)
    print("=== generated Python (first 25 lines) ===")
    for line in python_source.splitlines()[:25]:
        print(line)
    print("...\n")

    namespace: dict = {}
    exec(compile(python_source, "<wordcount-figure3>", "exec"), namespace)

    print("=== results ===")
    print(f"sequential total: {namespace['sequential_total']:.6f}")
    print(f"pipeline total:   {namespace['pipeline_total']:.6f}")
    print(f"pure-Python ref:  {namespace['reference']:.6f}")
    assert abs(namespace["sequential_total"] - namespace["reference"]) < 1e-9
    assert abs(namespace["pipeline_total"] - namespace["reference"]) < 1e-9
    print("all three agree ✓")


if __name__ == "__main__":
    main()
