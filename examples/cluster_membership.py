"""Live cluster membership: kill a replica, gossip in a replacement.

Three in-process :class:`~repro.net.GeneratorServer` replicas serve a
stream behind a gossip-backed, health-probed
:class:`~repro.net.ServerPool`.  Mid-stream, the replica currently
serving is shut down hard — the pool's prober declares it
``MEMBER_DOWN``, failover replays onto a survivor, and a *fresh*
replica announces itself to a surviving peer so gossip (not the
client) introduces it to the fleet.  The stream delivers the identical
sequence exactly once, with no client restart and no reconfiguration.
Run:

    python examples/cluster_membership.py
"""

import time

from repro.coexpr import PipeScheduler, source_pipe, use_scheduler
from repro.coexpr.supervision import NO_BACKOFF, supervise
from repro.monitor import Tracer
from repro.net import GeneratorServer, GossipMembers, ServerPool

TOTAL = 200


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def main() -> None:
    scheduler = PipeScheduler()
    with use_scheduler(scheduler):
        # Three replicas that know each other (the gossip fleet).
        replicas = [GeneratorServer(weight=1.0).start() for _ in range(3)]
        for server in replicas:
            for peer in replicas:
                if peer is not server:
                    server.add_peer(peer.address)
        print("fleet:", ", ".join(f"{h}:{p}" for h, p in
                                  (s.address for s in replicas)))

        # The pool seeds gossip from ONE member and probes the rest
        # into view: discovery, not configuration.
        pool = ServerPool(
            membership=GossipMembers([replicas[0].address]),
            probe_interval=0.05,
            probe_timeout=0.5,
            probe_failures=2,
            refresh_interval=0.05,
        )
        tracer = Tracer()
        try:
            with tracer.lifecycle():
                wait_until(lambda: len(pool.addresses) == 3)
                print(f"gossip discovered {len(pool.addresses)} members "
                      "from 1 seed\n")

                piped = supervise(
                    source_pipe(range(TOTAL)).coexpr,
                    backend="remote",
                    remote_address=pool,
                    capacity=4,
                    backoff=NO_BACKOFF,
                    max_retries=5,
                )
                it = piped.iterate()
                received = [next(it) for _ in range(10)]

                # Kill the replica that is actually serving the stream.
                victim_address = pool.last_address("source")
                (victim,) = [s for s in replicas
                             if s.address == victim_address]
                print(f"killing the serving replica {victim_address} ...")
                victim.kill_sessions()
                victim.shutdown(wait=False)

                # A fresh replica joins by announcing itself to a
                # survivor — the client never hears about it directly.
                survivor = next(s for s in replicas if s is not victim)
                fresh = GeneratorServer(weight=2.0).start()
                fresh.add_peer(survivor.address)
                fresh.announce()
                print(f"fresh replica {fresh.address} (weight 2.0) "
                      f"announced itself to {survivor.address}")

                wait_until(lambda: tuple(fresh.address) in pool.addresses)
                wait_until(
                    lambda: tuple(victim_address) in pool.down_addresses
                )
                print("pool converged:", pool)

                received += list(it)

            ok = received == list(range(TOTAL))
            print(f"\nstream intact: {ok}  "
                  f"({len(received)} items, exactly once, no restart)")
            stats = pool.stats()
            print(f"pool stats: failovers={stats['failovers']} "
                  f"joins={stats['joins']} downs={stats['downs']} "
                  f"weights={{{', '.join(f'{h}:{p}={w:g}' for (h, p), w in stats['weights'].items())}}}")
            membership = tracer.membership_stats().get(f"pool:{pool.name}", {})
            print(f"membership_stats: joined={membership.get('joined')} "
                  f"went_down={membership.get('went_down')} "
                  f"sources={membership.get('sources')}")
        finally:
            pool.close()
            fresh.shutdown()
            for server in replicas:
                server.shutdown()
        leaked = scheduler.leaked(join_timeout=2.0)
        print(f"leaked workers/sessions after shutdown: {leaked}")


if __name__ == "__main__":
    main()
