"""Monitoring goal-directed evaluation (the paper's §IX future work).

Because translated programs are trees of iterator nodes, monitoring is a
post-transformation pass: wrap the tree in transparent probes and watch
generation, backtracking, and failure as they happen.  Run:

    python examples/monitoring.py
"""

from repro.lang import JuniconInterpreter
from repro.monitor import Tracer


def trace_a_search() -> None:
    print("== watching a backtracking search ==")
    interp = JuniconInterpreter()
    tracer = Tracer()
    node = tracer.instrument(
        interp.expression("(a := 1 to 4) & (b := a to 4) & (a + b == 5) & [a, b]")
    )
    print("results:", list(node))

    counts = tracer.counts()
    print(
        f"events: {counts['produce']} productions, {counts['resume']} resumes "
        f"(backtracks), {counts['fail']} failures"
    )

    print("\nhot nodes (productions / resumes):")
    for label, per_kind in sorted(
        tracer.per_node().items(), key=lambda kv: -kv[1]["produce"]
    )[:5]:
        print(f"  {label:<18} {per_kind['produce']:>4} / {per_kind['resume']:>4}")


def trace_a_failure() -> None:
    print("\n== diagnosing why an expression fails ==")
    interp = JuniconInterpreter()
    tracer = Tracer()
    node = tracer.instrument(interp.expression('(x := 1 to 3) & (x > 7) & "found"'))
    print("results:", list(node), "(the search found nothing)")
    print("\nfirst 14 trace lines:")
    print(tracer.transcript(limit=14))
    print("…the comparison node fails on every resume — the culprit.")


def live_monitoring() -> None:
    print("\n== live event sink (first production wins) ==")
    interp = JuniconInterpreter()
    interp.load("def noisy(n) { suspend 1 to n; }")

    hits = []

    def sink(event) -> None:
        if event.kind == "produce" and event.depth == 0:
            hits.append(event)

    tracer = Tracer(sink=sink)
    node = tracer.instrument(interp.expression("noisy(100)"))
    stepper = iter(node)
    first = next(stepper)
    print(f"first result seen live: {first}; root productions so far: {len(hits)}")


if __name__ == "__main__":
    trace_a_search()
    trace_a_failure()
    live_monitoring()
