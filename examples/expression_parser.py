"""A backtracking recursive-descent parser written in Junicon.

String scanning plus goal-directed evaluation is Icon's signature
application: alternation *is* grammar choice, failure *is* backtracking,
and suspend *is* ambiguity.  This demo builds an arithmetic-expression
evaluator whose grammar productions are ordinary Junicon generator
procedures.  Run:

    python examples/expression_parser.py
"""

from repro.lang import JuniconInterpreter
from repro.runtime.failure import FAIL

GRAMMAR = r"""
# expr    := term (('+' | '-') term)*
# term    := factor (('*' | '/') factor)*
# factor  := number | '(' expr ')'
# Each production parses at &pos and returns its value; a production
# fails if the input doesn't match, and the scanning position backtracks
# with the surrounding expression.

def ws() { tab(many(' ')); return; }

def number() {
    local s;
    ws();
    s := tab(many(&digits)) | fail;
    return integer(s);
}

def factor() {
    local v;
    ws();
    if ="(" then {
        v := expr();
        ws();
        =")" | fail;
        return v;
    };
    return number();
}

def term() {
    local v, op, rhs;
    v := factor() | fail;
    repeat {
        ws();
        op := ="*" | ="/" | break;
        rhs := factor() | fail;
        v := if op == "*" then v * rhs else v / rhs;
    };
    return v;
}

def expr() {
    local v, op, rhs;
    v := term() | fail;
    repeat {
        ws();
        op := ="+" | ="-" | break;
        rhs := term() | fail;
        v := if op == "+" then v + rhs else v - rhs;
    };
    return v;
}

def calc(s) {
    local v;
    s ? {
        v := expr() | fail;        # a failing parse fails the whole call
        ws();
        pos(0) | fail;             # must consume the entire input
        return v;
    };
}
"""

CASES = [
    ("2 + 3 * 4", 14),
    ("(2 + 3) * 4", 20),
    ("100 / 5 / 2", 10),
    ("1 + 2 - 3 + 4", 4),
    ("((7))", 7),
    ("2 * (3 + (4 - 1))", 12),
]

BAD = ["2 +", "(1", "4 5", ""]


def main() -> None:
    interp = JuniconInterpreter()
    interp.load(GRAMMAR)

    print("== parsing and evaluating with goal-directed productions ==")
    for source, expected in CASES:
        got = interp.namespace["calc"](source).first()
        status = "ok" if got == expected else f"MISMATCH (want {expected})"
        print(f"  {source:<22} => {got!r:<6} {status}")
        assert got == expected

    print("\n== malformed input simply fails (no exceptions) ==")
    for source in BAD:
        result = interp.namespace["calc"](source).first()
        print(f"  {source!r:<10} => {'«failure»' if result is FAIL else result}")
        assert result is FAIL


if __name__ == "__main__":
    main()
