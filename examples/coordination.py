"""High-level coordination of native computations (paper §I, §IV).

The paper's motivating use: "the use of concurrent generators for
high-level coordination among larger-grained processes expressed in other
languages."  Here embedded Junicon coordinates a staged numerical
workflow whose heavy lifting is numpy (the "more efficient language"):
Junicon owns the dataflow — chunking, piping, joining — while numpy owns
the math.  Run:

    python examples/coordination.py
"""

import numpy as np

from repro.coexpr import Future, coexpr, pipe, results
from repro.lang import JuniconInterpreter

RNG = np.random.default_rng(7)


# ---------------------------------------------------------------------------
# The "larger-grained processes" — coarse native tasks.
# ---------------------------------------------------------------------------


def make_batches(count: int, size: int):
    """Produce `count` random matrices (the ingest stage)."""
    for _ in range(count):
        yield RNG.standard_normal((size, size))


def factorize(batch: np.ndarray) -> np.ndarray:
    """Heavy native stage: QR factorization, keep R's diagonal."""
    _q, r = np.linalg.qr(batch)
    return np.abs(np.diag(r))


def summarize(diag: np.ndarray) -> float:
    """Second native stage: condition-number-ish summary."""
    return float(diag.max() / diag.min())


# ---------------------------------------------------------------------------
# Junicon as the coordination language.
# ---------------------------------------------------------------------------

COORDINATOR = """
# Chain the native stages into a two-thread pipeline and keep only the
# well-conditioned batches: the whole dataflow policy in three lines.
def well_conditioned(limit) {
    suspend (s := SUMMARIZE( ! |> FACTORIZE(BATCHES()) )) & (s < limit) & s;
}
"""


def junicon_coordination() -> None:
    print("== Junicon coordinating numpy stages ==")
    interp = JuniconInterpreter()
    interp.namespace.update(
        BATCHES=lambda: make_batches(count=12, size=40),
        FACTORIZE=factorize,
        SUMMARIZE=summarize,
    )
    interp.load(COORDINATOR)
    kept = interp.results("well_conditioned(20.0)")
    print(f"  {len(kept)} of 12 batches pass the conditioning filter (limit 20)")
    for value in kept[:5]:
        print(f"    summary = {value:8.2f}")
    assert all(v < 20.0 for v in kept)


def host_futures_fanout() -> None:
    print("\n== fan-out with futures, join in order ==")
    sizes = [30, 60, 90]

    def task(size):
        def body():
            batch = RNG.standard_normal((size, size))
            yield summarize(factorize(batch))

        return Future(coexpr(body, name=f"qr-{size}"))

    futures = [task(size) for size in sizes]   # all running
    for size, future in zip(sizes, futures):
        print(f"  size {size:>3}: summary = {future.get():8.2f}")


def streamed_pipeline() -> None:
    print("\n== streaming pipe: consume while producing ==")
    stage = pipe(
        lambda: (summarize(factorize(b)) for b in make_batches(6, 50)),
        capacity=2,  # throttle the producer two batches ahead
    )
    values = list(results(stage))
    print(f"  streamed {len(values)} summaries, mean = {np.mean(values):.2f}")


if __name__ == "__main__":
    junicon_coordination()
    host_futures_fanout()
    streamed_pipeline()
