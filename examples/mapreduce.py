"""Figure 4 — map-reduce built from concurrent generators.

Runs the *actual Junicon* chunk/mapReduce of Figure 4 (via the language
pipeline) next to the host-level `repro.coexpr.DataParallel`, and shows
the data-parallel (serialized-reduction) variant from Section VII.  Run:

    python examples/mapreduce.py
"""

import math
import operator
import time

from repro.coexpr import DataParallel
from repro.lang import JuniconInterpreter

FIGURE_4 = r"""
def chunk(e) {
    local c;
    c := [];
    while put(c, @e) do {
        if *c >= CHUNK_SIZE then { suspend c; c := []; };
    };
    if *c > 0 then return c;
}

def mapReduce(f, s, r, i) {
    local c, t, tasks;
    tasks := [];
    every c := chunk(<>s()) do {
        t := |> { local x; x := i; every x := r(x, f(!c)); x };
        tasks::append(t);
    };
    suspend ! (! tasks);
}
"""


def junicon_figure4() -> None:
    print("== Figure 4 in Junicon ==")
    interp = JuniconInterpreter()
    interp.load(FIGURE_4)
    ns = interp.namespace
    ns["CHUNK_SIZE"] = 1000  # the paper's DataParallel(1000)
    ns["SOURCE"] = lambda: iter(range(1, 5001))
    ns["MAPPER"] = lambda n: math.sqrt(n)
    ns["REDUCER"] = operator.add

    interp.load(
        """
        def run() {
            local total, v;
            total := 0.0;
            every v := mapReduce(MAPPER, SOURCE, REDUCER, 0.0) do
                total +:= v;
            return total;
        }
        """
    )
    total = interp.eval("run()")
    print(f"  sum of sqrt(1..5000) via Junicon mapReduce = {total:.3f}")
    reference = sum(math.sqrt(n) for n in range(1, 5001))
    assert abs(total - reference) < 1e-6
    print(f"  reference                                  = {reference:.3f}  ✓")


def host_dataparallel() -> None:
    print("\n== the same shapes through the host API ==")
    data = range(1, 5001)
    dp = DataParallel(chunk_size=1000)

    # map-reduce: each chunk reduces locally in its own pipe
    start = time.perf_counter()
    total = dp.reduce(math.sqrt, data, operator.add, 0.0)
    mr_time = time.perf_counter() - start
    print(f"  map-reduce      total={total:.3f}  ({mr_time * 1e3:.1f} ms)")

    # data-parallel: chunks only map; the reduction is serialized here
    start = time.perf_counter()
    total_flat = sum(dp.map_flat(math.sqrt, data))
    dp_time = time.perf_counter() - start
    print(f"  data-parallel   total={total_flat:.3f}  ({dp_time * 1e3:.1f} ms)")

    assert abs(total - total_flat) < 1e-6
    print("  both variants agree ✓")

    print("\n  chunk-size sweep (map-reduce):")
    for chunk_size in (50, 250, 1000, 5000):
        sweep = DataParallel(chunk_size=chunk_size)
        start = time.perf_counter()
        sweep.reduce(math.sqrt, data, operator.add, 0.0)
        elapsed = time.perf_counter() - start
        print(f"    chunk={chunk_size:<5}  {elapsed * 1e3:7.2f} ms")


if __name__ == "__main__":
    junicon_figure4()
    host_dataparallel()
