"""Crash-isolated pipes: the process execution tier.

Thread pipes (paper §III.B) share one interpreter — a hard fault in any
worker kills everything, and CPU-bound stages serialize on the GIL.
This demo shows ``backend="process"``: a worker hard-killed mid-stream
surfacing :class:`~repro.errors.PipeWorkerLost` instead of hanging, a
supervisor respawning the child and completing the stream, graceful
degradation for bodies that cannot cross the process boundary, and
GIL-free chunked map-reduce.  Run:

    python examples/proc_pipeline.py
"""

import os
import tempfile

from repro.coexpr import (
    CoExpression,
    DataParallel,
    FaultPlan,
    Pipe,
    PipeScheduler,
    pipeline,
    source_pipe,
    stage,
    supervise,
    use_scheduler,
)
from repro.errors import PipeWorkerLost
from repro.monitor import EventKind, Tracer


# ---------------------------------------------------------------------------
# 1. A hard-killed child surfaces PipeWorkerLost — never a hang.
# ---------------------------------------------------------------------------

def demo_worker_lost() -> None:
    print("-- worker lost " + "-" * 42)

    def victim():
        yield 1
        yield 2
        os._exit(173)  # no flush, no error envelope, no finally

    pipe = Pipe(
        CoExpression(victim, name="victim"),
        backend="process",
        heartbeat_interval=0.05,
    ).start()
    delivered = []
    try:
        for value in pipe.iterate():
            delivered.append(value)
    except PipeWorkerLost as error:
        # Data already shipped arrives before the loss is reported.
        print(f"   delivered first : {delivered}")
        print(f"   then            : {error}")
        print(f"   exit code       : {error.exitcode}")


# ---------------------------------------------------------------------------
# 2. Under supervision a lost worker is retryable: respawn + replay.
# ---------------------------------------------------------------------------

def demo_supervised_respawn(state_dir: str) -> None:
    print("-- supervised respawn " + "-" * 35)
    # kill_stage hard-kills the *child process* on attempt 1 after three
    # items; the file-backed state_dir counter survives the fork, so the
    # respawned child knows it is attempt 2 and runs clean.
    plan = FaultPlan(state_dir=state_dir)
    plan.kill_stage("chaos", on_attempts=(1,), after_items=3)

    def body():
        ctx = plan.enter("chaos")
        for i in range(6):
            ctx.on_item(i)
            yield i

    supervised = supervise(
        body,
        max_retries=2,
        backend="process",
        heartbeat_interval=0.05,
        restart="replay",
    )
    print(f"   results  : {list(supervised.iterate())}")
    print(f"   failures : {supervised.failures} (one chaos kill, absorbed)")


# ---------------------------------------------------------------------------
# 3. Degradation: bodies that cannot cross the process boundary.
# ---------------------------------------------------------------------------

def demo_degradation() -> None:
    print("-- graceful degradation " + "-" * 33)
    tracer = Tracer()
    with tracer.lifecycle():
        # The source is self-contained: it isolates.  The stage is fed
        # by an in-parent pipe: it falls back to a thread (the feeding
        # thread would not survive into a child).
        src = source_pipe(range(5), backend="process")
        doubled = stage(lambda x: x * 2, src, backend="process").start()
        results = list(doubled.iterate())
    print(f"   results        : {results}")
    print(f"   stage degraded : {doubled.degraded!r}")
    spawned = [e for e in tracer.events if e.kind == EventKind.SPAWN]
    print(f"   children spawned: {len(spawned)} (the source only)")


# ---------------------------------------------------------------------------
# 4. Chunked map-reduce: the GIL-free shape.
# ---------------------------------------------------------------------------

def demo_map_reduce() -> None:
    print("-- process map-reduce " + "-" * 35)

    def weigh(n):
        total = 0
        for k in range(200):
            total += (n * k) % 7
        return total

    source = list(range(400))
    threaded = DataParallel(chunk_size=100).reduce(
        weigh, source, lambda a, b: a + b, 0
    )
    isolated = DataParallel(chunk_size=100, backend="process").reduce(
        weigh, source, lambda a, b: a + b, 0
    )
    print(f"   thread backend  : {threaded}")
    print(f"   process backend : {isolated} (identical, crash-isolated)")


def main() -> None:
    scheduler = PipeScheduler()
    with use_scheduler(scheduler):
        demo_worker_lost()
        with tempfile.TemporaryDirectory() as state_dir:
            demo_supervised_respawn(state_dir)
        demo_degradation()
        demo_map_reduce()
        # Whole-pipeline form: the source isolates, stages degrade.
        chain = pipeline(range(8), lambda x: x + 1, backend="process")
        assert list(chain.start().iterate()) == list(range(1, 9))
    scheduler.shutdown()
    assert scheduler.leaked() == [], "no thread or child process survives"
    print("-- clean shutdown: zero leaked threads, zero leaked children")


if __name__ == "__main__":
    main()
