"""Goal-directed search — backtracking as the evaluation strategy.

The substrate the concurrency model rides on: every expression is a
generator, products search their cross-space, and failure drives
backtracking.  Three classic searches plus string scanning.  Run:

    python examples/goal_directed_search.py
"""

from repro.lang import JuniconInterpreter


def pythagorean_triples(interp: JuniconInterpreter) -> None:
    print("== Pythagorean triples by pure search ==")
    triples = interp.results(
        "(a := 1 to 20) & (b := a to 20) & (c := b to 28) &"
        " (a * a + b * b == c * c) & [a, b, c]"
    )
    for a, b, c in triples:
        print(f"  {a}^2 + {b}^2 = {c}^2")


def n_queens(interp: JuniconInterpreter, n: int = 6) -> None:
    print(f"\n== {n}-queens via suspend-driven backtracking ==")
    interp.load(
        """
        def queens_ok(placed, col, row) {
            local i;
            every i := 1 to *placed do {
                if placed[i] == row then fail;
                if placed[i] - row == i - col then fail;
                if row - placed[i] == i - col then fail;
            };
            return row;
        }

        def solve(n) {
            local placed;
            placed := [];
            suspend place_next(placed, 1, n);
        }

        def place_next(placed, col, n) {
            local row;
            if col > n then return copy(placed);
            every row := 1 to n do {
                if queens_ok(placed, col, row) then {
                    put(placed, row);
                    suspend place_next(placed, col + 1, n);
                    pull(placed);
                };
            };
        }
        """
    )
    solutions = interp.results(f"solve({n}) \\ 4")
    print(f"  first {len(solutions)} solutions (rows per column):")
    for solution in solutions:
        print("   ", solution)
    total = len(interp.results(f"solve({n})"))
    print(f"  total solutions for n={n}: {total}")
    assert total == {4: 2, 5: 10, 6: 4, 7: 40, 8: 92}[n]


def word_frequency(interp: JuniconInterpreter) -> None:
    print("\n== word frequency via string scanning ==")
    interp.load(
        r"""
        def words(s) {
            s ? while tab(upto(&letters)) do
                suspend map(tab(many(&letters))) \ 1;
        }

        def frequencies(lines) {
            local t, line, w;
            t := table(0);
            every line := !lines do
                every w := words(line) do t[w] +:= 1;
            return t;
        }
        """
    )
    lines = [
        "The quick brown fox jumps over the lazy dog",
        "The dog barks and the fox runs",
    ]
    interp.namespace["LINES"] = lines
    table = interp.eval("frequencies(LINES)")
    top = sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    for word, count in top:
        print(f"  {word:<6} {count}")
    assert table["the"] == 4 and table["fox"] == 2


if __name__ == "__main__":
    session = JuniconInterpreter()
    pythagorean_triples(session)
    n_queens(session)
    word_frequency(session)
