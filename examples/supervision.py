"""Fault tolerance for pipelines: deadlines, retries, leak-free shutdown.

Pipes (paper §III.B) are long-lived worker threads; this demo shows the
supervised runtime around them: a flaky stage retried with exponential
backoff, a stalled stage caught by a deadline, cancellation propagating
through a whole chain, and the scheduler proving no thread leaked.  Run:

    python examples/supervision.py
"""

import threading
import time

from repro.coexpr import (
    BackoffPolicy,
    FaultPlan,
    PipeScheduler,
    pipeline,
    supervise,
    supervised_pipeline,
    use_scheduler,
)
from repro.errors import PipeTimeoutError, RetryExhaustedError
from repro.monitor import EventKind, Tracer
from repro.runtime.failure import FAIL


# ---------------------------------------------------------------------------
# 1. A flaky middle stage, retried in place.
# ---------------------------------------------------------------------------

def demo_retry(scheduler: PipeScheduler) -> None:
    print("-- retry/backoff " + "-" * 40)
    # Deterministic failure: stage 1 crashes at body start on its first
    # two attempts, then behaves.  The injected sleep records the backoff
    # schedule instead of actually sleeping.
    plan = FaultPlan().fail_stage(1, on_attempts=(1, 2), error=ValueError)
    slept: list[float] = []

    tracer = Tracer()
    with tracer.lifecycle():
        chain = supervised_pipeline(
            range(8),
            lambda x: x * x,           # stage 1: flaky per the plan
            lambda x: f"sq={x}",       # stage 2: clean
            max_retries=3,
            backoff=BackoffPolicy(initial=0.05, multiplier=2.0, max_delay=1.0),
            sleep=slept.append,
            fault_plan=plan,
        )
        print("results:   ", list(chain))
    print("attempts:  ", plan.attempts(1), "(two crashes absorbed)")
    print("backoffs:  ", slept)
    retries = [e for e in tracer.events if e.kind == EventKind.RETRY]
    for event in retries:
        print("observed:  ", event)


# ---------------------------------------------------------------------------
# 2. A permanent failure exhausts its budget.
# ---------------------------------------------------------------------------

def demo_exhaust(scheduler: PipeScheduler) -> None:
    print("-- retry exhaustion " + "-" * 37)

    def always_dies():
        raise OSError("backend unreachable")
        yield

    sp = supervise(always_dies, max_retries=2, sleep=lambda d: None)
    try:
        sp.take()
    except RetryExhaustedError as error:
        print("gave up:   ", error)
        print("caused by: ", repr(error.__cause__))


# ---------------------------------------------------------------------------
# 3. Deadlines: a stalled stage surfaces within the timeout.
# ---------------------------------------------------------------------------

def demo_deadline(scheduler: PipeScheduler) -> None:
    print("-- deadlines " + "-" * 44)
    release = threading.Event()

    def stalls(x):
        if x == 3:
            release.wait(60)  # simulates a hung backend call
        return x

    chain = pipeline(range(10), stalls, take_timeout=0.25)
    got = []
    start = time.monotonic()
    try:
        while True:
            value = chain.take()
            if value is FAIL:
                break
            got.append(value)
    except PipeTimeoutError as error:
        elapsed = time.monotonic() - start
        print(f"timed out after {elapsed:.2f}s: {error}")
    print("delivered before the stall:", got)
    release.set()                       # let the worker finish cooperatively
    chain.cancel(join=True, timeout=2)  # tear down the whole chain


# ---------------------------------------------------------------------------
# 4. Leak-checked shutdown.
# ---------------------------------------------------------------------------

def demo_shutdown(scheduler: PipeScheduler) -> None:
    print("-- leak-checked shutdown " + "-" * 32)
    # Abandon a throttled pipeline mid-stream: its producers are blocked
    # on full channels.  cancel() propagates upstream; shutdown joins.
    chain = pipeline(range(1_000_000), lambda x: x + 1, capacity=2)
    print("first:     ", chain.take())
    chain.cancel(join=True, timeout=2)
    scheduler.shutdown(wait=True, timeout=2)
    print("leaked:    ", scheduler.leaked())


def main() -> None:
    with use_scheduler(PipeScheduler()) as scheduler:
        demo_retry(scheduler)
        demo_exhaust(scheduler)
        demo_deadline(scheduler)
        demo_shutdown(scheduler)


if __name__ == "__main__":
    main()
