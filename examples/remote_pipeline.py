"""Remote pipes: the network execution tier.

A :class:`~repro.net.GeneratorServer` hosts pipeline factories behind a
TCP listener; ``backend="remote"`` ships a pipe body to it and streams
the results back over the same envelope protocol the process tier
speaks — framed over the socket, flow-controlled by credit.  This demo
shows transparent remote pipelines, server-side named factories via
:class:`~repro.net.RemotePipe`, a mid-stream session kill healed by
supervision (reconnect + replay), graceful degradation for bodies that
cannot cross the wire, and the session accounting that guarantees a
clean shutdown.  Run:

    python examples/remote_pipeline.py
"""

import time

from repro.coexpr import (
    PipeScheduler,
    pipeline,
    source_pipe,
    stage,
    use_scheduler,
)
from repro.coexpr.supervision import NO_BACKOFF, supervised_pipeline
from repro.monitor import Tracer
from repro.net import GeneratorServer, RemotePipe


# Remote bodies cross the wire by pickle, which serializes functions by
# qualified name — so every stage function is module-level.

def tokenize(line):
    yield from line.split()


def emphasize(word):
    return word.upper()


def slow_square(x):
    time.sleep(0.002)
    return x * x


def fibonacci(n):
    a, b = 0, 1
    for _ in range(n):
        yield a
        a, b = b, a + b


# ---------------------------------------------------------------------------
# 1. A transparent remote pipeline: same results, different machine.
# ---------------------------------------------------------------------------

def demo_transparent_pipeline(server) -> None:
    print("-- transparent remote pipeline " + "-" * 26)

    lines = ["concurrent generators", "embed everywhere"]
    local = list(pipeline(lines, tokenize, emphasize).iterate())
    remote = list(
        pipeline(
            lines,
            tokenize,
            emphasize,
            backend="remote",
            remote_address=server.address,
        ).iterate()
    )
    print(f"   remote == local: {remote == local}  ({remote})")


# ---------------------------------------------------------------------------
# 2. Named factories: stream a body that only exists server-side.
# ---------------------------------------------------------------------------

def demo_named_factory(server) -> None:
    print("-- named factory (RemotePipe) " + "-" * 27)

    # junicon-serve publishes factories the same way:
    #   junicon-serve --port 9090 --serve fib=examples.remote_pipeline:fibonacci
    server.register("fib", fibonacci)
    events = RemotePipe(server.address, "fib", args=(10,))
    print(f"   fib stream: {list(events.iterate())}")


# ---------------------------------------------------------------------------
# 3. A killed session is retryable: supervision reconnects and replays.
# ---------------------------------------------------------------------------

def demo_kill_and_recover(server) -> None:
    print("-- session kill + reconnect/replay " + "-" * 22)

    tracer = Tracer()
    with tracer.lifecycle():
        piped = supervised_pipeline(
            range(30),
            slow_square,
            backend="remote",
            remote_address=server.address,
            capacity=4,
            backoff=NO_BACKOFF,
            max_retries=3,
        )
        it = piped.iterate()
        head = [next(it) for _ in range(5)]
        killed = server.kill_sessions()          # chaos: cut every session
        results = head + list(it)                # supervision heals the cut

    expected = [x * x for x in range(30)]
    print(f"   killed {killed} session(s); sequence intact: {results == expected}")
    print(f"   retries consumed: {piped.failures}")
    for node, stats in tracer.net_stats().items():
        print(
            f"   {node}: connects={stats['connects']} "
            f"sessions={stats['sessions']} losses={stats['losses']} "
            f"reasons={stats['reasons']}"
        )


# ---------------------------------------------------------------------------
# 4. Graceful degradation: what cannot cross the wire runs on a thread.
# ---------------------------------------------------------------------------

def demo_degradation(server) -> None:
    print("-- graceful degradation " + "-" * 33)

    secret = object()                     # closes over live parent state
    piped = stage(
        lambda x: (x, id(secret)),
        range(3),
        backend="remote",
        remote_address=server.address,
    ).start()
    values = [v for v, _ in piped.iterate()]
    print(f"   results (thread fallback): {values}")
    print(f"   degraded because: {piped.degraded}")


def main() -> None:
    scheduler = PipeScheduler()
    with use_scheduler(scheduler):
        with GeneratorServer() as server:
            print(f"generator server on {server.address}\n")
            demo_transparent_pipeline(server)
            demo_named_factory(server)
            demo_kill_and_recover(server)
            demo_degradation(server)
            print(f"\nserver stats: {server.stats}")
        leaked = scheduler.leaked(join_timeout=2.0)
        print(f"leaked workers/sessions after shutdown: {leaked}")


if __name__ == "__main__":
    main()
