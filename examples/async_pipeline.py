"""Async pipes and the event-loop server: the fourth execution tier.

``backend="async"`` runs a pipe's producer as a coroutine on one shared
event loop instead of a dedicated thread — the consuming side is
unchanged.  :class:`~repro.net.AsyncGeneratorServer` applies the same
substrate swap to the network tier: one loop multiplexes every session,
speaking the identical wire protocol, so the *sync* client stack drives
it untouched.  This demo shows the backend swap, native ``async for``
consumption via :class:`~repro.coexpr.AsyncPipe`, the cooperative
degradation rule for channel-fed stages, many concurrent sessions
pinned open against one loop thread, and the clean-shutdown accounting
shared by all four tiers.  Run:

    python examples/async_pipeline.py
"""

import asyncio

from repro.coexpr import (
    AsyncPipe,
    PipeScheduler,
    pipeline,
    source_pipe,
    use_scheduler,
)
from repro.monitor import EventKind, Tracer
from repro.net import AsyncGeneratorServer, RemotePipe


def fibonacci(n):
    a, b = 0, 1
    for _ in range(n):
        yield a
        a, b = b, a + b


def counting(n):
    yield from range(n)


# ---------------------------------------------------------------------------
# 1. The backend swap: same pipe API, producer on the event loop.
# ---------------------------------------------------------------------------

def demo_backend_swap() -> None:
    print("-- backend='async': coroutine producer, sync consumer " + "-" * 6)

    threaded = list(source_pipe(lambda: fibonacci(10)).iterate())
    looped = list(
        source_pipe(lambda: fibonacci(10), backend="async").iterate()
    )
    print(f"   async == thread: {looped == threaded}  ({looped})")


# ---------------------------------------------------------------------------
# 2. Natively async consumption: the pipe surface inside a running loop.
# ---------------------------------------------------------------------------

def demo_async_for() -> None:
    print("-- AsyncPipe: async for over a co-expression " + "-" * 15)

    async def consume():
        piped = AsyncPipe(lambda: fibonacci(8), capacity=4)
        return [value async for value in piped]

    print(f"   async for: {asyncio.run(consume())}")


# ---------------------------------------------------------------------------
# 3. The cooperative caveat: channel-fed stages degrade to threads.
# ---------------------------------------------------------------------------

def demo_cooperative_degradation() -> None:
    print("-- cooperative caveat: channel-fed stage degrades " + "-" * 10)

    tracer = Tracer()
    with tracer.lifecycle():
        piped = pipeline(
            lambda: counting(8), lambda x: x * x, backend="async"
        )
        results = list(piped.iterate())
    degraded = [e for e in tracer.events if e.kind == EventKind.DEGRADED]
    print(f"   results: {results}")
    print(f"   stage degraded because: {piped.degraded}")
    print(f"   DEGRADED events: {len(degraded)} "
          f"(the source still ran on the loop)")


# ---------------------------------------------------------------------------
# 4. The event-loop server: many sessions, one thread, the sync client.
# ---------------------------------------------------------------------------

def demo_event_loop_server(server) -> None:
    print("-- AsyncGeneratorServer: 25 sessions on one loop " + "-" * 11)

    # capacity=1 credit-pins every stream open after the first take:
    # all 25 sessions are live on the loop *simultaneously*.
    pipes = [
        RemotePipe(server.address, "counting", args=(20,), capacity=1)
        for _ in range(25)
    ]
    for pipe in pipes:
        assert pipe.take() == 0
    print(f"   sessions at peak: {server.stats['active']}")
    exact = all(
        [pipe.take() for _ in range(19)] == list(range(1, 20))
        for pipe in pipes
    )
    print(f"   all 25 streams exact: {exact}")


def main() -> None:
    scheduler = PipeScheduler()
    with use_scheduler(scheduler):
        demo_backend_swap()
        demo_async_for()
        demo_cooperative_degradation()
        server = AsyncGeneratorServer(scheduler=scheduler)
        server.register("counting", counting)
        with server:
            print(f"\nevent-loop server on {server.address}\n")
            demo_event_loop_server(server)
            print(f"\nserver stats: {server.stats}")
        leaked = scheduler.leaked(join_timeout=2.0)
        print(f"leaked workers/sessions after shutdown: {leaked}")


if __name__ == "__main__":
    main()
