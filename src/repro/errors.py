"""Exception hierarchy for the concurrent-generators reproduction.

Icon distinguishes *failure* (an expression produces no result — an ordinary,
expected outcome that drives control flow) from *runtime errors* (type
mismatches, bad subscripts — exceptional outcomes).  Failure is represented
by the :data:`repro.runtime.failure.FAIL` sentinel and by generator
exhaustion, never by exceptions.  The exceptions below model Icon's runtime
errors plus the errors specific to the embedding pipeline.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Runtime (goal-directed evaluation) errors — Icon "error nnn" analogues.
# ---------------------------------------------------------------------------

class IconError(ReproError):
    """Base class for goal-directed runtime errors (Icon ``error nnn``)."""

    #: Icon error number, when there is a classic equivalent (0 = none).
    number: int = 0


class IconTypeError(IconError, TypeError):
    """Operand has a type the operation cannot coerce (Icon errors 101-124)."""

    number = 102


class IconValueError(IconError, ValueError):
    """Operand has the right type but an invalid value (e.g. ``by 0``)."""

    number = 211


class IconIndexError(IconError, IndexError):
    """Subscript out of range (Icon error 205 is 'value out of range')."""

    number = 205


class IconNotAFunctionError(IconError, TypeError):
    """Invocation of a value that is not callable (Icon error 106)."""

    number = 106


class IconNotAssignableError(IconError, TypeError):
    """Assignment target did not evaluate to a variable (Icon error 111)."""

    number = 111


# ---------------------------------------------------------------------------
# Concurrency errors.
# ---------------------------------------------------------------------------

class ConcurrencyError(ReproError):
    """Base class for co-expression / pipe / channel errors."""


class ChannelClosedError(ConcurrencyError):
    """``put`` on a channel that has been closed."""


class PipeError(ConcurrencyError):
    """A pipe's worker thread failed in a way that cannot be replayed."""


class PipeTimeoutError(ConcurrencyError, TimeoutError):
    """A blocking channel/pipe operation exceeded its deadline.

    Subclasses :class:`TimeoutError` so callers that guard with the
    stdlib type keep working; the deadline is monotonic, so the total
    wait never exceeds the requested timeout even across spurious
    condition wakeups.
    """


class PipeDeadlineExceeded(PipeTimeoutError):
    """A pipe's end-to-end deadline budget ran out.

    Distinct from a plain :class:`PipeTimeoutError` (one ``take`` waited
    too long; the stream may still be healthy): a deadline is a budget
    for the *whole* stream, threaded through every tier — when it
    expires the producer is actively stopped (thread flagged, child
    terminated, remote session cancelled), not merely abandoned.

    Subclasses :class:`PipeTimeoutError` so supervision's
    never-retry-a-timeout rule applies automatically: a stream past its
    budget must not be replayed, because the replay is *also* past
    budget.  :attr:`where` records which side noticed first —
    ``"start"`` (short-circuited before spawn), ``"take"`` (consumer),
    or ``"producer"`` (the worker/child/session's own check).
    """

    def __init__(self, message: str, where: str = "") -> None:
        super().__init__(message)
        self.where = where


class PipeWorkerLost(PipeError):
    """A process-backed pipe worker died without reporting a result.

    Raised at the consumer when the heartbeat watchdog detects a hard
    fault in the child — a native crash, an OOM kill, ``os._exit``, or a
    hang that outlives the heartbeat deadline.  Unlike an ordinary
    producer exception this error was never *thrown* by the body; it is
    synthesized by the monitor from the exit-code sentinel or the missed
    beats.  :attr:`exitcode` is the child's exit code when it is known
    (None for a hung-but-alive worker).

    Supervision treats a lost worker as a retryable fault: under
    :func:`~repro.coexpr.supervision.supervise` the process is respawned
    and the stream replayed/resumed per the restart mode.
    """

    def __init__(self, message: str, exitcode: int | None = None) -> None:
        super().__init__(message)
        self.exitcode = exitcode


class PipeConnectionLost(PipeError):
    """A remote pipe's server session died without closing the stream.

    The network-tier sibling of :class:`PipeWorkerLost`: raised at the
    consumer when the client-side watchdog detects a dead session — an
    EOF or reset before the close envelope, or beats missed past the
    heartbeat deadline.  Like a lost process worker it was never thrown
    by the body; it is synthesized by the monitor.  :attr:`address` is
    the server the connection pointed at and :attr:`reason` the
    watchdog's verdict.

    Supervision treats a lost connection as a retryable fault: under
    :func:`~repro.coexpr.supervision.supervise` the client reconnects
    and the stream is replayed/resumed per the restart mode, honoring
    the backoff policy.
    """

    def __init__(
        self, message: str, address: object = None, reason: str = ""
    ) -> None:
        super().__init__(message)
        self.address = address
        self.reason = reason


class PipeServerBusy(PipeConnectionLost):
    """A generator server shed the connection instead of serving it.

    Raised at the consumer when the server answered the dial with a
    ``WIRE_BUSY`` envelope (admission control: the server is at
    ``max_sessions``) and closed.  :attr:`retry_after` is the server's
    hint, in seconds, for when capacity may free up — the client-side
    circuit breaker uses it as the open-state cooldown.

    Subclasses :class:`PipeConnectionLost`, so supervision treats a shed
    dial as a retryable fault; consecutive sheds trip the breaker, after
    which ``backend="remote"`` degrades to the thread tier instead of
    hammering an overloaded server.
    """

    def __init__(
        self,
        message: str,
        address: object = None,
        retry_after: float = 0.0,
    ) -> None:
        super().__init__(message, address=address, reason="server at capacity")
        self.retry_after = retry_after


class InjectedDisconnect(PipeError):
    """A :class:`~repro.coexpr.supervision.FaultPlan` ``drop_connection``
    rule fired in a client pump.

    Never seen by consumers: the pump converts it into an ordinary
    :class:`PipeConnectionLost` (reason ``"injected connection drop"``),
    so everything downstream — supervision retries, pool failover, the
    circuit breaker — exercises exactly the path a real torn connection
    takes, just at a deterministic point in the stream.
    """


class RetryExhaustedError(PipeError):
    """A supervised pipe used up its restart budget.

    ``__cause__`` is the last producer error; :attr:`attempts` counts
    how many runs were made (initial run + retries).
    """

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class SchedulerShutdownError(ConcurrencyError, RuntimeError):
    """``submit`` on a :class:`PipeScheduler` that has been shut down."""


class InactiveCoExpressionError(ConcurrencyError):
    """Activation of a co-expression that cannot be resumed."""


# ---------------------------------------------------------------------------
# Language front-end errors.
# ---------------------------------------------------------------------------

class LanguageError(ReproError):
    """Base class for lexer / parser / transformer errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class LexError(LanguageError):
    """Invalid token in Junicon source."""


class ParseError(LanguageError):
    """Junicon source does not match the grammar."""


class TransformError(LanguageError):
    """AST cannot be normalized or translated."""


class AnnotationError(LanguageError):
    """Malformed scoped annotation (``@<tag ...>`` ... ``@</tag>``)."""


class InterpreterError(ReproError):
    """Error raised by the tree-walking interpreter or the harness."""
