"""repro — concurrent generators for Python.

A production-grade reproduction of Mills & Jeffery, *Embedding Concurrent
Generators* (IPDPS HIPS 2016): goal-directed evaluation with pervasive
generators, a calculus of explicit concurrency (co-expressions and
multithreaded generator proxies — *pipes*), higher-order abstractions such
as map-reduce built from them, and a mixed-language embedding pipeline
(scoped annotations, normalization by generator flattening, transformation
to host Python, and an interactive interpreter).

Three entry levels:

* **Calculus in plain Python** — ``repro.coexpr``: :func:`pipe`,
  :func:`coexpr`, :func:`activate`, :func:`promote`, :class:`DataParallel`,
  :func:`pipeline` …
* **Goal-directed runtime** — ``repro.runtime``: the suspendable,
  failure-driven iterator kernel and Icon's operator/builtin semantics.
* **Embedded Junicon** — ``repro.lang`` / ``repro.harness``: compile or
  interpret Junicon source, embed it in Python modules with
  ``@<script lang="junicon"> … @</script>`` scoped annotations.
"""

from .errors import (
    AnnotationError,
    ChannelClosedError,
    ConcurrencyError,
    IconError,
    InterpreterError,
    LanguageError,
    LexError,
    ParseError,
    PipeError,
    ReproError,
    TransformError,
)
from .runtime import FAIL, IconIterator, icon_function
from .coexpr import (
    Channel,
    CoExpression,
    DataParallel,
    Future,
    MVar,
    Pipe,
    PipeScheduler,
    activate,
    coexpr,
    first_class,
    future,
    map_reduce,
    pipe,
    pipeline,
    promote,
    refresh,
    results,
    stage,
    use_scheduler,
)

__version__ = "1.0.0"

__all__ = [
    "AnnotationError",
    "Channel",
    "ChannelClosedError",
    "CoExpression",
    "ConcurrencyError",
    "DataParallel",
    "FAIL",
    "Future",
    "IconError",
    "IconIterator",
    "InterpreterError",
    "LanguageError",
    "LexError",
    "MVar",
    "ParseError",
    "Pipe",
    "PipeError",
    "PipeScheduler",
    "ReproError",
    "TransformError",
    "activate",
    "coexpr",
    "first_class",
    "future",
    "icon_function",
    "map_reduce",
    "pipe",
    "pipeline",
    "promote",
    "refresh",
    "results",
    "stage",
    "use_scheduler",
    "__version__",
]


def __getattr__(name: str):
    # Lazy imports for the heavier language/harness layers so that using
    # just the calculus doesn't pay their import cost.
    if name in ("compile_junicon", "transform_source", "JuniconInterpreter"):
        from . import lang

        return getattr(lang, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
