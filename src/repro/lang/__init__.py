"""The Junicon language front-end: lexer, parser, normalization,
transformation to Python, scoped annotations, and mixed-language embedding.

Common entry points::

    from repro.lang import compile_junicon, transform_source, JuniconInterpreter

    ns = compile_junicon('''
        def evens(n) { suspend (0 to n by 2); }
    ''')
    assert list(ns["evens"](10)) == [0, 2, 4, 6, 8, 10]

    interp = JuniconInterpreter()
    assert interp.results("(1 to 2) * (4 to 5)") == [4, 5, 8, 10]
"""

from __future__ import annotations

from typing import Any, Dict

from .lexer import Lexer, tokenize
from .parser import Parser, parse, parse_expression
from .normalize import BoundIn, TempRef, normalize_expr, normalize_method
from .transform import transform_expression, transform_program
from .interp import JuniconInterpreter, is_complete
from .annotations import ScopedAnnotation, find_annotations, parse_annotation_tag
from .embed import transform_source, extract_regions
from .loader import install as install_import_hook, load_file, uninstall as uninstall_import_hook


def compile_junicon(source: str, namespace: Dict[str, Any] | None = None) -> dict:
    """Compile a Junicon translation unit and execute it; returns the
    resulting namespace (methods, classes, records, globals)."""
    interpreter = JuniconInterpreter(namespace)
    return interpreter.load(source)


__all__ = [
    "BoundIn",
    "JuniconInterpreter",
    "Lexer",
    "Parser",
    "ScopedAnnotation",
    "TempRef",
    "compile_junicon",
    "extract_regions",
    "install_import_hook",
    "find_annotations",
    "is_complete",
    "load_file",
    "normalize_expr",
    "normalize_method",
    "parse",
    "parse_annotation_tag",
    "parse_expression",
    "tokenize",
    "transform_expression",
    "transform_program",
    "transform_source",
    "uninstall_import_hook",
]
