"""AST node definitions for the Junicon dialect.

Plain dataclasses; the parser produces these, the normalizer rewrites
primaries over them, and the transformer emits host Python from them.
Every node carries a source line for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass
class Node:
    line: int = 0

    def children(self) -> tuple:
        return ()


# -- atoms --------------------------------------------------------------------


@dataclass
class Literal(Node):
    """Integer, real, string, or cset literal (value already converted)."""

    value: Any = None


@dataclass
class NullLit(Node):
    """``&null``."""


@dataclass
class Name(Node):
    """An identifier reference."""

    id: str = ""


@dataclass
class Keyword(Node):
    """An ``&keyword`` reference."""

    name: str = ""


@dataclass
class ListLit(Node):
    """``[e1, e2, ...]``."""

    items: List[Node] = field(default_factory=list)

    def children(self) -> tuple:
        return tuple(self.items)


@dataclass
class NativeCode(Node):
    """An embedded host-language region inside Junicon.

    Evaluated natively and lifted "into a singleton iterator over its
    closure" (paper Section IV).
    """

    code: str = ""


# -- operators ------------------------------------------------------------------


@dataclass
class Unary(Node):
    """Prefix operator application (``-e``, ``*e``, ``/e``, ``!e``, …)."""

    op: str = ""
    operand: Node = None  # type: ignore[assignment]

    def children(self) -> tuple:
        return (self.operand,)


@dataclass
class Binary(Node):
    """Binary operator application (``+``, ``&``, ``|``, ``\\``, …)."""

    op: str = ""
    left: Node = None  # type: ignore[assignment]
    right: Node = None  # type: ignore[assignment]

    def children(self) -> tuple:
        return (self.left, self.right)


@dataclass
class Assign(Node):
    """Assignment family: ``=``/``:=``, augmented ``op:=``, reversible
    ``<-``, swaps ``:=:`` and ``<->``."""

    op: str = ":="
    target: Node = None  # type: ignore[assignment]
    value: Node = None  # type: ignore[assignment]

    def children(self) -> tuple:
        return (self.target, self.value)


@dataclass
class ToBy(Node):
    """``e1 to e2 [by e3]``."""

    start: Node = None  # type: ignore[assignment]
    stop: Node = None  # type: ignore[assignment]
    step: Optional[Node] = None

    def children(self) -> tuple:
        return (self.start, self.stop) + ((self.step,) if self.step else ())


@dataclass
class Scan(Node):
    """``e1 ? e2`` — string scanning."""

    subject: Node = None  # type: ignore[assignment]
    body: Node = None  # type: ignore[assignment]

    def children(self) -> tuple:
        return (self.subject, self.body)


@dataclass
class Activate(Node):
    """``@c`` or ``v @ c`` — co-expression activation."""

    target: Node = None  # type: ignore[assignment]
    transmit: Optional[Node] = None

    def children(self) -> tuple:
        return ((self.transmit,) if self.transmit else ()) + (self.target,)


@dataclass
class FirstClass(Node):
    """``<>e`` — lift to a first-class generator."""

    expr: Node = None  # type: ignore[assignment]

    def children(self) -> tuple:
        return (self.expr,)


@dataclass
class CoExprLit(Node):
    """``|<>e`` — co-expression with shadowed locals."""

    expr: Node = None  # type: ignore[assignment]

    def children(self) -> tuple:
        return (self.expr,)


@dataclass
class PipeLit(Node):
    """``|>e`` — multithreaded generator proxy."""

    expr: Node = None  # type: ignore[assignment]

    def children(self) -> tuple:
        return (self.expr,)


# -- primaries ------------------------------------------------------------------


@dataclass
class Invoke(Node):
    """``f(e1, ..., en)`` — goal-directed invocation."""

    callee: Node = None  # type: ignore[assignment]
    args: List[Node] = field(default_factory=list)

    def children(self) -> tuple:
        return (self.callee, *self.args)


@dataclass
class NativeInvoke(Node):
    """``o::m(e1, ..., en)`` — native host-method invocation."""

    subject: Node = None  # type: ignore[assignment]
    name: str = ""
    args: List[Node] = field(default_factory=list)

    def children(self) -> tuple:
        return (self.subject, *self.args)


@dataclass
class Field(Node):
    """``o.name``."""

    subject: Node = None  # type: ignore[assignment]
    name: str = ""

    def children(self) -> tuple:
        return (self.subject,)


@dataclass
class Index(Node):
    """``o[e]`` (one subscript per node; ``o[i, j]`` nests)."""

    subject: Node = None  # type: ignore[assignment]
    index: Node = None  # type: ignore[assignment]

    def children(self) -> tuple:
        return (self.subject, self.index)


@dataclass
class Section(Node):
    """``o[i:j]``, ``o[i+:n]``, ``o[i-:n]``."""

    subject: Node = None  # type: ignore[assignment]
    low: Node = None  # type: ignore[assignment]
    high: Node = None  # type: ignore[assignment]
    mode: str = ":"

    def children(self) -> tuple:
        return (self.subject, self.low, self.high)


# -- control constructs ------------------------------------------------------------


@dataclass
class Block(Node):
    """``{ s1; s2; ... }`` — a sequence of bounded statements."""

    body: List[Node] = field(default_factory=list)

    def children(self) -> tuple:
        return tuple(self.body)


@dataclass
class If(Node):
    cond: Node = None  # type: ignore[assignment]
    then: Node = None  # type: ignore[assignment]
    orelse: Optional[Node] = None

    def children(self) -> tuple:
        return (self.cond, self.then) + ((self.orelse,) if self.orelse else ())


@dataclass
class While(Node):
    cond: Node = None  # type: ignore[assignment]
    body: Optional[Node] = None

    def children(self) -> tuple:
        return (self.cond,) + ((self.body,) if self.body else ())


@dataclass
class Until(Node):
    cond: Node = None  # type: ignore[assignment]
    body: Optional[Node] = None

    def children(self) -> tuple:
        return (self.cond,) + ((self.body,) if self.body else ())


@dataclass
class Every(Node):
    gen: Node = None  # type: ignore[assignment]
    body: Optional[Node] = None

    def children(self) -> tuple:
        return (self.gen,) + ((self.body,) if self.body else ())


@dataclass
class RepeatLoop(Node):
    body: Node = None  # type: ignore[assignment]

    def children(self) -> tuple:
        return (self.body,)


@dataclass
class Case(Node):
    subject: Node = None  # type: ignore[assignment]
    branches: List[Tuple[Node, Node]] = field(default_factory=list)
    default: Optional[Node] = None

    def children(self) -> tuple:
        flat: list = [self.subject]
        for selector, body in self.branches:
            flat.extend((selector, body))
        if self.default is not None:
            flat.append(self.default)
        return tuple(flat)


@dataclass
class Suspend(Node):
    expr: Optional[Node] = None
    do_clause: Optional[Node] = None

    def children(self) -> tuple:
        parts = () if self.expr is None else (self.expr,)
        return parts + ((self.do_clause,) if self.do_clause else ())


@dataclass
class Return(Node):
    expr: Optional[Node] = None

    def children(self) -> tuple:
        return () if self.expr is None else (self.expr,)


@dataclass
class Fail(Node):
    pass


@dataclass
class Break(Node):
    expr: Optional[Node] = None

    def children(self) -> tuple:
        return () if self.expr is None else (self.expr,)


@dataclass
class NextStmt(Node):
    pass


# -- declarations ------------------------------------------------------------------


@dataclass
class InitialClause(Node):
    """``initial e`` — evaluated on the first invocation of the enclosing
    procedure only (Icon's once-per-program initialization)."""

    expr: Node = None  # type: ignore[assignment]

    def children(self) -> tuple:
        return (self.expr,)


@dataclass
class VarDecl(Node):
    """``local a, b = e;`` / ``var c;`` / ``static s;`` — declarations.

    ``kind`` is "local" (local/var) or "static" (per-procedure storage
    persisting across invocations, Icon's static declaration).
    """

    names: List[str] = field(default_factory=list)
    inits: List[Optional[Node]] = field(default_factory=list)
    kind: str = "local"

    def children(self) -> tuple:
        return tuple(init for init in self.inits if init is not None)


@dataclass
class GlobalDecl(Node):
    names: List[str] = field(default_factory=list)


@dataclass
class MethodDecl(Node):
    """``def name(p1, p2) { body }`` (also ``method``/``procedure``)."""

    name: str = ""
    params: List[str] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]

    def children(self) -> tuple:
        return (self.body,)


@dataclass
class ClassDecl(Node):
    """``class Name { fields; methods }`` (superclasses host extension)."""

    name: str = ""
    supers: List[str] = field(default_factory=list)
    fields: List[VarDecl] = field(default_factory=list)
    methods: List[MethodDecl] = field(default_factory=list)

    def children(self) -> tuple:
        return tuple(self.fields) + tuple(self.methods)


@dataclass
class RecordDecl(Node):
    """``record name(f1, f2)``."""

    name: str = ""
    fields: List[str] = field(default_factory=list)


@dataclass
class Program(Node):
    """A whole translation unit: declarations and top-level statements."""

    body: List[Node] = field(default_factory=list)

    def children(self) -> tuple:
        return tuple(self.body)


def walk(node: Node):
    """Yield *node* and all descendants, preorder."""
    yield node
    for child in node.children():
        if isinstance(child, Node):
            yield from walk(child)
