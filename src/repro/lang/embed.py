"""Mixed-language embedding — transform a host file with scoped
annotations into pure host Python (paper Sections IV–VI).

Each ``@<script lang="junicon"> … @</script>`` region is transformed and
injected into the surrounding context, innermost outwards:

* a **statement-level** region (the markers occupy whole lines) becomes
  translated Python statements, re-indented to the region's indentation;
  with ``context="class"`` the region's methods become host methods
  (``self``-taking), which is how Figure 3 embeds ``splitWords`` et al.
  inside a class;
* an **expression-level** region (inline in a host expression) becomes a
  single Python expression — Figure 3's ``for (Object i : @<script…>…)``;
* a ``lang="python"`` region nested *inside* Junicon is lifted into a
  singleton iterator over its closure; outside Junicon it is passed
  through untouched (native evaluation).

The runtime prelude import is injected once near the top of the output.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from ..errors import AnnotationError
from .annotations import ScopedAnnotation, find_annotations
from . import ast_nodes as ast
from .normalize import count_temps, normalize_expr
from .parser import parse
from .transform import (
    CodeWriter,
    ExpressionCompiler,
    Scope,
    emit_class,
    emit_method,
    emit_record,
    transform_expression,
)

JUNICON_LANGS = {"junicon", "unicon", "icon"}
HOST_LANGS = {"python", "py", "java", "groovy", "native"}

PRELUDE_IMPORT = (
    "from repro.lang.prelude import *  # injected by repro.lang.embed\n"
    "_ns = globals()\n"
    "_method_cache = MethodBodyCache()\n"
)


def extract_regions(source: str) -> List[ScopedAnnotation]:
    """All top-level script annotations in *source*."""
    return [a for a in find_annotations(source) if a.tag == "script"]


def _collect_native_blocks(
    annotation: ScopedAnnotation, source: str, blocks: Dict[str, str]
) -> str:
    """Replace nested host-language regions with NUL placeholders.

    Returns the Junicon body text with each nested ``lang="python"``
    region replaced by ``\\x00key\\x00`` so the lexer turns it into a
    NATIVE token carrying the original code.
    """
    body = source[annotation.body_start: annotation.body_end]
    offset = annotation.body_start
    pieces: List[str] = []
    cursor = annotation.body_start
    for child in annotation.children:
        if child.tag != "script":
            continue
        lang = child.lang or "python"
        if lang in JUNICON_LANGS:
            # Nested Junicon inside Junicon: markers are redundant; keep
            # the body text.
            pieces.append(source[cursor: child.start])
            pieces.append(child.body(source))
            cursor = child.end
            continue
        key = f"nb{len(blocks)}"
        blocks[key] = child.body(source)
        pieces.append(source[cursor: child.start])
        pieces.append(f"\x00{key}\x00")
        cursor = child.end
    pieces.append(source[cursor: annotation.body_end])
    del body, offset
    return "".join(pieces)


def _region_is_statement_level(source: str, annotation: ScopedAnnotation) -> bool:
    """True when the annotation's markers sit on their own lines."""
    line_start = source.rfind("\n", 0, annotation.start) + 1
    before = source[line_start: annotation.start]
    line_end = source.find("\n", annotation.end)
    if line_end < 0:
        line_end = len(source)
    after = source[annotation.end: line_end]
    return before.strip() == "" and after.strip() == ""


def _indent_of(source: str, position: int) -> str:
    line_start = source.rfind("\n", 0, position) + 1
    indent = []
    for char in source[line_start:]:
        if char in " \t":
            indent.append(char)
        else:
            break
    return "".join(indent)


def _emit_statement_region(
    body: str,
    native_blocks: Dict[str, str],
    context: str,
    optimize: bool = False,
) -> str:
    """Translate a statement-level Junicon region to Python statements."""
    from .optimize import emit_method_optimized

    program = parse(body, native_blocks)
    writer = CodeWriter()
    in_class = context == "class"
    statement_counter = 0
    region_globals = {
        name
        for node in program.body
        if isinstance(node, ast.GlobalDecl)
        for name in node.names
    }
    for node in program.body:
        if isinstance(node, ast.ClassDecl):
            emit_class(writer, node, module_globals=region_globals)
        elif isinstance(node, ast.RecordDecl):
            emit_record(writer, node)
        elif isinstance(node, ast.MethodDecl):
            # The optimizing target covers plain procedures only; class
            # regions need self-dynamic resolution, so they stay
            # interpreted.
            if not (
                optimize
                and not in_class
                and emit_method_optimized(
                    writer, node, module_globals=region_globals
                )
            ):
                emit_method(
                    writer, node, fields=set(), in_class=in_class,
                    dynamic_self=in_class, module_globals=region_globals,
                )
        elif isinstance(node, ast.GlobalDecl):
            for name in node.names:
                writer.emit(f"_ns.setdefault({name!r}, None)")
        elif isinstance(node, ast.NativeCode):
            for line in node.code.strip("\n").splitlines():
                writer.emit(line.rstrip())
        else:
            scope = Scope(has_self=in_class, dynamic_self=in_class)
            normalized = normalize_expr(node)
            temps = count_temps(normalized)
            compiler = ExpressionCompiler(scope)
            expr = compiler.c(normalized)
            binders = ", ".join(
                [f"_t{i}=IconTmp()" for i in range(temps)]
                + [
                    f"_g_{g}=GlobalRef(_ns, {g!r})"
                    for g in sorted(compiler.globals_used)
                ]
            )
            call = f"(lambda {binders}: {expr})()" if binders else f"({expr})"
            writer.emit(f"_jstmt_{statement_counter} = {call}.first()")
            statement_counter += 1
    return writer.text()


def transform_source(
    source: str, inject_prelude: bool = True, optimize="auto"
) -> str:
    """Transform a mixed-language host file into pure Python source.

    ``optimize`` picks the compile target for procedure declarations in
    statement-level Junicon regions (see :mod:`repro.lang.optimize`);
    ``"auto"`` follows the ``REPRO_OPTIMIZE`` environment variable.
    """
    from .optimize import resolve_optimize

    optimizing = resolve_optimize(optimize)
    annotations = extract_regions(source)
    if not annotations:
        return source
    pieces: List[str] = []
    cursor = 0
    for annotation in annotations:
        lang = annotation.lang or "python"
        statement_level = _region_is_statement_level(source, annotation)
        if statement_level:
            # Replace the whole marker lines, preserving the indentation.
            replace_start = source.rfind("\n", 0, annotation.start) + 1
            replace_end = source.find("\n", annotation.end)
            replace_end = len(source) if replace_end < 0 else replace_end + 1
        else:
            replace_start, replace_end = annotation.start, annotation.end
        pieces.append(source[cursor:replace_start])
        if lang in HOST_LANGS:
            # Native region outside Junicon: exempt from transformation.
            pieces.append(annotation.body(source))
        elif lang in JUNICON_LANGS:
            native_blocks: Dict[str, str] = {}
            body = _collect_native_blocks(annotation, source, native_blocks)
            if statement_level:
                indent = _indent_of(source, annotation.start)
                code = _emit_statement_region(
                    body,
                    native_blocks,
                    annotation.attrs.get("context", ""),
                    optimize=optimizing,
                )
                indented = "\n".join(
                    (indent + line) if line.strip() else ""
                    for line in code.splitlines()
                )
                pieces.append(indented + "\n")
            else:
                pieces.append(transform_expression(body, native_blocks))
        else:
            raise AnnotationError(
                f"unknown script language {lang!r}"
            )
        cursor = replace_end
    pieces.append(source[cursor:])
    output = "".join(pieces)
    if inject_prelude:
        output = _inject_prelude(output)
    return output


def _inject_prelude(source: str) -> str:
    """Insert the runtime prelude after any shebang/encoding/docstring."""
    lines = source.splitlines(keepends=True)
    index = 0
    # shebang and encoding comments
    while index < len(lines) and lines[index].startswith(("#!", "# -*-", "#")):
        index += 1
    # module docstring (single leading string literal)
    if index < len(lines) and lines[index].lstrip().startswith(('"""', "'''", '"', "'")):
        quote = lines[index].lstrip()[0] * (
            3 if lines[index].lstrip()[:3] in ('"""', "'''") else 1
        )
        stripped = lines[index].lstrip()
        if stripped.count(quote) >= 2 and len(stripped) > len(quote):
            index += 1
        else:
            index += 1
            while index < len(lines) and quote not in lines[index]:
                index += 1
            index += 1
    # __future__ imports must stay first
    while index < len(lines) and lines[index].startswith("from __future__"):
        index += 1
    return "".join(lines[:index]) + PRELUDE_IMPORT + "".join(lines[index:])


def transform_file(path: str, inject_prelude: bool = True, optimize="auto") -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return transform_source(handle.read(), inject_prelude, optimize=optimize)


def main(argv: List[str] | None = None) -> int:
    """CLI: ``junicon-translate FILE [-o OUT]`` — the paper's translator
    mode ("a tool that can emit its output for compilation")."""
    parser = argparse.ArgumentParser(
        prog="junicon-translate",
        description="Translate a mixed Python/Junicon source file to Python.",
    )
    parser.add_argument("file", help="input file with scoped annotations")
    parser.add_argument("-o", "--output", help="output file (default: stdout)")
    parser.add_argument(
        "--no-prelude",
        action="store_true",
        help="do not inject the runtime prelude import",
    )
    parser.add_argument(
        "--optimize",
        choices=("auto", "on", "off"),
        default="auto",
        help="compile target for procedures: emit native Python generators "
        "(on), interpreted iterator trees (off), or follow the "
        "REPRO_OPTIMIZE environment variable (auto, the default)",
    )
    args = parser.parse_args(argv)
    optimize = {"auto": "auto", "on": True, "off": False}[args.optimize]
    code = transform_file(
        args.file, inject_prelude=not args.no_prelude, optimize=optimize
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(code)
    else:
        sys.stdout.write(code)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
