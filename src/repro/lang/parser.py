"""Parser for the Junicon dialect — a hand-written LL/Pratt parser
(standing in for the paper's "Javacc LL(k) parser for Unicon").

Expression precedence, low to high (Icon's table, adjusted for the
dialect's ``=``-as-assignment):

======  =====================================================
1       ``&`` (conjunction / iterator product)
2       ``?`` (string scanning)
3       ``=  :=  <-  :=:  <->  op:=`` (assignment; right-assoc)
4       ``to … by``
5       ``|`` (alternation)
6       ``<  <=  >  >=  ~=  <<  <<=  >>  >>=  ==  ~==  ===  ~===``
7       ``||  |||``
8       ``+  -  ++  --``
9       ``*  /  %  **``
10      ``^`` (right-assoc)
11      ``\\`` (limitation), ``@`` (binary activation)
12      prefix operators (``! @ ^ * + - ~ / \\ ? = . <> |<> |> |`` and
        ``not``)
13      primaries and postfix (call, ``.f``, ``[i]``, ``[i:j]``, ``::m``)
======  =====================================================

Control constructs (``if``/``while``/``every``/…) are expressions and are
accepted wherever an expression may start.  Parenthesized lists
``(e1, e2, …)`` are Icon *mutual evaluation* — the product of all
expressions yielding the last one's results.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from . import ast_nodes as ast
from .lexer import tokenize
from .tokens import (
    CSET,
    EOF,
    IDENT,
    INTEGER,
    KEYWORD,
    NATIVE,
    OP,
    REAL,
    RESERVED,
    STRING,
    Token,
)

_ASSIGN_OPS = {"=", ":=", "<-", ":=:", "<->"}
_RELATIONAL = {
    "<", "<=", ">", ">=", "~=",
    "<<", "<<=", ">>", ">>=",
    "==", "~==", "===", "~===",
}
_ADDITIVE = {"+", "-", "++", "--"}
_MULTIPLICATIVE = {"*", "/", "%", "**"}
_PREFIX_OPS = {
    "!", "@", "^", "*", "+", "-", "~", "/", "\\", "?", "=", ".",
    "<>", "|<>", "|>", "|",
}


class Parser:
    """Token-stream parser producing :mod:`repro.lang.ast_nodes` trees."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token plumbing --------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not EOF:
            self.index += 1
        return token

    def expect_op(self, symbol: str) -> Token:
        if not self.current.is_op(symbol):
            raise ParseError(
                f"expected {symbol!r}, found {self.current.value!r}",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def expect_reserved(self, word: str) -> Token:
        if not self.current.is_reserved(word):
            raise ParseError(
                f"expected {word!r}, found {self.current.value!r}",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.kind is not IDENT:
            raise ParseError(
                f"expected an identifier, found {self.current.value!r}",
                self.current.line,
                self.current.column,
            )
        return self.advance().value

    def _skip_semis(self) -> None:
        while self.current.is_op(";"):
            self.advance()

    # -- program / declarations -------------------------------------------------

    def parse_program(self) -> ast.Program:
        body: List[ast.Node] = []
        self._skip_semis()
        while self.current.kind is not EOF:
            body.append(self.parse_declaration_or_statement())
            self._skip_semis()
        return ast.Program(line=1, body=body)

    def parse_declaration_or_statement(self) -> ast.Node:
        token = self.current
        if token.is_reserved("class"):
            return self.parse_class()
        if token.is_reserved("record"):
            return self.parse_record()
        if token.is_reserved("def", "method", "procedure"):
            return self.parse_method()
        if token.is_reserved("global"):
            return self.parse_global()
        return self.parse_statement()

    def parse_global(self) -> ast.GlobalDecl:
        token = self.expect_reserved("global")
        names = [self.expect_ident()]
        while self.current.is_op(","):
            self.advance()
            names.append(self.expect_ident())
        return ast.GlobalDecl(line=token.line, names=names)

    def parse_record(self) -> ast.RecordDecl:
        token = self.expect_reserved("record")
        name = self.expect_ident()
        self.expect_op("(")
        fields: List[str] = []
        if not self.current.is_op(")"):
            fields.append(self.expect_ident())
            while self.current.is_op(","):
                self.advance()
                fields.append(self.expect_ident())
        self.expect_op(")")
        return ast.RecordDecl(line=token.line, name=name, fields=fields)

    def parse_class(self) -> ast.ClassDecl:
        token = self.expect_reserved("class")
        name = self.expect_ident()
        supers: List[str] = []
        fields: List[ast.VarDecl] = []
        methods: List[ast.MethodDecl] = []
        if self.current.is_op(":"):
            self.advance()
            supers.append(self.expect_ident())
            while self.current.is_op(","):
                self.advance()
                supers.append(self.expect_ident())
        if self.current.is_op("("):
            # Unicon-style constructor field list: class C(f1, f2) { ... }
            self.advance()
            names: List[str] = []
            if not self.current.is_op(")"):
                names.append(self.expect_ident())
                while self.current.is_op(","):
                    self.advance()
                    names.append(self.expect_ident())
            self.expect_op(")")
            if names:
                fields.append(
                    ast.VarDecl(
                        line=token.line, names=names, inits=[None] * len(names)
                    )
                )
        self.expect_op("{")
        self._skip_semis()
        while not self.current.is_op("}"):
            if self.current.is_reserved("def", "method", "procedure"):
                methods.append(self.parse_method())
            elif self.current.is_reserved("local", "var", "static"):
                fields.append(self.parse_var_decl())
            elif self.current.kind is NATIVE:
                # Host code at class level is kept as a method-like native
                # block; the transformer splices it verbatim.
                native = self.advance()
                methods.append(
                    ast.MethodDecl(
                        line=native.line,
                        name=f"__native_{len(methods)}",
                        params=[],
                        body=ast.Block(
                            line=native.line,
                            body=[ast.NativeCode(line=native.line, code=native.value)],
                        ),
                    )
                )
            else:
                raise ParseError(
                    f"unexpected {self.current.value!r} in class body",
                    self.current.line,
                    self.current.column,
                )
            self._skip_semis()
        self.expect_op("}")
        return ast.ClassDecl(
            line=token.line, name=name, supers=supers, fields=fields, methods=methods
        )

    def parse_method(self) -> ast.MethodDecl:
        token = self.advance()  # def / method / procedure
        name = self.expect_ident()
        self.expect_op("(")
        params: List[str] = []
        if not self.current.is_op(")"):
            params.append(self.expect_ident())
            while self.current.is_op(","):
                self.advance()
                params.append(self.expect_ident())
        self.expect_op(")")
        if self.current.is_op("{"):
            body = self.parse_block()
        else:
            # Classic Icon/Unicon form: statements until `end`.
            self._skip_semis()
            statements: List[ast.Node] = []
            while not self.current.is_reserved("end"):
                if self.current.kind is EOF:
                    raise ParseError(
                        f"missing 'end' for procedure {name}", token.line, token.column
                    )
                statements.append(self.parse_statement())
                self._skip_semis()
            self.expect_reserved("end")
            body = ast.Block(line=token.line, body=statements)
        return ast.MethodDecl(line=token.line, name=name, params=params, body=body)

    def parse_var_decl(self) -> ast.VarDecl:
        token = self.advance()  # local / var / static
        names: List[str] = []
        inits: List[Optional[ast.Node]] = []
        while True:
            names.append(self.expect_ident())
            if self.current.is_op("=", ":="):
                self.advance()
                inits.append(self.parse_expression())
            else:
                inits.append(None)
            if self.current.is_op(","):
                self.advance()
                continue
            break
        kind = "static" if token.value == "static" else "local"
        return ast.VarDecl(line=token.line, names=names, inits=inits, kind=kind)

    # -- statements ---------------------------------------------------------------

    def parse_statement(self) -> ast.Node:
        if self.current.is_reserved("local", "var", "static"):
            return self.parse_var_decl()
        if self.current.is_reserved("global"):
            return self.parse_global()
        if self.current.is_reserved("initial"):
            token = self.advance()
            return ast.InitialClause(line=token.line, expr=self.parse_expression())
        expr = self.parse_expression()
        return expr

    def parse_block(self) -> ast.Block:
        token = self.expect_op("{")
        statements: List[ast.Node] = []
        self._skip_semis()
        while not self.current.is_op("}"):
            if self.current.kind is EOF:
                raise ParseError("unterminated block", token.line, token.column)
            statements.append(self.parse_statement())
            self._skip_semis()
        self.expect_op("}")
        return ast.Block(line=token.line, body=statements)

    # -- expressions ----------------------------------------------------------------

    def parse_expression(self) -> ast.Node:
        return self.parse_conjunction()

    def parse_conjunction(self) -> ast.Node:
        node = self.parse_scan()
        while self.current.is_op("&"):
            token = self.advance()
            right = self.parse_scan()
            node = ast.Binary(line=token.line, op="&", left=node, right=right)
        return node

    def parse_scan(self) -> ast.Node:
        node = self.parse_assignment()
        while self.current.is_op("?"):
            token = self.advance()
            right = self.parse_assignment()
            node = ast.Scan(line=token.line, subject=node, body=right)
        return node

    def parse_assignment(self) -> ast.Node:
        node = self.parse_alternation()
        token = self.current
        if token.kind is OP and (
            token.value in _ASSIGN_OPS or token.value.endswith(":=")
        ):
            self.advance()
            value = self.parse_assignment()  # right-associative
            return ast.Assign(line=token.line, op=token.value, target=node, value=value)
        return node

    def parse_alternation(self) -> ast.Node:
        node = self.parse_to_by()
        while self.current.is_op("|"):
            token = self.advance()
            right = self.parse_to_by()
            node = ast.Binary(line=token.line, op="|", left=node, right=right)
        return node

    def parse_to_by(self) -> ast.Node:
        # Tighter than alternation so `1 to 3 | 7 to 9` reads as the
        # union of two ranges — the pervasive generator idiom.
        node = self.parse_relational()
        if self.current.is_reserved("to"):
            token = self.advance()
            stop = self.parse_relational()
            step: Optional[ast.Node] = None
            if self.current.is_reserved("by"):
                self.advance()
                step = self.parse_relational()
            return ast.ToBy(line=token.line, start=node, stop=stop, step=step)
        return node

    def parse_relational(self) -> ast.Node:
        node = self.parse_concat()
        while self.current.kind is OP and self.current.value in _RELATIONAL:
            token = self.advance()
            right = self.parse_concat()
            node = ast.Binary(line=token.line, op=token.value, left=node, right=right)
        return node

    def parse_concat(self) -> ast.Node:
        node = self.parse_additive()
        while self.current.is_op("||", "|||"):
            token = self.advance()
            right = self.parse_additive()
            node = ast.Binary(line=token.line, op=token.value, left=node, right=right)
        return node

    def parse_additive(self) -> ast.Node:
        node = self.parse_multiplicative()
        while self.current.kind is OP and self.current.value in _ADDITIVE:
            token = self.advance()
            right = self.parse_multiplicative()
            node = ast.Binary(line=token.line, op=token.value, left=node, right=right)
        return node

    def parse_multiplicative(self) -> ast.Node:
        node = self.parse_power()
        while self.current.kind is OP and self.current.value in _MULTIPLICATIVE:
            token = self.advance()
            right = self.parse_power()
            node = ast.Binary(line=token.line, op=token.value, left=node, right=right)
        return node

    def parse_power(self) -> ast.Node:
        node = self.parse_limit()
        if self.current.is_op("^"):
            token = self.advance()
            right = self.parse_power()  # right-associative
            return ast.Binary(line=token.line, op="^", left=node, right=right)
        return node

    def parse_limit(self) -> ast.Node:
        node = self.parse_prefix()
        while self.current.is_op("\\", "@"):
            token = self.advance()
            right = self.parse_prefix()
            if token.value == "@":
                # v @ c — transmit v into co-expression c.
                node = ast.Activate(line=token.line, target=right, transmit=node)
            else:
                node = ast.Binary(line=token.line, op="\\", left=node, right=right)
        return node

    def parse_prefix(self) -> ast.Node:
        token = self.current
        if token.is_reserved("not"):
            self.advance()
            operand = self.parse_prefix()
            return ast.Unary(line=token.line, op="not", operand=operand)
        if token.kind is OP and token.value in _PREFIX_OPS:
            self.advance()
            operand = self.parse_prefix()
            if token.value == "<>":
                return ast.FirstClass(line=token.line, expr=operand)
            if token.value == "|<>":
                return ast.CoExprLit(line=token.line, expr=operand)
            if token.value == "|>":
                return ast.PipeLit(line=token.line, expr=operand)
            if token.value == "@":
                return ast.Activate(line=token.line, target=operand)
            return ast.Unary(line=token.line, op=token.value, operand=operand)
        return self.parse_postfix()

    # -- primaries and postfix ----------------------------------------------------

    def parse_postfix(self) -> ast.Node:
        node = self.parse_primary()
        while True:
            token = self.current
            if token.is_op("("):
                self.advance()
                args: List[ast.Node] = []
                if not self.current.is_op(")"):
                    args.append(self.parse_expression())
                    while self.current.is_op(","):
                        self.advance()
                        args.append(self.parse_expression())
                self.expect_op(")")
                node = ast.Invoke(line=token.line, callee=node, args=args)
                continue
            if token.is_op("."):
                # Distinguish field access from a dangling prefix dot.
                if self.peek(0).kind is OP and self.peek().kind is IDENT:
                    self.advance()
                    name = self.expect_ident()
                    node = ast.Field(line=token.line, subject=node, name=name)
                    continue
                break
            if token.is_op("::"):
                self.advance()
                name = self.expect_ident()
                args = []
                if self.current.is_op("("):
                    self.advance()
                    if not self.current.is_op(")"):
                        args.append(self.parse_expression())
                        while self.current.is_op(","):
                            self.advance()
                            args.append(self.parse_expression())
                    self.expect_op(")")
                node = ast.NativeInvoke(
                    line=token.line, subject=node, name=name, args=args
                )
                continue
            if token.is_op("["):
                self.advance()
                node = self._parse_subscript(node, token)
                continue
            break
        return node

    def _parse_subscript(self, subject: ast.Node, open_token: Token) -> ast.Node:
        first = self.parse_expression()
        if self.current.is_op(":", "+:", "-:"):
            mode = self.advance().value
            high = self.parse_expression()
            self.expect_op("]")
            return ast.Section(
                line=open_token.line, subject=subject, low=first, high=high, mode=mode
            )
        node = ast.Index(line=open_token.line, subject=subject, index=first)
        while self.current.is_op(","):
            self.advance()
            node = ast.Index(
                line=open_token.line, subject=node, index=self.parse_expression()
            )
        self.expect_op("]")
        return node

    def parse_primary(self) -> ast.Node:
        token = self.current
        if token.kind in (INTEGER, REAL, STRING, CSET):
            self.advance()
            return ast.Literal(line=token.line, value=token.value)
        if token.kind is KEYWORD:
            self.advance()
            if token.value == "null":
                return ast.NullLit(line=token.line)
            # NOTE: &fail (the empty generator) stays a Keyword — it is not
            # the `fail` statement, which signals procedure failure.
            return ast.Keyword(line=token.line, name=token.value)
        if token.kind is NATIVE:
            self.advance()
            return ast.NativeCode(line=token.line, code=token.value)
        if token.kind is IDENT:
            self.advance()
            return ast.Name(line=token.line, id=token.value)
        if token.is_op("("):
            self.advance()
            exprs = [self.parse_expression()]
            while self.current.is_op(","):
                self.advance()
                exprs.append(self.parse_expression())
            self.expect_op(")")
            if len(exprs) == 1:
                return exprs[0]
            # Mutual evaluation (e1, ..., en): the product yielding en.
            node = exprs[0]
            for right in exprs[1:]:
                node = ast.Binary(line=token.line, op="&", left=node, right=right)
            return node
        if token.is_op("["):
            self.advance()
            items: List[ast.Node] = []
            if not self.current.is_op("]"):
                items.append(self.parse_expression())
                while self.current.is_op(","):
                    self.advance()
                    items.append(self.parse_expression())
            self.expect_op("]")
            return ast.ListLit(line=token.line, items=items)
        if token.is_op("{"):
            return self.parse_block()
        if token.kind is RESERVED:
            return self.parse_control(token)
        raise ParseError(
            f"unexpected token {token.value!r}", token.line, token.column
        )

    # -- control constructs -----------------------------------------------------

    def parse_control(self, token: Token) -> ast.Node:
        word = token.value
        if word == "if":
            self.advance()
            cond = self.parse_expression()
            self.expect_reserved("then")
            then = self.parse_expression()
            orelse: Optional[ast.Node] = None
            if self.current.is_reserved("else"):
                self.advance()
                orelse = self.parse_expression()
            return ast.If(line=token.line, cond=cond, then=then, orelse=orelse)
        if word == "while":
            self.advance()
            cond = self.parse_expression()
            body = self._optional_do_body()
            return ast.While(line=token.line, cond=cond, body=body)
        if word == "until":
            self.advance()
            cond = self.parse_expression()
            body = self._optional_do_body()
            return ast.Until(line=token.line, cond=cond, body=body)
        if word == "every":
            self.advance()
            gen = self.parse_expression()
            body = self._optional_do_body()
            return ast.Every(line=token.line, gen=gen, body=body)
        if word == "repeat":
            self.advance()
            body = self.parse_expression()
            return ast.RepeatLoop(line=token.line, body=body)
        if word == "case":
            return self.parse_case()
        if word == "suspend":
            self.advance()
            expr: Optional[ast.Node] = None
            if not self._at_statement_end():
                expr = self.parse_expression()
            do_clause: Optional[ast.Node] = None
            if self.current.is_reserved("do"):
                self.advance()
                do_clause = self.parse_expression()
            return ast.Suspend(line=token.line, expr=expr, do_clause=do_clause)
        if word == "return":
            self.advance()
            expr = None
            if not self._at_statement_end():
                expr = self.parse_expression()
            return ast.Return(line=token.line, expr=expr)
        if word == "fail":
            self.advance()
            return ast.Fail(line=token.line)
        if word == "break":
            self.advance()
            expr = None
            if not self._at_statement_end():
                expr = self.parse_expression()
            return ast.Break(line=token.line, expr=expr)
        if word == "next":
            self.advance()
            return ast.NextStmt(line=token.line)
        raise ParseError(f"unexpected keyword {word!r}", token.line, token.column)

    def _optional_do_body(self) -> Optional[ast.Node]:
        if self.current.is_reserved("do"):
            self.advance()
            return self.parse_expression()
        if self.current.is_op("{"):
            return self.parse_block()
        return None

    def _at_statement_end(self) -> bool:
        token = self.current
        return (
            token.kind is EOF
            or token.is_op(";", "}", ")", "]", ",")
            or token.is_reserved("do", "else", "end")
        )

    def parse_case(self) -> ast.Case:
        token = self.expect_reserved("case")
        subject = self.parse_expression()
        self.expect_reserved("of")
        self.expect_op("{")
        branches: List[tuple] = []
        default: Optional[ast.Node] = None
        self._skip_semis()
        while not self.current.is_op("}"):
            if self.current.is_reserved("default"):
                self.advance()
                self.expect_op(":")
                default = self.parse_expression()
            else:
                selector = self.parse_expression()
                self.expect_op(":")
                body = self.parse_expression()
                branches.append((selector, body))
            self._skip_semis()
        self.expect_op("}")
        return ast.Case(
            line=token.line, subject=subject, branches=branches, default=default
        )


def parse(source: str, native_blocks=None) -> ast.Program:
    """Parse a Junicon translation unit."""
    return Parser(tokenize(source, native_blocks)).parse_program()


def parse_expression(source: str, native_blocks=None) -> ast.Node:
    """Parse a single Junicon expression (errors on trailing input)."""
    parser = Parser(tokenize(source, native_blocks))
    node = parser.parse_expression()
    parser._skip_semis()
    if parser.current.kind is not EOF:
        raise ParseError(
            f"trailing input {parser.current.value!r}",
            parser.current.line,
            parser.current.column,
        )
    return node
