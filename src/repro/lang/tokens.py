"""Token definitions for the Junicon dialect (paper Figures 3–5).

The dialect is Unicon with a brace-based surface ("def f(x) { ... }"), the
concurrency operators of Figure 1 (``<>``, ``|<>``, ``|>``, ``@``, ``!``,
``^``), ``::`` for native (host) invocation, and — following the paper's
Junicon figures — ``=`` as assignment (``:=`` also accepted) with ``==``
as general equality.

Operator tokens are matched longest-first; augmented assignment forms
(``+:=``, ``||:=``, …) are generated from the binary operator set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

# Token kinds.
IDENT = "IDENT"
INTEGER = "INTEGER"
REAL = "REAL"
STRING = "STRING"
CSET = "CSET"
KEYWORD = "KEYWORD"          # &name
RESERVED = "RESERVED"        # language keywords (if, while, def, ...)
OP = "OP"
NEWLINE = "NEWLINE"
EOF = "EOF"
NATIVE = "NATIVE"            # an embedded host-code region (value = code)

RESERVED_WORDS = frozenset(
    {
        "break",
        "by",
        "case",
        "class",
        "def",
        "default",
        "do",
        "else",
        "end",
        "every",
        "fail",
        "global",
        "if",
        "initial",
        "local",
        "method",
        "next",
        "not",
        "of",
        "procedure",
        "record",
        "repeat",
        "return",
        "static",
        "suspend",
        "then",
        "to",
        "until",
        "var",
        "while",
    }
)

#: Binary operators that admit an augmented-assignment form ``op:=``.
AUGMENTABLE = (
    "|||", "||", "++", "--", "**",
    "<<=", ">>=", "<<", ">>", "<=", ">=", "<", ">",
    "~===", "===", "~==", "==", "~=",
    "+", "-", "*", "/", "%", "^", "&", "?", "@",
)

#: All multi-character operators, longest first (single chars handled
#: separately).  Order matters for maximal-munch lexing.
MULTI_OPS = tuple(
    sorted(
        {
            "|<>",          # co-expression creation
            "<>",           # first-class generator
            "|>",           # pipe
            "~===", "===",  # same-value (not)
            "~==", "==",    # equality (dialect: general equality)
            "<<=", ">>=",   # string comparisons
            "<<", ">>",
            "<=", ">=", "~=",
            ":=:", "<->",   # swaps
            ":=", "<-",     # assignment, reversible assignment
            "|||", "||",    # concatenation
            "++", "--", "**",
            "::",           # native invocation
            "+:", "-:",     # section offsets e[i+:n]
        }
        | {op + ":=" for op in AUGMENTABLE},
        key=len,
        reverse=True,
    )
)

SINGLE_OPS = frozenset("+-*/%^<>=~|&?@!\\.,;:()[]{}$")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    value: Any
    line: int
    column: int

    def is_op(self, *symbols: str) -> bool:
        return self.kind == OP and self.value in symbols

    def is_reserved(self, *words: str) -> bool:
        return self.kind == RESERVED and self.value in words

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"
