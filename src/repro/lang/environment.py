"""Runtime support for generated code — name resolution, keyword refs,
list construction, and invocation dispatch.

The transformer (see :mod:`repro.lang.transform`) emits Python that calls
into this module:

* :class:`GlobalRef` — a variable in the generated module's namespace,
  falling back to Icon's :data:`~repro.runtime.functions.BUILTINS` for
  reads; undeclared globals read as the null value, exactly like Icon.
* :class:`KeywordRef` — an assignable ``&keyword`` (``&pos``,
  ``&subject``, ``&random``).
* :class:`ListBuild` — the ``[e1, e2, …]`` literal: each element is a
  bounded expression contributing its first result (or null on failure).
* :func:`invoke_value` — the invocation dispatcher for already-bound
  values (normalized calls), including Icon's integer *mutual evaluation*.
* :func:`shadow` — make the shadowed local cell a co-expression factory
  receives (Section V.D's copied environment).
"""

from __future__ import annotations

from typing import Any, Iterator, MutableMapping

from ..errors import IconNotAFunctionError
from ..runtime.failure import FAIL, Suspension
from ..runtime.functions import BUILTINS, keyword, set_keyword
from ..runtime.iterator import IconIterator, as_iterator
from ..runtime.refs import IconVar, Ref, deref


class GlobalRef(Ref):
    """A named slot in a generated module's namespace.

    Reads fall back to the Icon builtin table, then to the null value;
    writes always go to the namespace (creating the global, as Icon does
    for declared globals).
    """

    __slots__ = ("namespace", "name")

    def __init__(self, namespace: MutableMapping[str, Any], name: str) -> None:
        self.namespace = namespace
        self.name = name

    def get(self) -> Any:
        if self.name in self.namespace:
            return self.namespace[self.name]
        if self.name in BUILTINS:
            return BUILTINS[self.name]
        builtins_ns = self.namespace.get("__builtins__")
        if isinstance(builtins_ns, dict) and self.name in builtins_ns:
            return builtins_ns[self.name]
        if builtins_ns is not None and hasattr(builtins_ns, self.name):
            return getattr(builtins_ns, self.name)
        return None

    def set(self, value: Any) -> Any:
        self.namespace[self.name] = value
        return value


def global_value(namespace: MutableMapping[str, Any], name: str) -> Any:
    """Read a global (closure form used inside invocation lambdas)."""
    return GlobalRef(namespace, name).get()


class KeywordRef(Ref):
    """An Icon keyword as an (possibly assignable) variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def get(self) -> Any:
        return keyword(self.name)

    def set(self, value: Any) -> Any:
        return set_keyword(self.name, value)


class ListBuild(IconIterator):
    """``[e1, e2, …]`` — build a list from bounded element expressions.

    Each element contributes its first result; a failing element
    contributes the null value (Icon's behaviour for list literals with
    failing expressions is to error, but null is friendlier for a dialect
    used in embedding — the difference is documented).
    """

    __slots__ = ("items",)

    def __init__(self, *items: Any) -> None:
        super().__init__()
        self.items = tuple(as_iterator(item) for item in items)

    def iterate(self) -> Iterator[list]:
        values = []
        for item in self.items:
            first = item.first()
            values.append(None if first is FAIL else first)
        yield values


def invoke_value(callee: Any, *args: Any) -> Any:
    """Invoke an already-bound callee over already-bound argument values.

    This is the residual call left after normalization; the surrounding
    :class:`~repro.runtime.invoke.IconInvokeIterator` delegates iteration
    to the returned value (generator function results and Junicon method
    bodies) or promotes it to a singleton (plain host results).

    Icon mutual evaluation: an integer callee selects among the arguments.
    """
    if isinstance(callee, Ref):
        callee = callee.get()
    if callable(callee):
        # Fast paths: normalized call sites bind at most a few arguments,
        # and they arrive as plain values (the IconIn bindings deref).
        if not args:
            return callee()
        if len(args) == 1:
            a = args[0]
            return callee(a.get() if isinstance(a, Ref) else a)
        if len(args) == 2:
            a, b = args
            return callee(
                a.get() if isinstance(a, Ref) else a,
                b.get() if isinstance(b, Ref) else b,
            )
        return callee(*[deref(arg) for arg in args])
    if isinstance(callee, int) and not isinstance(callee, bool):
        position = callee if callee > 0 else len(args) + callee + 1
        if 1 <= position <= len(args):
            return deref(args[position - 1])
        return FAIL
    if isinstance(callee, str):
        # Icon string invocation: "write"(x) resolves the procedure name.
        resolved = BUILTINS.get(callee)
        if callable(resolved):
            return invoke_value(resolved, *args)
        return FAIL
    raise IconNotAFunctionError(f"invocation of a {type(callee).__name__} value")


def call_results(callee: Any, *args: Any) -> Iterator[Any]:
    """Iterate an invocation's results, already dereferenced.

    The optimizing compile target (:mod:`repro.lang.optimize`) lowers a
    normalized call site to ``for v in call_results(f, a, b): ...`` — one
    generator frame replacing the ``IconInvokeIterator`` wrapper plus the
    per-result ``deref``/``unwrap`` of the interpreted path.  Delegation
    follows :func:`invoke_value`: generator-function results and Junicon
    method bodies are iterated; plain host results are singletons;
    :data:`FAIL` yields nothing.
    """
    result = invoke_value(callee, *args)
    if result is FAIL:
        return
    if isinstance(result, IconIterator):
        for item in result.iterate():
            yield deref(item)
        return
    if hasattr(result, "__next__"):
        for item in result:
            yield deref(item)
        return
    yield deref(result)


def first_result(results: Any) -> Any:
    """The first result of an iterable, or :data:`FAIL` when exhausted.

    Bounded-expression support for lowered code: the generated helper
    generator is driven one step and closed, mirroring
    ``IconIterator.first`` without a node allocation.
    """
    for value in results:
        return value
    return FAIL


def break_results(signal: Any) -> Iterator[Any]:
    """Iterate a ``break e`` signal's value expression, dereferenced.

    :class:`~repro.runtime.failure.BreakSignal` carries the *un-evaluated*
    value node; lowered loops drain it lazily — fully in result position,
    one bounded step in statement position — matching ``IconWhile`` /
    ``IconEvery``.  A bare ``break`` (no value) yields nothing.
    """
    if signal.value_iterator is None:
        return
    for value in as_iterator(signal.value_iterator).iterate():
        if isinstance(value, Suspension):
            value = value.value
        yield deref(value)


def host_lookup(thunk: Any, self_thunk: Any, name: str) -> Any:
    """Late-bound name resolution for inline expression regions.

    Tries, in order: the host lexical scope (*thunk* is a closure reading
    the bare name), an attribute of the host ``self`` (Figure 3's embedded
    expressions call sibling Junicon methods unqualified), and the Icon
    builtin table.  Resolves to the null value when nothing matches, as
    Icon does for unbound variables.
    """
    try:
        return thunk()
    except NameError:
        pass
    try:
        owner = self_thunk()
    except NameError:
        owner = None
    if owner is not None and hasattr(owner, name):
        return getattr(owner, name)
    return BUILTINS.get(name)


def class_lookup(owner: Any, namespace: MutableMapping[str, Any], name: str) -> Any:
    """Late-bound resolution inside an embedded ``context="class"`` region.

    The host class's members are unknown to the (grammar-oblivious)
    embedder, so bare names resolve at call time: an attribute of the host
    instance first (sibling methods, fields), then the module namespace,
    then the Icon builtins, then null.
    """
    if owner is not None and hasattr(owner, name):
        return getattr(owner, name)
    return GlobalRef(namespace, name).get()


class IconInitial(IconIterator):
    """``initial e`` — run the bounded expression once per procedure ever.

    The once-flag is a shared mutable cell (generated code passes the
    method's mutable default argument), so every constructed body of the
    same method observes the same "already ran" state.
    """

    __slots__ = ("flag", "expr")

    def __init__(self, flag: list, expr: Any) -> None:
        super().__init__()
        self.flag = flag
        self.expr = as_iterator(expr)

    def iterate(self):
        if not self.flag[0]:
            self.flag[0] = True
            self.expr.first()
        yield None  # the clause itself succeeds with the null value


def shadow(value: Any, name: str = "") -> IconVar:
    """A fresh local cell holding a copied value (co-expression shadowing)."""
    cell = IconVar(name).local()
    cell.set(value)
    return cell
