"""Lexer for the Junicon dialect.

Hand-written maximal-munch scanner.  Junicon inherits Icon's lexical
shapes: ``&keyword`` keywords, ``'...'`` cset literals, ``"..."`` strings
with the usual escapes, ``16rFF`` radix integers, and ``#`` line comments.
Semicolons separate statements; newlines are whitespace (the brace-based
dialect does not use Icon's line-sensitive semicolon insertion).

Native host regions embedded inside Junicon (``@<script lang="python">``)
are extracted *before* lexing by the annotation metaparser and arrive here
as placeholder tokens via ``native_blocks`` (see
:mod:`repro.lang.annotations`): the placeholder text ``\x00N\x00`` lexes
into a :data:`~repro.lang.tokens.NATIVE` token carrying the host code.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..errors import LexError
from .tokens import (
    CSET,
    EOF,
    IDENT,
    INTEGER,
    KEYWORD,
    MULTI_OPS,
    NATIVE,
    OP,
    REAL,
    RESERVED,
    RESERVED_WORDS,
    SINGLE_OPS,
    STRING,
    Token,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "e": "\x1b",
}


class Lexer:
    """Tokenize Junicon source text."""

    def __init__(
        self,
        source: str,
        native_blocks: Mapping[str, str] | None = None,
    ) -> None:
        self.source = source
        self.native_blocks = dict(native_blocks or {})
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- driver ---------------------------------------------------------------

    def tokens(self) -> list[Token]:
        return list(self._scan())

    def _scan(self) -> Iterator[Token]:
        text = self.source
        length = len(text)
        while self.pos < length:
            char = text[self.pos]
            if char in " \t\r\n":
                self._advance(1)
                continue
            if char == "#":
                self._skip_comment()
                continue
            if char == "\x00":
                yield self._native()
                continue
            if char.isdigit() or (
                char == "." and self.pos + 1 < length and text[self.pos + 1].isdigit()
            ):
                yield self._number()
                continue
            if char.isalpha() or char == "_":
                yield self._identifier()
                continue
            if char == '"':
                yield self._string('"', STRING)
                continue
            if char == "'":
                yield self._string("'", CSET)
                continue
            if char == "&":
                nxt = text[self.pos + 1] if self.pos + 1 < length else ""
                if nxt.isalpha():
                    yield self._keyword()
                    continue
            yield self._operator()
        yield Token(EOF, None, self.line, self.column)

    # -- pieces ---------------------------------------------------------------

    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_comment(self) -> None:
        while self.pos < len(self.source) and self.source[self.pos] != "\n":
            self._advance(1)

    def _native(self) -> Token:
        line, column = self.line, self.column
        end = self.source.find("\x00", self.pos + 1)
        if end < 0:
            raise LexError("unterminated native placeholder", line, column)
        key = self.source[self.pos + 1: end]
        self._advance(end + 1 - self.pos)
        try:
            code = self.native_blocks[key]
        except KeyError:
            raise LexError(f"unknown native block {key!r}", line, column) from None
        return Token(NATIVE, code, line, column)

    def _number(self) -> Token:
        line, column = self.line, self.column
        text = self.source
        start = self.pos
        while self.pos < len(text) and text[self.pos].isdigit():
            self._advance(1)
        # Radix literal: 16rFF
        if (
            self.pos < len(text)
            and text[self.pos] in "rR"
            and text[start: self.pos].isdigit()
            and self.pos + 1 < len(text)
            and text[self.pos + 1].isalnum()
        ):
            radix = int(text[start: self.pos])
            if not 2 <= radix <= 36:
                raise LexError(f"radix {radix} out of range", line, column)
            self._advance(1)
            digits_start = self.pos
            while self.pos < len(text) and text[self.pos].isalnum():
                self._advance(1)
            digits = text[digits_start: self.pos]
            try:
                return Token(INTEGER, int(digits, radix), line, column)
            except ValueError:
                raise LexError(
                    f"bad digits {digits!r} for radix {radix}", line, column
                ) from None
        is_real = False
        if (
            self.pos < len(text)
            and text[self.pos] == "."
            and self.pos + 1 < len(text)
            and text[self.pos + 1].isdigit()
        ):
            is_real = True
            self._advance(1)
            while self.pos < len(text) and text[self.pos].isdigit():
                self._advance(1)
        if self.pos < len(text) and text[self.pos] in "eE":
            lookahead = self.pos + 1
            if lookahead < len(text) and text[lookahead] in "+-":
                lookahead += 1
            if lookahead < len(text) and text[lookahead].isdigit():
                is_real = True
                self._advance(lookahead - self.pos)
                while self.pos < len(text) and text[self.pos].isdigit():
                    self._advance(1)
        literal = text[start: self.pos]
        if is_real:
            return Token(REAL, float(literal), line, column)
        return Token(INTEGER, int(literal), line, column)

    def _identifier(self) -> Token:
        line, column = self.line, self.column
        text = self.source
        start = self.pos
        while self.pos < len(text) and (text[self.pos].isalnum() or text[self.pos] == "_"):
            self._advance(1)
        word = text[start: self.pos]
        if word in RESERVED_WORDS:
            return Token(RESERVED, word, line, column)
        return Token(IDENT, word, line, column)

    def _string(self, quote: str, kind: str) -> Token:
        line, column = self.line, self.column
        text = self.source
        self._advance(1)
        pieces: list[str] = []
        while True:
            if self.pos >= len(text):
                raise LexError("unterminated string literal", line, column)
            char = text[self.pos]
            if char == quote:
                self._advance(1)
                break
            if char == "\n":
                raise LexError("newline in string literal", line, column)
            if char == "\\":
                self._advance(1)
                if self.pos >= len(text):
                    raise LexError("unterminated escape", line, column)
                escape = text[self.pos]
                if escape == "x":
                    self._advance(1)
                    hex_digits = text[self.pos: self.pos + 2]
                    if len(hex_digits) < 2 or not all(
                        c in "0123456789abcdefABCDEF" for c in hex_digits
                    ):
                        raise LexError("bad \\x escape", self.line, self.column)
                    pieces.append(chr(int(hex_digits, 16)))
                    self._advance(2)
                    continue
                pieces.append(_ESCAPES.get(escape, escape))
                self._advance(1)
                continue
            pieces.append(char)
            self._advance(1)
        value = "".join(pieces)
        if kind is CSET:
            from ..runtime.types import Cset

            return Token(CSET, Cset(value), line, column)
        return Token(STRING, value, line, column)

    def _keyword(self) -> Token:
        line, column = self.line, self.column
        self._advance(1)  # the &
        text = self.source
        start = self.pos
        while self.pos < len(text) and (text[self.pos].isalnum() or text[self.pos] == "_"):
            self._advance(1)
        return Token(KEYWORD, text[start: self.pos], line, column)

    def _operator(self) -> Token:
        line, column = self.line, self.column
        text = self.source
        for op in MULTI_OPS:
            if text.startswith(op, self.pos):
                self._advance(len(op))
                return Token(OP, op, line, column)
        char = text[self.pos]
        if char in SINGLE_OPS:
            self._advance(1)
            return Token(OP, char, line, column)
        raise LexError(f"unexpected character {char!r}", line, column)


def tokenize(source: str, native_blocks: Mapping[str, str] | None = None) -> list[Token]:
    """Tokenize *source*, resolving native placeholders via *native_blocks*."""
    return Lexer(source, native_blocks).tokens()
