"""Import machinery for mixed-language source files.

The paper's harness "can emit its output for compilation that is free of
dependencies on Groovy"; the Pythonic equivalent is an import hook: after
:func:`install`, files named ``<module>.jun`` (pure Junicon) or
``<module>.jun.py`` (Python with scoped annotations) import like any
other module — transformation happens at import time and the result is a
normal Python module object.

    from repro.lang.loader import install
    install()
    import wordcount          # found as wordcount.jun / wordcount.jun.py
"""

from __future__ import annotations

import importlib.abc
import importlib.machinery
import importlib.util
import os
import sys
from typing import Sequence

from .embed import transform_source
from .transform import transform_program

#: Pure-Junicon source (whole translation unit).
JUNICON_SUFFIX = ".jun"
#: Host Python with embedded scoped-annotation regions.
MIXED_SUFFIX = ".jun.py"


class JuniconLoader(importlib.abc.SourceLoader):
    """Loads and transforms one mixed/pure Junicon file.

    ``optimize`` selects the compile target (see
    :func:`repro.lang.optimize.resolve_optimize`): the default ``"auto"``
    follows the ``REPRO_OPTIMIZE`` environment variable.
    """

    def __init__(self, fullname: str, path: str, optimize="auto") -> None:
        self.fullname = fullname
        self.path = path
        self.optimize = optimize

    def get_filename(self, fullname: str) -> str:
        return self.path

    def get_data(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def get_source(self, fullname: str) -> str:
        raw = self.get_data(self.path).decode("utf-8")
        if self.path.endswith(MIXED_SUFFIX):
            return transform_source(raw, optimize=self.optimize)
        return transform_program(raw, optimize=self.optimize)

    def source_to_code(self, data, path, *, _optimize=-1):  # type: ignore[override]
        # `data` is the *raw* bytes; transform before compiling.
        source = self.get_source(self.fullname)
        return compile(source, path, "exec", dont_inherit=True)

    # SourceLoader would try to write bytecode for the raw source; the
    # transformed code has a different shape, so opt out of caching.
    def set_data(self, path: str, data: bytes) -> None:  # pragma: no cover
        return None


class JuniconFinder(importlib.abc.MetaPathFinder):
    """Finds ``<name>.jun`` / ``<name>.jun.py`` along ``sys.path``."""

    def __init__(self, extra_paths: Sequence[str] = (), optimize="auto") -> None:
        self.extra_paths = list(extra_paths)
        self.optimize = optimize

    def find_spec(self, fullname, path=None, target=None):
        leaf = fullname.rsplit(".", 1)[-1]
        search: list[str] = list(self.extra_paths)
        if path:
            search.extend(p for p in path if isinstance(p, str))
        else:
            search.extend(p or "." for p in sys.path)
        for directory in search:
            for suffix in (MIXED_SUFFIX, JUNICON_SUFFIX):
                candidate = os.path.join(directory, leaf + suffix)
                if os.path.isfile(candidate):
                    loader = JuniconLoader(
                        fullname, candidate, optimize=self.optimize
                    )
                    return importlib.util.spec_from_file_location(
                        fullname, candidate, loader=loader
                    )
        return None


_installed: JuniconFinder | None = None


def install(extra_paths: Sequence[str] = (), optimize="auto") -> JuniconFinder:
    """Install (or extend) the import hook; idempotent."""
    global _installed
    if _installed is None:
        _installed = JuniconFinder(extra_paths, optimize=optimize)
        sys.meta_path.append(_installed)
    else:
        for path in extra_paths:
            if path not in _installed.extra_paths:
                _installed.extra_paths.append(path)
        if optimize != "auto":
            _installed.optimize = optimize
    return _installed


def uninstall() -> None:
    """Remove the import hook (tests use this to stay hermetic)."""
    global _installed
    if _installed is not None:
        try:
            sys.meta_path.remove(_installed)
        except ValueError:
            pass
        _installed = None


def load_file(path: str, module_name: str | None = None, optimize="auto"):
    """Import one mixed/pure Junicon file directly (no hook needed)."""
    name = module_name or os.path.basename(path).split(".")[0]
    loader = JuniconLoader(name, path, optimize=optimize)
    spec = importlib.util.spec_from_file_location(name, path, loader=loader)
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    return module
