"""Interactive evaluation of Junicon — the paper's Groovy-analogue path.

The paper's harness either emits translated code for compilation (the Java
target) or hands it to a script engine for interactive evaluation (the
Groovy target).  Both targets share the parser and the transformations;
only the final engine differs.  Here the "script engine" is Python's own
``exec``/``eval`` over a persistent namespace: :class:`JuniconInterpreter`
parses, normalizes, transforms, and executes each input, keeping declared
methods, classes, and globals alive between inputs.
"""

from __future__ import annotations

import builtins
from typing import Any, Iterator, List

from ..errors import InterpreterError, ParseError
from ..runtime.failure import FAIL
from ..runtime.iterator import IconIterator
from . import ast_nodes as ast
from .parser import Parser
from .lexer import tokenize
from .transform import transform_expression, transform_program


class JuniconInterpreter:
    """A persistent Junicon evaluation session over one namespace."""

    def __init__(
        self, namespace: dict | None = None, optimize: bool = False
    ) -> None:
        if namespace is None:
            namespace = {}
        self.namespace = namespace
        self.namespace.setdefault("__builtins__", builtins)
        # Generated code expects the prelude names and `_ns`.
        exec("from repro.lang.prelude import *", self.namespace)
        self.namespace["_ns"] = self.namespace
        #: names declared `global` in any input of this session
        self.declared_globals: set = set()
        #: compile target for procedure declarations — the interactive
        #: engine defaults to the interpreted iterator trees (the
        #: "script engine" path); pass ``optimize=True`` to lower
        #: declared procedures to native Python generators instead.
        self.optimize = bool(optimize)

    # -- program-level -----------------------------------------------------------

    def load(self, source: str, native_blocks=None) -> dict:
        """Translate and execute a Junicon translation unit.

        Declarations (methods, classes, records, globals) become entries in
        the session namespace; top-level statements run in order.  Returns
        the namespace.
        """
        code = transform_program(
            source,
            native_blocks,
            known_globals=self.declared_globals,
            optimize=self.optimize,
        )
        exec(compile(code, "<junicon>", "exec"), self.namespace)
        return self.namespace

    # -- expression-level ----------------------------------------------------------

    def expression(self, source: str, native_blocks=None) -> IconIterator:
        """Build (but do not run) the iterator for a Junicon expression.

        Names resolve against the session namespace (Icon globals), not
        host closures — the inline host-embedding mode lives in
        :func:`repro.lang.transform.transform_expression`.
        """
        from .normalize import count_temps, normalize_expr
        from .parser import parse_expression as _parse_expression
        from .transform import ExpressionCompiler, Scope

        node = normalize_expr(_parse_expression(source, native_blocks))
        compiler = ExpressionCompiler(Scope())
        body = compiler.c(node)
        binders = ", ".join(
            [f"_t{i}=IconTmp()" for i in range(count_temps(node))]
            + [
                f"_g_{g}=GlobalRef(_ns, {g!r})"
                for g in sorted(compiler.globals_used)
            ]
        )
        code = f"(lambda {binders}: {body})()" if binders else f"({body})"
        result = eval(compile(code, "<junicon-expr>", "eval"), self.namespace)
        if not isinstance(result, IconIterator):
            raise InterpreterError(
                f"expression compiled to {type(result).__name__}, not an iterator"
            )
        return result

    def eval(self, source: str, native_blocks=None) -> Any:
        """Evaluate an expression as a bounded statement: its first result,
        or :data:`FAIL`."""
        return self.expression(source, native_blocks).first()

    def results(self, source: str, limit: int | None = None) -> List[Any]:
        """Every result of an expression (optionally limited)."""
        out: List[Any] = []
        for value in self.expression(source):
            out.append(value)
            if limit is not None and len(out) >= limit:
                break
        return out

    def iter(self, source: str) -> Iterator[Any]:
        """A lazy Python iterator over an expression's results."""
        return iter(self.expression(source))

    # -- mixed input (statements or declarations) -----------------------------------

    def run(self, source: str) -> Any:
        """Evaluate arbitrary Junicon input.

        Declarations are loaded; a trailing expression's first result is
        returned (the REPL contract).  Returns None when the input is only
        declarations, :data:`FAIL` when the final expression fails.
        """
        program = Parser(tokenize(source)).parse_program()
        result: Any = None
        pending_stmts: List[ast.Node] = []

        def flush() -> Any:
            nonlocal pending_stmts
            if not pending_stmts:
                return None
            value: Any = None
            for statement in pending_stmts:
                value = self._eval_node(statement)
            pending_stmts = []
            return value

        for node in program.body:
            if isinstance(
                node,
                (ast.MethodDecl, ast.ClassDecl, ast.RecordDecl, ast.GlobalDecl),
            ):
                flush()
                self._load_declaration(node)
                result = None
            else:
                pending_stmts.append(node)
        value = flush()
        if value is not None:
            result = value
        return result

    def _load_declaration(self, node: ast.Node) -> None:
        from .transform import CodeWriter, emit_class, emit_method, emit_record

        writer = CodeWriter()
        if isinstance(node, ast.MethodDecl):
            lowered = False
            if self.optimize:
                from .optimize import emit_method_optimized

                lowered = emit_method_optimized(
                    writer, node, module_globals=self.declared_globals
                )
            if not lowered:
                emit_method(writer, node, module_globals=self.declared_globals)
        elif isinstance(node, ast.ClassDecl):
            emit_class(writer, node, module_globals=self.declared_globals)
        elif isinstance(node, ast.RecordDecl):
            emit_record(writer, node)
        elif isinstance(node, ast.GlobalDecl):
            self.declared_globals.update(node.names)
            for name in node.names:
                self.namespace.setdefault(name, None)
            return
        self.namespace.setdefault("_method_cache", None)
        if self.namespace["_method_cache"] is None:
            from ..runtime.cache import MethodBodyCache

            self.namespace["_method_cache"] = MethodBodyCache()
        exec(compile(writer.text(), "<junicon-decl>", "exec"), self.namespace)

    def _eval_node(self, node: ast.Node) -> Any:
        from .normalize import count_temps, normalize_expr
        from .transform import ExpressionCompiler, Scope

        normalized = normalize_expr(node)
        scope = Scope()  # interactive statements see globals
        compiler = ExpressionCompiler(scope)
        temps = count_temps(normalized)
        body = compiler.c(normalized)
        binders = ", ".join(
            [f"_t{i}=IconTmp()" for i in range(temps)]
            + [
                f"_g_{g}=GlobalRef(_ns, {g!r})"
                for g in sorted(compiler.globals_used)
            ]
        )
        code = f"(lambda {binders}: {body})()" if binders else f"({body})"

        iterator = eval(compile(code, "<junicon-stmt>", "eval"), self.namespace)
        return iterator.first()


def is_complete(source: str) -> bool:
    """Heuristic REPL line-continuation test: does *source* parse, and are
    its grouping delimiters balanced?"""
    depth = 0
    in_string: str | None = None
    escaped = False
    for char in source:
        if in_string:
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == in_string:
                in_string = None
            continue
        if char in "\"'":
            in_string = char
        elif char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
    if depth > 0 or in_string:
        return False
    try:
        Parser(tokenize(source)).parse_program()
    except ParseError:
        return False
    except Exception:
        return True  # lexical garbage: let evaluation report it
    return True
