"""Scoped annotations — the mixed-language embedding markers (Section IV).

Admissible forms (paper)::

    @<tag attr1=x1 ... attrn=xn> expression @</tag>
    @<tag attr1=x1 ... attrn=xn/>
    @<tag(attr1=x1, ..., attrn=xn)> expression @</tag>
    @<tag(attr1=x1, ..., attrn=xn)/>

Tags may be namespace-qualified (``ns:tag`` or ``pkg.tag``), annotations
nest, and — unlike Java annotations — they can delimit arbitrary sections
of code, down to single expressions.

The *metaparser* here is deliberately grammar-oblivious: scanning the host
text it tracks only string literals, comments, and the annotation markers
themselves — it never parses host syntax (the paper: "we do not need
parsers for Java or Groovy ... only a general metaparser").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AnnotationError

OPEN_MARK = "@<"
CLOSE_MARK = "@</"


@dataclass
class ScopedAnnotation:
    """One annotation region found in host text.

    ``start``/``end`` span the entire annotated text including markers;
    ``body_start``/``body_end`` span the enclosed region (empty for the
    self-closing forms).  ``children`` holds nested annotations positioned
    relative to the same source text.
    """

    tag: str
    attrs: Dict[str, str]
    start: int
    end: int
    body_start: int
    body_end: int
    self_closing: bool = False
    children: List["ScopedAnnotation"] = field(default_factory=list)

    @property
    def lang(self) -> str:
        return self.attrs.get("lang", "")

    def body(self, source: str) -> str:
        return source[self.body_start: self.body_end]


def parse_annotation_tag(source: str, start: int) -> Tuple[str, Dict[str, str], int, bool]:
    """Parse ``@<tag …>`` or ``@<tag(…)>`` at *start*.

    Returns (tag, attrs, position-after-``>``, self_closing).
    """
    if not source.startswith(OPEN_MARK, start):
        raise AnnotationError("not an annotation", _line_of(source, start))
    pos = start + len(OPEN_MARK)
    tag_start = pos
    while pos < len(source) and (source[pos].isalnum() or source[pos] in "_.:-"):
        pos += 1
    tag = source[tag_start:pos]
    if not tag:
        raise AnnotationError("empty annotation tag", _line_of(source, start))
    attrs: Dict[str, str] = {}
    paren_form = pos < len(source) and source[pos] == "("
    if paren_form:
        pos += 1
    while True:
        while pos < len(source) and source[pos] in " \t\r\n,":
            pos += 1
        if pos >= len(source):
            raise AnnotationError(f"unterminated annotation @<{tag}", _line_of(source, start))
        if paren_form and source[pos] == ")":
            pos += 1
            break
        if source[pos] in ">/":
            if paren_form:
                raise AnnotationError(
                    f"missing ')' in @<{tag}(...)", _line_of(source, start)
                )
            break
        name_start = pos
        while pos < len(source) and (source[pos].isalnum() or source[pos] in "_.:-"):
            pos += 1
        name = source[name_start:pos]
        if not name:
            raise AnnotationError(
                f"bad attribute in @<{tag}>", _line_of(source, pos)
            )
        while pos < len(source) and source[pos] in " \t":
            pos += 1
        if pos < len(source) and source[pos] == "=":
            pos += 1
            while pos < len(source) and source[pos] in " \t":
                pos += 1
            if pos < len(source) and source[pos] in "\"'":
                quote = source[pos]
                pos += 1
                value_start = pos
                while pos < len(source) and source[pos] != quote:
                    pos += 1
                if pos >= len(source):
                    raise AnnotationError(
                        f"unterminated attribute value in @<{tag}>",
                        _line_of(source, value_start),
                    )
                attrs[name] = source[value_start:pos]
                pos += 1
            else:
                value_start = pos
                while pos < len(source) and source[pos] not in " \t\r\n,)>/":
                    pos += 1
                attrs[name] = source[value_start:pos]
        else:
            attrs[name] = ""
    # Now expect '>' or '/>'
    while pos < len(source) and source[pos] in " \t":
        pos += 1
    if source.startswith("/>", pos):
        return tag, attrs, pos + 2, True
    if pos < len(source) and source[pos] == ">":
        return tag, attrs, pos + 1, False
    raise AnnotationError(f"malformed annotation @<{tag}>", _line_of(source, start))


def _line_of(source: str, position: int) -> int:
    return source.count("\n", 0, min(position, len(source))) + 1


class _HostScanner:
    """Track just enough host lexical state to skip strings and comments."""

    def __init__(self, comment_prefixes: Tuple[str, ...] = ("#",)) -> None:
        self.comment_prefixes = comment_prefixes

    def skip(self, source: str, pos: int) -> Optional[int]:
        """If *pos* starts a string or comment, return the position after
        it; otherwise None."""
        char = source[pos]
        for prefix in self.comment_prefixes:
            if source.startswith(prefix, pos):
                end = source.find("\n", pos)
                return len(source) if end < 0 else end
        if char in "\"'":
            # Triple-quoted strings first (host = Python by default).
            triple = char * 3
            if source.startswith(triple, pos):
                end = source.find(triple, pos + 3)
                if end < 0:
                    return len(source)
                return end + 3
            index = pos + 1
            while index < len(source):
                if source[index] == "\\":
                    index += 2
                    continue
                if source[index] == char or source[index] == "\n":
                    return index + 1
                index += 1
            return len(source)
        return None


def find_annotations(
    source: str,
    comment_prefixes: Tuple[str, ...] = ("#",),
) -> List[ScopedAnnotation]:
    """Find all top-level scoped annotations in *source* (with children).

    Only the host text *between* annotations is scanned obliviously;
    inside an annotation body the scan recurses so nested annotations of
    any language are found.
    """
    scanner = _HostScanner(comment_prefixes)
    annotations: List[ScopedAnnotation] = []
    stack: List[ScopedAnnotation] = []
    pos = 0
    length = len(source)
    while pos < length:
        if source.startswith(CLOSE_MARK, pos):
            tag_start = pos + len(CLOSE_MARK)
            tag_end = source.find(">", tag_start)
            if tag_end < 0:
                raise AnnotationError("unterminated close tag", _line_of(source, pos))
            tag = source[tag_start:tag_end].strip()
            if not stack:
                raise AnnotationError(
                    f"close tag @</{tag}> without an open tag", _line_of(source, pos)
                )
            annotation = stack.pop()
            if annotation.tag != tag:
                raise AnnotationError(
                    f"mismatched close tag @</{tag}> for @<{annotation.tag}>",
                    _line_of(source, pos),
                )
            annotation.body_end = pos
            annotation.end = tag_end + 1
            if stack:
                stack[-1].children.append(annotation)
            else:
                annotations.append(annotation)
            pos = tag_end + 1
            continue
        if source.startswith(OPEN_MARK, pos):
            tag, attrs, after, self_closing = parse_annotation_tag(source, pos)
            annotation = ScopedAnnotation(
                tag=tag,
                attrs=attrs,
                start=pos,
                end=after,
                body_start=after,
                body_end=after,
                self_closing=self_closing,
            )
            if self_closing:
                if stack:
                    stack[-1].children.append(annotation)
                else:
                    annotations.append(annotation)
            else:
                stack.append(annotation)
            pos = after
            continue
        # Skip strings/comments both in host text and inside annotation
        # bodies (Junicon shares the quote and # comment shapes).
        skipped = scanner.skip(source, pos)
        if skipped is not None:
            pos = skipped
            continue
        pos += 1
    if stack:
        raise AnnotationError(
            f"unclosed annotation @<{stack[-1].tag}>",
            _line_of(source, stack[-1].start),
        )
    return annotations
