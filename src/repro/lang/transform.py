"""Transformation of Junicon into host Python (paper Sections V, VI).

The transformer turns normalized ASTs into Python source that builds
runtime iterator trees, mirroring the shape of the paper's Figure 5:

* a method compiles to a host function that pops a cached body or
  constructs one (reified parameter cells, normalization temporaries, an
  unpack closure, the body tree), parks it in a
  :class:`~repro.runtime.cache.MethodBodyCache`, and returns it;
* classes expose fields in dual plain/reified form and methods as host
  methods returning iterators (Section V.C);
* co-expressions and pipes synthesize a factory over the shadowed local
  environment (Section V.D);
* expression regions compile to a single Python expression (an
  immediately-invoked lambda carrying the region's temporaries) so they
  can be spliced verbatim into host code — host names are referenced
  directly through closures, which is what gives seamless interop.

Two public entry points: :func:`transform_program` (module mode) and
:func:`transform_expression` (inline expression mode).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..errors import TransformError
from . import ast_nodes as ast
from .normalize import BoundIn, TempRef, count_temps, normalize_expr
from .parser import parse, parse_expression

# Dialect operator → value function in repro.runtime.operations (as `iops`).
BINARY_FN = {
    "+": "iops.plus",
    "-": "iops.minus",
    "*": "iops.times",
    "/": "iops.divide",
    "%": "iops.modulo",
    "^": "iops.power",
    "<": "iops.num_lt",
    "<=": "iops.num_le",
    ">": "iops.num_gt",
    ">=": "iops.num_ge",
    "~=": "iops.num_ne",
    "<<": "iops.lex_lt",
    "<<=": "iops.lex_le",
    ">>": "iops.lex_gt",
    ">>=": "iops.lex_ge",
    "==": "iops.value_eq",
    "~==": "iops.value_ne",
    "===": "iops.value_eq",
    "~===": "iops.value_ne",
    "||": "iops.concat",
    "|||": "iops.list_concat",
    "++": "iops.union",
    "--": "iops.difference",
    "**": "iops.intersection",
}

UNARY_FN = {
    "-": "iops.negate",
    "+": "iops.numerate",
    "*": "iops.size",
    "~": "iops.complement",
    "?": "iops.random_of",
}


class Scope:
    """Name-resolution context for one compilation unit."""

    def __init__(
        self,
        locals_map: Dict[str, str] | None = None,
        fields: Set[str] | None = None,
        has_self: bool = False,
        inline: bool = False,
        dynamic_self: bool = False,
    ) -> None:
        #: junicon name -> generated cell variable name
        self.locals_map = dict(locals_map or {})
        self.fields = set(fields or ())
        self.has_self = has_self
        self.inline = inline
        #: embedded ``context="class"`` regions: the host class's members
        #: are unknown, so unresolved reads fall back to self at call time
        self.dynamic_self = dynamic_self

    def resolve(self, name: str) -> tuple:
        if name in ("this", "self"):
            if self.has_self:
                return ("self",)
            if self.inline:
                # In an inline expression region `this` is the host `self`.
                return ("host", "self")
        if name in self.locals_map:
            return ("local", self.locals_map[name])
        if name in self.fields:
            return ("field", name)
        if self.inline:
            return ("host", name)
        if self.dynamic_self:
            return ("dynamic", name)
        return ("global", name)


def collect_locals(
    body: ast.Node,
    params: Sequence[str],
    fields: Set[str] | None = None,
    module_globals: Set[str] | None = None,
) -> List[str]:
    """Icon's locality rule: parameters, declared locals, and every name
    that is assigned anywhere in the body (unless declared global there).

    Class *fields* take precedence over implicit assignment-locality —
    ``count = count + 1`` in a method updates the field — but an explicit
    ``local count`` declaration shadows the field.
    """
    declared_global: Set[str] = set(module_globals or ())
    fields = fields or set()
    names: List[str] = list(params)
    seen: Set[str] = set(params)

    def note(name: str, implicit: bool) -> None:
        if implicit and (name in fields or name in declared_global):
            return
        if name not in seen:
            seen.add(name)
            names.append(name)

    for node in ast.walk(body):
        if isinstance(node, ast.GlobalDecl):
            declared_global.update(node.names)
        elif isinstance(node, ast.VarDecl):
            for name in node.names:
                note(name, implicit=False)
        elif isinstance(node, ast.Assign) and isinstance(node.target, ast.Name):
            note(node.target.id, implicit=True)
    # An in-procedure `global g` always wins: the name stays global even
    # when assigned (declaring it both global and local is contradictory).
    local_global = {
        name
        for node in ast.walk(body)
        if isinstance(node, ast.GlobalDecl)
        for name in node.names
    }
    return [name for name in names if name not in local_global]


def referenced_names(node: ast.Node) -> Set[str]:
    """All identifier references below *node* (reads and write targets)."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def referenced_temps(node: ast.Node) -> Set[int]:
    return {
        n.index for n in ast.walk(node) if isinstance(n, (TempRef, BoundIn))
    }


class ExpressionCompiler:
    """Compile a normalized AST into a Python constructor expression."""

    def __init__(self, scope: Scope) -> None:
        self.scope = scope
        #: global names referenced — the emitter hoists one GlobalRef per
        #: name into the preamble so closures don't allocate per call
        self.globals_used: set = set()

    # -- closure-value compilation (atomic positions) -------------------------

    def value(self, node: ast.Node) -> str:
        """Python expression for an *atomic* node's value at call time."""
        if isinstance(node, ast.Literal):
            return repr(node.value)
        if isinstance(node, ast.NullLit):
            return "None"
        if isinstance(node, TempRef):
            return f"_t{node.index}.get()"
        if isinstance(node, ast.Keyword):
            return f"KeywordRef({node.name!r}).get()"
        if isinstance(node, ast.NativeCode):
            return f"({node.code.strip()})"
        if isinstance(node, ast.Name):
            kind = self.scope.resolve(node.id)
            if kind[0] == "self":
                return "self"
            if kind[0] == "local":
                return f"{kind[1]}.get()"
            if kind[0] == "field":
                return f"self.{kind[1]}"
            if kind[0] == "host":
                if kind[1] == "self":
                    return "self"
                return (
                    f"host_lookup((lambda: {kind[1]}), (lambda: self), "
                    f"{kind[1]!r})"
                )
            if kind[0] == "dynamic":
                return f"class_lookup(self, _ns, {node.id!r})"
            self.globals_used.add(node.id)
            return f"_g_{node.id}.get()"
        raise TransformError(
            f"non-atomic node {type(node).__name__} in value position", node.line
        )

    # -- iterator-constructor compilation ---------------------------------------

    def c(self, node: ast.Node) -> str:  # noqa: C901 - a big dispatch is clearest
        method = getattr(self, f"_c_{type(node).__name__}", None)
        if method is None:
            raise TransformError(
                f"cannot transform {type(node).__name__}", getattr(node, "line", 0)
            )
        return method(node)

    # atoms

    def _c_Literal(self, node: ast.Literal) -> str:
        from ..runtime.types import Cset

        if isinstance(node.value, Cset):
            return f"IconValue(Cset({node.value.string()!r}))"
        return f"IconValue({node.value!r})"

    def _c_NullLit(self, node: ast.NullLit) -> str:
        return "IconNullIterator()"

    def _c_Name(self, node: ast.Name) -> str:
        kind = self.scope.resolve(node.id)
        if kind[0] == "self":
            return "IconValue(self)"
        if kind[0] == "local":
            return f"IconVarIterator({kind[1]})"
        if kind[0] == "field":
            return f"IconVarIterator(FieldRef(self, {kind[1]!r}))"
        if kind[0] == "host":
            if kind[1] == "self":
                return "IconLazy(lambda: self)"
            return (
                f"IconLazy(lambda: host_lookup((lambda: {kind[1]}), "
                f"(lambda: self), {kind[1]!r}))"
            )
        if kind[0] == "dynamic":
            return f"IconLazy(lambda: class_lookup(self, _ns, {node.id!r}))"
        self.globals_used.add(node.id)
        return f"IconVarIterator(_g_{node.id})"

    def _c_TempRef(self, node: TempRef) -> str:
        return f"IconVarIterator(_t{node.index})"

    def _c_Keyword(self, node: ast.Keyword) -> str:
        if node.name == "fail":
            return "IconFail()"
        return f"IconVarIterator(KeywordRef({node.name!r}))"

    def _c_NativeCode(self, node: ast.NativeCode) -> str:
        # Host code lifted "into a singleton iterator over its closure".
        return f"IconLazy(lambda: ({node.code.strip()}))"

    def _c_ListLit(self, node: ast.ListLit) -> str:
        items = ", ".join(self.c(item) for item in node.items)
        return f"ListBuild({items})"

    # operators

    def _c_Unary(self, node: ast.Unary) -> str:
        operand = self.c(node.operand)
        if node.op == "!":
            return f"IconPromote({operand})"
        if node.op == "not":
            return f"IconNot({operand})"
        if node.op == "/":
            return f"IconNullTest({operand})"
        if node.op == "\\":
            return f"IconNonNullTest({operand})"
        if node.op == ".":
            return f"IconDeref({operand})"
        if node.op == "=":
            return f"IconInvokeIterator(lambda: tab_match({operand}.first()))"
        if node.op == "|":
            return f"IconRepeatAlt({operand})"
        if node.op == "^":
            # ^c — refresh a co-expression / restart an iterator.
            return (
                f"IconInvokeIterator(lambda: _jrefresh({operand}.first()))"
            )
        fn = UNARY_FN.get(node.op)
        if fn is None:
            raise TransformError(f"unknown unary operator {node.op!r}", node.line)
        return f"IconOperation({fn}, {operand}, name={node.op!r})"

    def _c_Binary(self, node: ast.Binary) -> str:
        if node.op == "&":
            left = (
                self._c_bound(node.left)
                if isinstance(node.left, BoundIn)
                else self.c(node.left)
            )
            return f"IconProduct({left}, {self.c(node.right)})"
        if node.op == "|":
            return f"IconConcat({self.c(node.left)}, {self.c(node.right)})"
        if node.op == "\\":
            return f"IconLimit({self.c(node.left)}, {self.c(node.right)})"
        fn = BINARY_FN.get(node.op)
        if fn is None:
            raise TransformError(f"unknown binary operator {node.op!r}", node.line)
        return (
            f"IconOperation({fn}, {self.c(node.left)}, {self.c(node.right)}, "
            f"name={node.op!r})"
        )

    def _c_bound(self, node: BoundIn) -> str:
        return f"IconIn(_t{node.index}, {self.c(node.expr)})"

    def _c_BoundIn(self, node: BoundIn) -> str:
        return self._c_bound(node)

    def _c_Assign(self, node: ast.Assign) -> str:
        target = self.c(node.target)
        value = self.c(node.value)
        op = node.op
        if op in ("=", ":="):
            return f"IconAssign({target}, {value})"
        if op == "<-":
            return f"IconRevAssign({target}, {value})"
        if op == ":=:":
            return f"IconSwap({target}, {value})"
        if op == "<->":
            return f"IconRevSwap({target}, {value})"
        if op.endswith(":="):
            base = op[:-2]
            fn = BINARY_FN.get(base)
            if fn is None:
                raise TransformError(f"unknown augmented op {op!r}", node.line)
            return f"IconAssign({target}, {value}, augment={fn})"
        raise TransformError(f"unknown assignment {op!r}", node.line)

    def _c_ToBy(self, node: ast.ToBy) -> str:
        if node.step is None:
            return f"IconToBy({self.c(node.start)}, {self.c(node.stop)})"
        return (
            f"IconToBy({self.c(node.start)}, {self.c(node.stop)}, "
            f"{self.c(node.step)})"
        )

    def _c_Scan(self, node: ast.Scan) -> str:
        return f"IconScan({self.c(node.subject)}, {self.c(node.body)})"

    def _c_Activate(self, node: ast.Activate) -> str:
        if node.transmit is None:
            return f"IconActivate({self.c(node.target)})"
        return f"IconActivate({self.c(node.target)}, {self.c(node.transmit)})"

    # the concurrency literals

    def _c_FirstClass(self, node: ast.FirstClass) -> str:
        return f"IconLazy(lambda: ({self.c(node.expr)}))"

    def _c_CoExprLit(self, node: ast.CoExprLit) -> str:
        return f"IconLazy(lambda: {self._coexpr(node.expr)})"

    def _c_PipeLit(self, node: ast.PipeLit) -> str:
        return f"IconLazy(lambda: {self._coexpr(node.expr)}.create_pipe())"

    def _coexpr(self, body: ast.Node) -> str:
        """Synthesize ``CoExpression(factory, env_getter)`` with shadowing.

        The factory takes the snapshot values and rebinds the referenced
        local cells to fresh shadow cells of the same (generated) names —
        Python's lexical scoping then makes the body expression compile
        identically inside and outside the co-expression.
        """
        shadowed = sorted(
            name
            for name in referenced_names(body)
            if self.scope.resolve(name)[0] == "local"
        )
        cells = [self.scope.locals_map[name] for name in shadowed]
        body_code = self.c(body)
        if not cells:
            return f"CoExpression(lambda: {body_code})"
        values = ", ".join(f"_sv{i}" for i in range(len(cells)))
        rebinds = ", ".join(
            f"shadow(_sv{i}, {name!r})" for i, name in enumerate(shadowed)
        )
        params = ", ".join(cells)
        getter = ", ".join(f"{cell}.get()" for cell in cells)
        return (
            f"CoExpression((lambda {values}: (lambda {params}: {body_code})"
            f"({rebinds})), (lambda: ({getter},)))"
        )

    # primaries

    def _c_Invoke(self, node: ast.Invoke) -> str:
        callee = self.value(node.callee)
        args = ", ".join(self.value(arg) for arg in node.args)
        call = f"invoke_value({callee}{', ' if args else ''}{args})"
        return f"IconInvokeIterator(lambda: {call})"

    def _c_NativeInvoke(self, node: ast.NativeInvoke) -> str:
        subject = self.value(node.subject)
        args = ", ".join(self.value(arg) for arg in node.args)
        return f"IconLazy(lambda: ({subject}).{node.name}({args}))"

    def _c_Field(self, node: ast.Field) -> str:
        return f"IconField({self.c(node.subject)}, {node.name!r})"

    def _c_Index(self, node: ast.Index) -> str:
        return f"IconIndex({self.c(node.subject)}, {self.c(node.index)})"

    def _c_Section(self, node: ast.Section) -> str:
        return (
            f"IconSection({self.c(node.subject)}, {self.c(node.low)}, "
            f"{self.c(node.high)}, mode={node.mode!r})"
        )

    # control constructs

    def _c_Block(self, node: ast.Block) -> str:
        statements = [stmt for stmt in node.body]
        parts = []
        for stmt in statements:
            if isinstance(stmt, ast.VarDecl):
                parts.extend(self._var_decl_inits(stmt))
            elif isinstance(stmt, ast.GlobalDecl):
                continue  # scope-only; no runtime effect
            else:
                parts.append(self.c(stmt))
        if not parts:
            return "IconNullIterator()"
        if len(parts) == 1:
            return f"IconSequence({parts[0]})"
        joined = ", ".join(parts)
        return f"IconSequence({joined})"

    def _var_decl_inits(self, node: ast.VarDecl) -> List[str]:
        out = []
        for name, init in zip(node.names, node.inits):
            if init is None:
                continue
            target = self.c(ast.Name(line=node.line, id=name))
            out.append(f"IconAssign({target}, {self.c(init)})")
        return out

    def _c_If(self, node: ast.If) -> str:
        if node.orelse is None:
            return f"IconIf({self.c(node.cond)}, {self.c(node.then)})"
        return (
            f"IconIf({self.c(node.cond)}, {self.c(node.then)}, "
            f"{self.c(node.orelse)})"
        )

    def _c_While(self, node: ast.While) -> str:
        if node.body is None:
            return f"IconWhile({self.c(node.cond)})"
        return f"IconWhile({self.c(node.cond)}, {self.c(node.body)})"

    def _c_Until(self, node: ast.Until) -> str:
        if node.body is None:
            return f"IconUntil({self.c(node.cond)})"
        return f"IconUntil({self.c(node.cond)}, {self.c(node.body)})"

    def _c_Every(self, node: ast.Every) -> str:
        if node.body is None:
            return f"IconEvery({self.c(node.gen)})"
        return f"IconEvery({self.c(node.gen)}, {self.c(node.body)})"

    def _c_RepeatLoop(self, node: ast.RepeatLoop) -> str:
        return f"IconRepeat({self.c(node.body)})"

    def _c_Case(self, node: ast.Case) -> str:
        branches = ", ".join(
            f"({self.c(sel)}, {self.c(body)})" for sel, body in node.branches
        )
        default = f", default={self.c(node.default)}" if node.default else ""
        return f"IconCase({self.c(node.subject)}, [{branches}]{default})"

    def _c_Suspend(self, node: ast.Suspend) -> str:
        expr = self.c(node.expr) if node.expr is not None else "IconNullIterator()"
        if node.do_clause is None:
            return f"IconSuspend({expr})"
        return f"IconSuspend({expr}, {self.c(node.do_clause)})"

    def _c_Return(self, node: ast.Return) -> str:
        if node.expr is None:
            return "IconReturn()"
        return f"IconReturn({self.c(node.expr)})"

    def _c_Fail(self, node: ast.Fail) -> str:
        return "IconFailStmt()"

    def _c_Break(self, node: ast.Break) -> str:
        if node.expr is None:
            return "IconBreak()"
        return f"IconBreak({self.c(node.expr)})"

    def _c_NextStmt(self, node: ast.NextStmt) -> str:
        return "IconNext()"

    def _c_VarDecl(self, node: ast.VarDecl) -> str:
        inits = self._var_decl_inits(node)
        if not inits:
            return "IconNullIterator()"
        if len(inits) == 1:
            return inits[0]
        return f"IconSequence({', '.join(inits)})"

    def _c_GlobalDecl(self, node: ast.GlobalDecl) -> str:
        return "IconNullIterator()"

    def _c_InitialClause(self, node) -> str:
        # The once-flag `_initial_flag` is in scope only inside methods
        # (a mutable default argument); emit_method guarantees it when an
        # initial clause is present.
        return f"IconInitial(_initial_flag, {self.c(node.expr)})"


# ---------------------------------------------------------------------------
# Module-mode emission.
# ---------------------------------------------------------------------------


class CodeWriter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str = "") -> None:
        self.lines.append(("    " * self.depth + text) if text else "")

    def indent(self) -> None:
        self.depth += 1

    def dedent(self) -> None:
        self.depth -= 1

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


PRELUDE = (
    "from repro.lang.prelude import *\n"
    "from repro.coexpr.calculus import refresh as _jrefresh\n"
    "_ns = globals()\n"
)


def emit_method(
    writer: CodeWriter,
    method: ast.MethodDecl,
    fields: Set[str] | None = None,
    in_class: bool = False,
    dynamic_self: bool = False,
    module_globals: Set[str] | None = None,
) -> None:
    """Emit one Junicon method as a host function (Figure 5's shape)."""
    body = normalize_expr(method.body)
    locals_list = collect_locals(
        method.body, method.params, fields, module_globals
    )
    scope = Scope(
        locals_map={name: f"{name}_r" for name in locals_list},
        fields=fields or set(),
        has_self=in_class,
        dynamic_self=dynamic_self and in_class,
    )
    compiler = ExpressionCompiler(scope)
    body_code = compiler.c(body)
    temps = count_temps(body)

    has_initial = any(
        isinstance(descendant, ast.InitialClause)
        for descendant in ast.walk(method.body)
    )
    static_names = [
        name
        for descendant in ast.walk(method.body)
        if isinstance(descendant, ast.VarDecl) and descendant.kind == "static"
        for name in descendant.names
    ]
    self_param = "self, " if in_class else ""
    flag_param = ", _initial_flag=[False]" if has_initial else ""
    static_param = ", _statics={}" if static_names else ""
    writer.emit(
        f"def {method.name}({self_param}*_args{flag_param}{static_param}):"
    )
    writer.indent()
    writer.emit(f'"""junicon method {method.name}({", ".join(method.params)})"""')
    if in_class:
        # Works both for generated classes (which create the cache in
        # __init__) and for host classes with embedded methods.
        writer.emit("_cache = getattr(self, '_method_cache', None)")
        writer.emit("if _cache is None:")
        writer.indent()
        writer.emit("try:")
        writer.indent()
        writer.emit("_cache = self._method_cache = MethodBodyCache()")
        writer.dedent()
        writer.emit("except AttributeError:  # __slots__ host class")
        writer.indent()
        writer.emit("_cache = _method_cache")
        writer.dedent()
        writer.dedent()
        cache_expr = "_cache"
    else:
        cache_expr = "_method_cache"
    writer.emit(f"_body = {cache_expr}.get_free({method.name!r})")
    writer.emit("if _body is not None:")
    writer.indent()
    writer.emit("return _body.reset().unpack_args(*_args)")
    writer.dedent()
    writer.emit("# Reified parameters and locals")
    for name in locals_list:
        if name in static_names:
            # Icon static: one persistent cell per method, shared by all
            # (cached) bodies — backed by the mutable default argument.
            writer.emit(
                f"{name}_r = _statics.setdefault({name!r}, "
                f"IconVar({name!r}).local())"
            )
        else:
            writer.emit(f"{name}_r = IconVar({name!r}).local()")
    if temps:
        writer.emit("# Normalization temporaries")
        for index in range(temps):
            writer.emit(f"_t{index} = IconTmp()")
    if compiler.globals_used:
        writer.emit("# Hoisted global references")
        for name in sorted(compiler.globals_used):
            writer.emit(f"_g_{name} = GlobalRef(_ns, {name!r})")
    writer.emit("# Unpack (variadic) parameters into the reified cells")
    writer.emit("def _unpack(*_p):")
    writer.indent()
    for position, name in enumerate(method.params):
        writer.emit(
            f"{name}_r.set(_p[{position}] if len(_p) > {position} else None)"
        )
    for name in locals_list[len(method.params):]:
        if name not in static_names:
            writer.emit(f"{name}_r.set(None)")
    writer.emit("return None")
    writer.dedent()
    writer.emit("# Method body")
    writer.emit(f"_body = IconMethodBody({body_code}, _unpack)")
    writer.emit(f"_body.set_cache({cache_expr}, {method.name!r})")
    writer.emit("return _body.unpack_args(*_args)")
    writer.dedent()
    writer.emit(f"{method.name}._icon_function = True")
    writer.emit()


def emit_class(
    writer: CodeWriter,
    decl: ast.ClassDecl,
    module_globals: Set[str] | None = None,
) -> None:
    field_names: List[str] = []
    for var_decl in decl.fields:
        field_names.extend(var_decl.names)
    bases = ", ".join(decl.supers) if decl.supers else ""
    writer.emit(f"class {decl.name}({bases}):")
    writer.indent()
    writer.emit(f'"""junicon class {decl.name}"""')
    writer.emit()
    writer.emit("def __init__(self, *args, **kwargs):")
    writer.indent()
    if decl.supers:
        writer.emit("super().__init__()")
    writer.emit("self._method_cache = MethodBodyCache()")
    for name in field_names:
        writer.emit(f"self.{name} = None")
    if field_names:
        writer.emit(f"_order = {tuple(field_names)!r}")
        writer.emit("for _name, _value in zip(_order, args):")
        writer.indent()
        writer.emit("setattr(self, _name, _value)")
        writer.dedent()
        writer.emit("for _name, _value in kwargs.items():")
        writer.indent()
        writer.emit("setattr(self, _name, _value)")
        writer.dedent()
        writer.emit("# Reified duals (paper V.C): name_r aliases the field")
        for name in field_names:
            writer.emit(
                f"self.{name}_r = IconVar({name!r}, "
                f"(lambda s=self: s.{name}), "
                f"(lambda v, s=self: setattr(s, {name!r}, v)))"
            )
    # Field initializers run after the duals exist.
    init_scope = Scope(fields=set(field_names), has_self=True)
    init_compiler = ExpressionCompiler(init_scope)
    for var_decl in decl.fields:
        for name, init in zip(var_decl.names, var_decl.inits):
            if init is not None:
                node = normalize_expr(init)
                temps = count_temps(node)
                init_code = init_compiler.c(node)
                binders = [f"_t{i}=IconTmp()" for i in range(temps)] + [
                    f"_g_{g}=GlobalRef(_ns, {g!r})"
                    for g in sorted(init_compiler.globals_used)
                ]
                init_compiler.globals_used.clear()
                writer.emit(
                    f"self.{name} = (lambda {', '.join(binders)}: "
                    f"{init_code})().first()"
                )
    writer.dedent()
    writer.emit()
    for method in decl.methods:
        if method.name.startswith("__native_"):
            # Verbatim host code embedded at class level.
            native = method.body.body[0]
            assert isinstance(native, ast.NativeCode)
            for line in native.code.strip("\n").splitlines():
                writer.emit(line.rstrip())
            writer.emit()
            continue
        emit_method(
            writer,
            method,
            fields=set(field_names),
            in_class=True,
            module_globals=module_globals,
        )
    if not decl.methods and not field_names:
        writer.emit("pass")
    writer.dedent()
    writer.emit()


def emit_record(writer: CodeWriter, decl: ast.RecordDecl) -> None:
    writer.emit(f"class {decl.name}:")
    writer.indent()
    writer.emit(f'"""junicon record {decl.name}({", ".join(decl.fields)})"""')
    writer.emit(f"_fields = {tuple(decl.fields)!r}")
    writer.emit("def __init__(self, *args):")
    writer.indent()
    for position, name in enumerate(decl.fields):
        writer.emit(
            f"self.{name} = args[{position}] if len(args) > {position} else None"
        )
    writer.dedent()
    writer.emit("def icon_type(self):")
    writer.indent()
    writer.emit(f"return {decl.name!r}")
    writer.dedent()
    writer.dedent()
    writer.emit()


def transform_program(
    source: str,
    native_blocks=None,
    known_globals: Set[str] | None = None,
    optimize=False,
) -> str:
    """Translate a Junicon translation unit into a Python module source.

    ``known_globals`` seeds the global-name context (names declared
    ``global`` in earlier inputs of the same session); declarations in
    *this* unit are added to it (the set is mutated for the caller).

    ``optimize`` selects the compile target for module-level procedures:
    ``False`` (default) builds interpreted iterator trees, ``True`` lowers
    supported shapes to native Python generators (see
    :mod:`repro.lang.optimize`), and ``"auto"`` consults the
    ``REPRO_OPTIMIZE`` environment variable.  Class methods and top-level
    statements always use the interpreted target.
    """
    from .optimize import emit_method_optimized, resolve_optimize

    optimizing = resolve_optimize(optimize)
    program = parse(source, native_blocks)
    module_globals: Set[str] = known_globals if known_globals is not None else set()
    for node in program.body:
        if isinstance(node, ast.GlobalDecl):
            module_globals.update(node.names)
    writer = CodeWriter()
    writer.emit('"""Generated by repro.lang.transform — edit the Junicon '
                'source instead."""')
    for line in PRELUDE.strip().splitlines():
        writer.emit(line)
    writer.emit("_method_cache = MethodBodyCache()")
    writer.emit()
    statement_counter = 0
    for node in program.body:
        if isinstance(node, ast.ClassDecl):
            emit_class(writer, node, module_globals=module_globals)
        elif isinstance(node, ast.RecordDecl):
            emit_record(writer, node)
        elif isinstance(node, ast.MethodDecl):
            if not (
                optimizing
                and emit_method_optimized(
                    writer, node, module_globals=module_globals
                )
            ):
                emit_method(writer, node, module_globals=module_globals)
        elif isinstance(node, ast.GlobalDecl):
            for name in node.names:
                writer.emit(f"_ns.setdefault({name!r}, None)")
            writer.emit()
        elif isinstance(node, ast.NativeCode):
            for line in node.code.strip("\n").splitlines():
                writer.emit(line.rstrip())
            writer.emit()
        else:
            # Top-level statement: evaluated (bounded) at module exec time.
            scope = Scope()  # all names global at top level
            normalized = normalize_expr(node)
            temps = count_temps(normalized)
            compiler = ExpressionCompiler(scope)
            name = f"_stmt_{statement_counter}"
            statement_counter += 1
            writer.emit(f"def {name}():")
            writer.indent()
            body_expr = compiler.c(normalized)
            for index in range(temps):
                writer.emit(f"_t{index} = IconTmp()")
            for gname in sorted(compiler.globals_used):
                writer.emit(f"_g_{gname} = GlobalRef(_ns, {gname!r})")
            writer.emit(f"return {body_expr}")
            writer.dedent()
            writer.emit(f"{name}().first()")
            writer.emit()
    return writer.text()


def transform_expression(source: str, native_blocks=None) -> str:
    """Translate one Junicon expression into a single Python expression.

    The result is an immediately-invoked lambda whose default arguments
    carry the region's temporaries and region-local variables; names that
    are only *read* resolve to the host scope through ordinary closures.
    """
    node = parse_expression(source, native_blocks)
    normalized = normalize_expr(node)
    assigned = sorted(
        {
            n.target.id
            for n in ast.walk(normalized)
            if isinstance(n, ast.Assign) and isinstance(n.target, ast.Name)
        }
    )
    scope = Scope(
        locals_map={name: f"_jx_{name}" for name in assigned},
        inline=True,
    )
    compiler = ExpressionCompiler(scope)
    body = compiler.c(normalized)
    temps = count_temps(normalized)
    binders = (
        [f"_jx_{name}=IconVar({name!r}).local()" for name in assigned]
        + [f"_t{index}=IconTmp()" for index in range(temps)]
        + [
            f"_g_{g}=GlobalRef(_ns, {g!r})"
            for g in sorted(compiler.globals_used)
        ]
    )
    if binders:
        return f"(lambda {', '.join(binders)}: {body})()"
    return f"({body})"
