"""The optimizing compile target — Junicon methods as native generators.

The default transformer (:mod:`repro.lang.transform`) builds a runtime
tree of :class:`~repro.runtime.iterator.IconIterator` nodes and interprets
it per element.  This pass recognizes the common normalized shapes —
alternation, products, ``every``/``do``, limitation, sequencing, to-by
ranges, arithmetic/comparison operations, invocation chains, ``case``,
loops, and ``suspend``-only bodies — and emits one straight Python
generator function per procedure: results travel by ``yield``, products
become nested ``for`` loops, and ``break``/``next``/``return``/``fail``
ride the same control signals the runtime already uses, so no per-step
iterator objects are allocated on the lowered paths.

What the pass does *not* understand it does not guess at: any unsupported
subtree (string scanning, co-expression literals and activation,
subscripts/sections/fields, reversible assignment and swaps, embedded host
code, ...) is compiled by the existing :class:`ExpressionCompiler` into a
runtime tree hoisted once per body construction and driven with
``.iterate()`` in place — a shape-by-shape fallback sharing the same
reified cells and temporaries, so lowered and interpreted fragments
interoperate inside one procedure.  Procedures using ``initial`` clauses
or ``static`` locals fall back wholesale to the interpreted target.

Observable deviations (pinned by the differential corpus): optimized
procedures deliver *dereferenced values* where the interpreted path may
suspend assignable references; both spellings are indistinguishable to a
caller, which dereferences results anyway.

Per translated unit a ``COMPILE`` event (shapes lowered vs fallbacks) is
emitted on the monitor bus; :meth:`repro.monitor.tracer.Tracer.compile_stats`
aggregates them.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, List, Optional, Set, Tuple

from ..errors import TransformError
from ..monitor.events import Event, EventKind, emit_lifecycle, lifecycle_enabled
from ..runtime.types import Cset
from . import ast_nodes as ast
from .normalize import BoundIn, TempRef, count_temps, normalize_expr
from .transform import (
    BINARY_FN,
    UNARY_FN,
    CodeWriter,
    ExpressionCompiler,
    Scope,
    collect_locals,
)

#: value functions whose result can be FAIL (comparisons return their right
#: operand or fail; ``?0`` fails) — lowered uses must guard.
CAN_FAIL = {
    "iops.num_lt",
    "iops.num_le",
    "iops.num_gt",
    "iops.num_ge",
    "iops.num_ne",
    "iops.lex_lt",
    "iops.lex_le",
    "iops.lex_gt",
    "iops.lex_ge",
    "iops.value_eq",
    "iops.value_ne",
    "iops.random_of",
}


class Unsupported(Exception):
    """A shape the optimizer does not lower (the raiser names it)."""


def contains_suspend(node: ast.Node) -> bool:
    """True when any descendant is a ``suspend`` statement.

    Such subtrees must stay lexically inside the procedure's generator
    frame (their results ``yield`` to the caller), so they can never move
    into a helper generator; conservative for co-expression literals,
    whose inner suspends would actually be fine to relocate.
    """
    return any(isinstance(n, ast.Suspend) for n in ast.walk(node))


def resolve_optimize(value) -> bool:
    """Resolve the ``optimize=True|False|"auto"`` knob to a decision.

    ``"auto"`` consults the ``REPRO_OPTIMIZE`` environment variable
    (truthy spellings: 1/true/on/yes) and defaults to off.
    """
    if value == "auto" or value is None:
        flag = os.environ.get("REPRO_OPTIMIZE", "").strip().lower()
        return flag in ("1", "true", "on", "yes")
    return bool(value)


def _emit_compile_event(unit: str, optimized: bool, lowered, fallbacks) -> None:
    if not lifecycle_enabled():
        return
    emit_lifecycle(
        Event(
            EventKind.COMPILE,
            node=unit,
            depth=0,
            value={
                "optimized": optimized,
                "lowered": sorted(set(lowered)),
                "fallbacks": sorted(set(fallbacks)),
            },
        )
    )


# A continuation receives the writer and a Python expression producing one
# (already dereferenced) result value; it emits the consuming code.
Continuation = Callable[[CodeWriter, str], None]


class GeneratorLowering:
    """Lower one normalized method body into native generator code.

    The emitter is continuation-passing: ``results(w, node, k)`` writes
    code that invokes ``k`` once per result of *node*.  Every lowering is
    transactional — when a sub-shape raises :class:`Unsupported`, the
    partial emission rolls back and the whole sub-tree is embedded as an
    interpreted runtime node instead.
    """

    def __init__(self, method: ast.MethodDecl, module_globals: Set[str] | None = None) -> None:
        self.method = method
        self.body = normalize_expr(method.body)
        self.locals_list = collect_locals(method.body, method.params, None, module_globals)
        self.scope = Scope(locals_map={name: f"{name}_r" for name in self.locals_list})
        #: the interpreted compiler, for embedded fallback subtrees — it
        #: resolves against the same scope, so fallbacks share the cells
        self.rc = ExpressionCompiler(self.scope)
        self.temps = count_temps(self.body)
        self.hoists: List[str] = []
        self.helpers: List[List[str]] = []
        self.lowered: List[str] = []
        self.fallbacks: List[str] = []
        self._counter = 0

    # -- bookkeeping -----------------------------------------------------------

    def fresh(self, prefix: str = "_v") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    @contextmanager
    def block(self, w: CodeWriter):
        """An indented suite that is never syntactically empty."""
        w.indent()
        mark = len(w.lines)
        yield
        if len(w.lines) == mark:
            w.emit("pass")
        w.dedent()

    def _snapshot(self, w: CodeWriter) -> tuple:
        return (
            len(w.lines),
            w.depth,
            len(self.hoists),
            len(self.helpers),
            len(self.lowered),
            len(self.fallbacks),
        )

    def _rollback(self, w: CodeWriter, snap: tuple) -> None:
        del w.lines[snap[0]:]
        w.depth = snap[1]
        del self.hoists[snap[2]:]
        del self.helpers[snap[3]:]
        del self.lowered[snap[4]:]
        del self.fallbacks[snap[5]:]

    def materialize(self, w: CodeWriter, expr: str) -> str:
        """Pin *expr* into a variable unless it already is one."""
        if expr.isidentifier():
            return expr
        var = self.fresh()
        w.emit(f"{var} = {expr}")
        return var

    # -- atomic values ---------------------------------------------------------

    def atom_value(self, node: ast.Node) -> str:
        """Call-time value of an atomic node (normalized call positions)."""
        if isinstance(node, ast.Literal) and isinstance(node.value, Cset):
            var = self.fresh("_c")
            self.hoists.append(f"{var} = Cset({node.value.string()!r})")
            return var
        return self.rc.value(node)

    # -- fallback embedding ----------------------------------------------------

    def embed_node(self, node: ast.Node) -> str:
        """Hoist *node* as an interpreted runtime tree, built once."""
        code = self.rc.c(node)
        var = self.fresh("_e")
        self.hoists.append(f"{var} = {code}")
        self.fallbacks.append(type(node).__name__)
        return var

    def _embed_results(self, w: CodeWriter, node: ast.Node, k: Continuation) -> None:
        var = self.embed_node(node)
        r = self.fresh("_r")
        w.emit(f"for {r} in {var}.iterate():")
        with self.block(w):
            if contains_suspend(node):
                # Suspension envelopes are caller results: yield them from
                # the procedure's generator frame, exactly as the
                # interpreted root would after unwrapping.
                w.emit(f"if isinstance({r}, Suspension):")
                with self.block(w):
                    w.emit(f"yield deref({r}.value)")
                w.emit("else:")
                with self.block(w):
                    k(w, f"deref({r})")
            else:
                k(w, f"deref({r})")

    def _embed_statement(self, w: CodeWriter, node: ast.Node, bounded: bool) -> None:
        var = self.embed_node(node)
        r = self.fresh("_r")
        w.emit(f"for {r} in {var}.iterate():")
        with self.block(w):
            if contains_suspend(node):
                w.emit(f"if isinstance({r}, Suspension):")
                with self.block(w):
                    w.emit(f"yield deref({r}.value)")
                if bounded:
                    w.emit("else:")
                    with self.block(w):
                        w.emit("break")
            elif bounded:
                w.emit("break")
            else:
                w.emit("pass")

    # -- simple (deterministic, at-most-one-result) expressions ---------------

    def simple(self, node: ast.Node, allow_fail: bool = True) -> Optional[Tuple[str, bool]]:
        """``(python_expr, can_fail)`` for a single-result expression.

        Covers atoms, compositions of non-generating value operations, and
        plain assignment of a simple value (``Ref.set`` returns the value,
        which is what makes assignment an expression here).  Returns None
        when the node can generate, signal, or is otherwise not simple.
        """
        if isinstance(node, ast.Literal):
            if isinstance(node.value, Cset):
                return None  # needs hoisting; not worth it inline
            return repr(node.value), False
        if isinstance(node, ast.NullLit):
            return "None", False
        if isinstance(node, TempRef):
            return f"_t{node.index}.get()", False
        if isinstance(node, ast.Keyword):
            if node.name == "fail":
                return None
            return self.rc.value(node), False
        if isinstance(node, ast.Name):
            kind = self.scope.resolve(node.id)
            if kind[0] not in ("local", "global"):
                return None
            return self.rc.value(node), False
        if isinstance(node, ast.Unary) and node.op in UNARY_FN:
            operand = self.simple(node.operand, allow_fail=False)
            if operand is None:
                return None
            fn = UNARY_FN[node.op]
            can_fail = fn in CAN_FAIL
            if can_fail and not allow_fail:
                return None
            return f"{fn}({operand[0]})", can_fail
        if isinstance(node, ast.Binary) and node.op in BINARY_FN:
            left = self.simple(node.left, allow_fail=False)
            right = self.simple(node.right, allow_fail=False)
            if left is None or right is None:
                return None
            fn = BINARY_FN[node.op]
            can_fail = fn in CAN_FAIL
            if can_fail and not allow_fail:
                return None
            return f"{fn}({left[0]}, {right[0]})", can_fail
        if isinstance(node, ast.Assign) and node.op in ("=", ":="):
            cell = self._assign_cell(node.target)
            if cell is None:
                return None
            value = self.simple(node.value, allow_fail=False)
            if value is None:
                return None
            return f"{cell}.set({value[0]})", False
        return None

    def _assign_cell(self, target: ast.Node) -> Optional[str]:
        """The generated cell expression for a directly assignable target."""
        if isinstance(target, TempRef):
            return f"_t{target.index}"
        if isinstance(target, ast.Name):
            kind = self.scope.resolve(target.id)
            if kind[0] == "local":
                return kind[1]
            if kind[0] == "global":
                self.rc.globals_used.add(target.id)
                return f"_g_{target.id}"
        return None

    # -- bounded evaluation (first result or FAIL) -----------------------------

    def bounded(self, w: CodeWriter, node: ast.Node) -> str:
        """Emit code computing *node*'s first result; returns the variable
        (holding FAIL on failure)."""
        s = self.simple(node)
        if s is not None:
            var = self.fresh()
            w.emit(f"{var} = {s[0]}")
            return var
        if isinstance(node, ast.Assign) and node.op in ("=", ":="):
            cell = self._assign_cell(node.target)
            if cell is not None:
                var = self.bounded(w, node.value)
                w.emit(f"if {var} is not FAIL:")
                with self.block(w):
                    w.emit(f"{cell}.set({var})")
                return var
        if isinstance(node, ast.ListLit):
            return self._bounded_list(w, node)
        if isinstance(node, ast.Invoke):
            return self._bounded_invoke(w, node)
        chain = self._bounded_chain(w, node)
        if chain is not None:
            return chain
        if contains_suspend(node):
            raise Unsupported("suspend in bounded position")
        helper = self.helper(node)
        var = self.fresh()
        w.emit(f"{var} = first_result({helper}())")
        return var

    def _bounded_list(self, w: CodeWriter, node: ast.ListLit) -> str:
        self.lowered.append("list")
        parts = []
        for item in node.items:
            if isinstance(item, ast.Literal) and not isinstance(item.value, Cset):
                parts.append(repr(item.value))
            elif isinstance(item, ast.NullLit):
                parts.append("None")
            else:
                v = self.bounded(w, item)
                parts.append(f"None if {v} is FAIL else {v}")
        var = self.fresh()
        w.emit(f"{var} = [{', '.join(parts)}]")
        return var

    def _bounded_invoke(self, w: CodeWriter, node: ast.Invoke) -> str:
        self.lowered.append("invoke")
        callee = self.atom_value(node.callee)
        args = "".join(f", {self.atom_value(arg)}" for arg in node.args)
        var = self.fresh()
        w.emit(f"{var} = first_result(call_results({callee}{args}))")
        return var

    def _bounded_chain(self, w: CodeWriter, node: ast.Node) -> Optional[str]:
        """Fast path for a normalized call chain ``(t0 in e0) & ... & f(...)``
        whose bindings are simple: no backtracking is possible, so the
        bound expression is straight-line assignments plus one call."""
        parts = _flatten_product(node)
        if len(parts) < 2 or not isinstance(parts[-1], ast.Invoke):
            return None
        bindings = []
        for part in parts[:-1]:
            if not isinstance(part, BoundIn):
                return None
            expr = self.simple(part.expr, allow_fail=False)
            if expr is None:
                return None
            bindings.append((part.index, expr[0]))
        for index, expr in bindings:
            w.emit(f"_t{index}.set({expr})")
        return self._bounded_invoke(w, parts[-1])

    # -- helper generators -----------------------------------------------------

    def helper(self, node: ast.Node) -> str:
        """Compile *node* into a method-scope generator function ``_hN``.

        Helpers close over the reified cells/temporaries/hoists only, never
        over the main generator's frame, so they can be re-invoked freely.
        Suspend-bearing subtrees are refused: their yields belong to the
        procedure's own generator frame.
        """
        if contains_suspend(node):
            raise Unsupported("suspend inside helper")
        name = self.fresh("_h")
        hw = CodeWriter()
        hw.emit(f"def {name}():")
        hw.indent()
        mark = len(hw.lines)
        self.results(hw, node, lambda w, v: w.emit(f"yield {v}"))
        if not any("yield" in line for line in hw.lines[mark:]):
            if len(hw.lines) == mark:
                hw.emit("pass")
            hw.emit("return")
            hw.emit("yield None  # unreachable; makes this a generator")
        hw.dedent()
        self.helpers.append(hw.lines)
        return name

    # -- result-sequence emission ----------------------------------------------

    def results(self, w: CodeWriter, node: ast.Node, k: Continuation) -> None:
        """Emit code invoking *k* once per result of *node* (transactional:
        unsupported shapes roll back and embed the interpreted tree)."""
        snap = self._snapshot(w)
        try:
            self._results(w, node, k)
        except Unsupported:
            self._rollback(w, snap)
            self._embed_results(w, node, k)

    def _results(self, w: CodeWriter, node: ast.Node, k: Continuation) -> None:
        s = self.simple(node)
        if s is not None:
            expr, can_fail = s
            if isinstance(node, (ast.Literal, ast.NullLit)):
                k(w, expr)
                return
            var = self.materialize(w, expr)
            if can_fail:
                w.emit(f"if {var} is not FAIL:")
                with self.block(w):
                    k(w, var)
            else:
                k(w, var)
            return
        handler = getattr(self, f"_r_{type(node).__name__}", None)
        if handler is None:
            raise Unsupported(type(node).__name__)
        handler(w, node, k)

    # atoms that are not simple

    def _r_Keyword(self, w: CodeWriter, node: ast.Keyword, k: Continuation) -> None:
        if node.name == "fail":
            self.lowered.append("keyword-fail")
            return  # &fail: no results
        raise Unsupported("keyword")

    def _r_ListLit(self, w: CodeWriter, node: ast.ListLit, k: Continuation) -> None:
        k(w, self._bounded_list(w, node))

    # operators

    def _r_BoundIn(self, w: CodeWriter, node: BoundIn, k: Continuation) -> None:
        def bind(bw: CodeWriter, v: str) -> None:
            vv = self.materialize(bw, v)
            bw.emit(f"_t{node.index}.set({vv})")
            k(bw, vv)

        self.results(w, node.expr, bind)

    def _r_Unary(self, w: CodeWriter, node: ast.Unary, k: Continuation) -> None:
        op = node.op
        if op == "!":
            self.lowered.append("promote")

            def promote(pw: CodeWriter, v: str) -> None:
                p = self.fresh("_r")
                pw.emit(f"for {p} in promote_value({v}):")
                with self.block(pw):
                    k(pw, f"deref({p})")

            self.results(w, node.operand, promote)
            return
        if op == "not":
            self.lowered.append("not")
            v = self.bounded(w, node.operand)
            w.emit(f"if {v} is FAIL:")
            with self.block(w):
                k(w, "None")
            return
        if op in ("/", "\\"):
            self.lowered.append("null-test")
            test = "is None" if op == "/" else "is not None"

            def null_test(nw: CodeWriter, v: str) -> None:
                vv = self.materialize(nw, v)
                nw.emit(f"if {vv} {test}:")
                with self.block(nw):
                    k(nw, vv)

            self.results(w, node.operand, null_test)
            return
        if op == ".":
            # results are already dereferenced in lowered code
            self.results(w, node.operand, k)
            return
        if op == "|":
            self.lowered.append("repeat-alt")
            w.emit("while True:")
            with self.block(w):
                flag = self.fresh("_p")
                w.emit(f"{flag} = False")

                def produced(fw: CodeWriter, v: str) -> None:
                    fw.emit(f"{flag} = True")
                    k(fw, v)

                self.results(w, node.operand, produced)
                w.emit(f"if not {flag}:")
                with self.block(w):
                    w.emit("break")
            return
        if op in UNARY_FN:
            fn = UNARY_FN[op]
            self.lowered.append("operation")

            def apply(uw: CodeWriter, v: str) -> None:
                out = self.fresh()
                uw.emit(f"{out} = {fn}({v})")
                if fn in CAN_FAIL:
                    uw.emit(f"if {out} is not FAIL:")
                    with self.block(uw):
                        k(uw, out)
                else:
                    k(uw, out)

            self.results(w, node.operand, apply)
            return
        raise Unsupported(f"unary {op}")

    def _r_Binary(self, w: CodeWriter, node: ast.Binary, k: Continuation) -> None:
        op = node.op
        if op == "&":
            self.lowered.append("product")
            self.results(w, node.left, lambda pw, _v: self.results(pw, node.right, k))
            return
        if op == "|":
            self.lowered.append("alternation")
            self.results(w, node.left, k)
            self.results(w, node.right, k)
            return
        if op == "\\":
            self._r_limit(w, node, k)
            return
        if op in BINARY_FN:
            fn = BINARY_FN[op]
            self.lowered.append("operation")

            def with_left(lw: CodeWriter, a: str) -> None:
                # IconOperation fixes the left value once per left result,
                # then iterates the right operand.
                aa = self.materialize(lw, a)

                def with_right(rw: CodeWriter, b: str) -> None:
                    out = self.fresh()
                    rw.emit(f"{out} = {fn}({aa}, {b})")
                    if fn in CAN_FAIL:
                        rw.emit(f"if {out} is not FAIL:")
                        with self.block(rw):
                            k(rw, out)
                    else:
                        k(rw, out)

                self.results(lw, node.right, with_right)

            self.results(w, node.left, with_left)
            return
        raise Unsupported(f"binary {op}")

    def _r_limit(self, w: CodeWriter, node: ast.Binary, k: Continuation) -> None:
        self.lowered.append("limitation")
        quota = self.bounded(w, node.right)
        helper = self.helper(node.left)
        w.emit(f"if {quota} is not FAIL:")
        with self.block(w):
            qn = self.fresh()
            w.emit(f"{qn} = int({quota})")
            w.emit(f"if {qn} > 0:")
            with self.block(w):
                count = self.fresh("_n")
                w.emit(f"{count} = 0")
                r = self.fresh("_r")
                w.emit(f"for {r} in {helper}():")
                with self.block(w):
                    k(w, r)
                    w.emit(f"{count} += 1")
                    w.emit(f"if {count} >= {qn}:")
                    with self.block(w):
                        w.emit("break")

    def _r_ToBy(self, w: CodeWriter, node: ast.ToBy, k: Continuation) -> None:
        self.lowered.append("to-by")

        def walk(sw: CodeWriter, start: str, stop: str, step) -> None:
            i = self.fresh("_i")
            limit = self.fresh()
            sw.emit(f"{i} = iops.need_number({start})")
            sw.emit(f"{limit} = iops.need_number({stop})")
            if step is None:
                # `to` without `by`: ascending by 1, no sign dispatch
                sw.emit(f"while {i} <= {limit}:")
                with self.block(sw):
                    k(sw, i)
                    sw.emit(f"{i} += 1")
                return
            st = self.fresh()
            sw.emit(f"{st} = iops.need_number({step})")
            sw.emit(f"if {st} == 0:")
            with self.block(sw):
                sw.emit('raise iops.IconValueError("to-by: by clause of 0")')
            sw.emit(f"if {st} > 0:")
            with self.block(sw):
                sw.emit(f"while {i} <= {limit}:")
                with self.block(sw):
                    k(sw, i)
                    sw.emit(f"{i} += {st}")
            sw.emit("else:")
            with self.block(sw):
                sw.emit(f"while {i} >= {limit}:")
                with self.block(sw):
                    k(sw, i)
                    sw.emit(f"{i} += {st}")

        def with_start(aw: CodeWriter, a: str) -> None:
            a2 = self.materialize(aw, a)

            def with_stop(bw: CodeWriter, b: str) -> None:
                if node.step is None:
                    walk(bw, a2, b, None)
                else:
                    self.results(bw, node.step, lambda cw, c: walk(cw, a2, b, c))

            self.results(aw, node.stop, with_stop)

        self.results(w, node.start, with_start)

    def _r_Assign(self, w: CodeWriter, node: ast.Assign, k: Continuation) -> None:
        cell = self._assign_cell(node.target)
        if cell is None:
            raise Unsupported("assign target")
        op = node.op
        if op in ("=", ":="):
            self.lowered.append("assign")

            def store(awr: CodeWriter, v: str) -> None:
                vv = self.materialize(awr, v)
                awr.emit(f"{cell}.set({vv})")
                k(awr, vv)

            self.results(w, node.value, store)
            return
        if op.endswith(":=") and op[:-2] in BINARY_FN:
            self.lowered.append("augmented-assign")
            fn = BINARY_FN[op[:-2]]

            def augment(awr: CodeWriter, v: str) -> None:
                out = self.fresh()
                awr.emit(f"{out} = {fn}({cell}.get(), {v})")
                # A failing augmentation vetoes this assignment and moves
                # on to the value expression's next result (IconAssign).
                awr.emit(f"if {out} is not FAIL:")
                with self.block(awr):
                    awr.emit(f"{cell}.set({out})")
                    k(awr, out)

            self.results(w, node.value, augment)
            return
        raise Unsupported(f"assign {op}")

    def _r_Invoke(self, w: CodeWriter, node: ast.Invoke, k: Continuation) -> None:
        self.lowered.append("invoke")
        callee = self.atom_value(node.callee)
        args = "".join(f", {self.atom_value(arg)}" for arg in node.args)
        r = self.fresh("_r")
        w.emit(f"for {r} in call_results({callee}{args}):")
        with self.block(w):
            k(w, r)

    # control constructs in expression position

    def _r_Block(self, w: CodeWriter, node: ast.Block, k: Continuation) -> None:
        self.lowered.append("block")
        parts = _sequence_parts(node)
        if not parts:
            k(w, "None")  # an empty block succeeds with the null value
            return
        for part in parts[:-1]:
            self.statement(w, part, bounded=True)
        self.results(w, parts[-1], k)

    def _r_If(self, w: CodeWriter, node: ast.If, k: Continuation) -> None:
        self.lowered.append("if")
        cond = self.bounded(w, node.cond)
        w.emit(f"if {cond} is not FAIL:")
        with self.block(w):
            self.results(w, node.then, k)
        if node.orelse is not None:
            w.emit("else:")
            with self.block(w):
                self.results(w, node.orelse, k)

    def _r_Case(self, w: CodeWriter, node: ast.Case, k: Continuation) -> None:
        self._case(w, node, lambda bw, body: self.results(bw, body, k))

    def _case(self, w: CodeWriter, node: ast.Case, run_body) -> None:
        self.lowered.append("case")
        subject = self.bounded(w, node.subject)
        w.emit(f"if {subject} is not FAIL:")
        with self.block(w):
            matched = self.fresh("_m")
            w.emit(f"{matched} = False")
            for selector, body in node.branches:
                helper = self.helper(selector)
                w.emit(f"if not {matched}:")
                with self.block(w):
                    cand = self.fresh("_r")
                    w.emit(f"for {cand} in {helper}():")
                    with self.block(w):
                        w.emit(f"if case_match({cand}, {subject}):")
                        with self.block(w):
                            w.emit(f"{matched} = True")
                            w.emit("break")
                    w.emit(f"if {matched}:")
                    with self.block(w):
                        run_body(w, body)
            if node.default is not None:
                w.emit(f"if not {matched}:")
                with self.block(w):
                    run_body(w, node.default)

    # -- statement emission ----------------------------------------------------

    def statement(self, w: CodeWriter, node: ast.Node, bounded: bool = True) -> None:
        """Emit *node* as a statement.  ``bounded`` evaluation stops at the
        first outcome (non-final statements); the procedure root's final
        statement is fully iterated (``bounded=False``), matching
        :class:`~repro.runtime.invoke.IconMethodBody`."""
        snap = self._snapshot(w)
        try:
            self._statement(w, node, bounded)
        except Unsupported:
            self._rollback(w, snap)
            self._embed_statement(w, node, bounded)

    def _drain_break(self, w: CodeWriter, signal: str, bounded: bool) -> None:
        r = self.fresh("_r")
        w.emit(f"for {r} in break_results({signal}):")
        with self.block(w):
            w.emit("break" if bounded else "pass")

    def _statement(self, w: CodeWriter, node: ast.Node, bounded: bool) -> None:
        if isinstance(node, ast.Block):
            self.lowered.append("block")
            parts = _sequence_parts(node)
            for part in parts[:-1]:
                self.statement(w, part, bounded=True)
            if parts:
                self.statement(w, parts[-1], bounded)
            return
        if isinstance(node, ast.Suspend):
            self.lowered.append("suspend")
            if node.expr is None:
                w.emit("yield None")
                if node.do_clause is not None:
                    self.statement(w, node.do_clause, bounded=True)
                return

            def deliver(sw: CodeWriter, v: str) -> None:
                sw.emit(f"yield {v}")
                if node.do_clause is not None:
                    self.statement(sw, node.do_clause, bounded=True)

            self.results(w, node.expr, deliver)
            return
        if isinstance(node, ast.Return):
            self.lowered.append("return")
            if node.expr is None:
                w.emit("raise ReturnSignal(None)")
                return
            v = self.bounded(w, node.expr)
            # FAIL rides the signal: the body wrapper turns it into failure.
            w.emit(f"raise ReturnSignal({v})")
            return
        if isinstance(node, ast.Fail):
            self.lowered.append("fail")
            w.emit("raise FailSignal()")
            return
        if isinstance(node, ast.Break):
            self.lowered.append("break")
            if node.expr is None:
                w.emit("raise BreakSignal(None)")
                return
            # The signal carries the un-evaluated value expression; the
            # catching loop iterates it lazily, as the runtime does.
            var = self.fresh("_e")
            self.hoists.append(f"{var} = {self.rc.c(node.expr)}")
            w.emit(f"raise BreakSignal({var})")
            return
        if isinstance(node, ast.NextStmt):
            self.lowered.append("next")
            w.emit("raise NextSignal()")
            return
        if isinstance(node, ast.VarDecl):
            if node.kind != "local":
                raise Unsupported("static declaration")
            for name, init in zip(node.names, node.inits):
                if init is not None:
                    assign = ast.Assign(
                        line=node.line,
                        op=":=",
                        target=ast.Name(line=node.line, id=name),
                        value=init,
                    )
                    self.statement(w, assign, bounded=True)
            return
        if isinstance(node, ast.GlobalDecl):
            return  # scope-only; no runtime effect
        if isinstance(node, ast.If):
            self.lowered.append("if")
            cond = self.bounded(w, node.cond)
            w.emit(f"if {cond} is not FAIL:")
            with self.block(w):
                self.statement(w, node.then, bounded)
            if node.orelse is not None:
                w.emit("else:")
                with self.block(w):
                    self.statement(w, node.orelse, bounded)
            return
        if isinstance(node, (ast.While, ast.Until)):
            self._loop(w, node, bounded)
            return
        if isinstance(node, ast.RepeatLoop):
            self.lowered.append("repeat")
            signal = self.fresh("_s")
            w.emit("while True:")
            with self.block(w):
                w.emit("try:")
                with self.block(w):
                    self.statement(w, node.body, bounded=True)
                w.emit("except NextSignal:")
                with self.block(w):
                    w.emit("continue")
                w.emit(f"except BreakSignal as {signal}:")
                with self.block(w):
                    self._drain_break(w, signal, bounded)
                    w.emit("break")
            return
        if isinstance(node, ast.Every):
            self._every(w, node, bounded)
            return
        if isinstance(node, ast.Case):
            self._case(w, node, lambda bw, body: self.statement(bw, body, bounded))
            return
        # A plain expression in statement position.
        if bounded:
            if contains_suspend(node):
                raise Unsupported("suspend in bounded statement")
            self.bounded(w, node)
        else:
            self.results(w, node, lambda rw, _v: rw.emit("pass"))

    def _loop(self, w: CodeWriter, node, bounded: bool) -> None:
        until = isinstance(node, ast.Until)
        self.lowered.append("until" if until else "while")
        s1 = self.fresh("_s")
        s2 = self.fresh("_s")
        w.emit("while True:")
        with self.block(w):
            w.emit("try:")
            with self.block(w):
                cond = self.bounded(w, node.cond)
            w.emit("except NextSignal:")
            with self.block(w):
                w.emit("continue")
            w.emit(f"except BreakSignal as {s1}:")
            with self.block(w):
                self._drain_break(w, s1, bounded)
                w.emit("break")
            stop_test = "is not FAIL" if until else "is FAIL"
            w.emit(f"if {cond} {stop_test}:")
            with self.block(w):
                w.emit("break")
            if node.body is not None:
                w.emit("try:")
                with self.block(w):
                    self.statement(w, node.body, bounded=True)
                w.emit("except NextSignal:")
                with self.block(w):
                    w.emit("continue")
                w.emit(f"except BreakSignal as {s2}:")
                with self.block(w):
                    self._drain_break(w, s2, bounded)
                    w.emit("break")

    def _every(self, w: CodeWriter, node: ast.Every, bounded: bool) -> None:
        helper = self.helper(node.gen)
        self.lowered.append("every")
        s1 = self.fresh("_s")
        s2 = self.fresh("_s")
        r = self.fresh("_r")
        w.emit("try:")
        with self.block(w):
            w.emit(f"for {r} in {helper}():")
            with self.block(w):
                if node.body is not None:
                    w.emit("try:")
                    with self.block(w):
                        self.statement(w, node.body, bounded=True)
                    w.emit("except NextSignal:")
                    with self.block(w):
                        w.emit("continue")
                    w.emit(f"except BreakSignal as {s1}:")
                    with self.block(w):
                        self._drain_break(w, s1, bounded)
                        w.emit("break")
        w.emit(f"except BreakSignal as {s2}:")
        with self.block(w):
            self._drain_break(w, s2, bounded)


def _flatten_product(node: ast.Node) -> List[ast.Node]:
    if isinstance(node, ast.Binary) and node.op == "&":
        return _flatten_product(node.left) + _flatten_product(node.right)
    return [node]


def _sequence_parts(node: ast.Block) -> List[ast.Node]:
    parts: List[ast.Node] = []
    for stmt in node.body:
        if isinstance(stmt, ast.GlobalDecl):
            continue
        parts.append(stmt)
    return parts


# ---------------------------------------------------------------------------
# Method assembly (the optimized sibling of transform.emit_method).
# ---------------------------------------------------------------------------


def emit_method_optimized(
    writer: CodeWriter,
    method: ast.MethodDecl,
    module_globals: Set[str] | None = None,
) -> bool:
    """Emit *method* as a native generator function; True on success.

    Returns False (emitting nothing) for whole-method fallbacks — the
    caller then uses :func:`repro.lang.transform.emit_method`.  Either way
    one ``COMPILE`` event describes the outcome.
    """
    reasons = _whole_method_fallback_reasons(method)
    if reasons:
        _emit_compile_event(method.name, False, [], reasons)
        return False
    low = GeneratorLowering(method, module_globals)
    gen = CodeWriter()
    try:
        low.statement(gen, low.body, bounded=False)
    except TransformError:
        _emit_compile_event(method.name, False, [], ["transform-error"])
        return False
    if not any("yield" in line for line in gen.lines):
        gen.emit("return")
        gen.emit("yield None  # unreachable; makes this a generator")
    if not gen.lines:
        gen.emit("yield None")

    name = method.name
    writer.emit(f"def {name}(*_args):")
    writer.indent()
    writer.emit(
        f'"""junicon method {name}({", ".join(method.params)}) [optimized]"""'
    )
    writer.emit(f"_body = _method_cache.get_free({name!r})")
    writer.emit("if _body is not None:")
    writer.indent()
    writer.emit("return _body.reset().unpack_args(*_args)")
    writer.dedent()
    writer.emit("# Reified parameters and locals")
    for local in low.locals_list:
        writer.emit(f"{local}_r = IconVar({local!r}).local()")
    if low.temps:
        writer.emit("# Normalization temporaries")
        for index in range(low.temps):
            writer.emit(f"_t{index} = IconTmp()")
    if low.rc.globals_used:
        writer.emit("# Hoisted global references")
        for gname in sorted(low.rc.globals_used):
            writer.emit(f"_g_{gname} = GlobalRef(_ns, {gname!r})")
    if low.hoists:
        writer.emit("# Hoisted constants and interpreted fallback subtrees")
        for line in low.hoists:
            writer.emit(line)
    for helper_lines in low.helpers:
        for line in helper_lines:
            writer.emit(line)
    writer.emit("# Unpack (variadic) parameters into the reified cells")
    writer.emit("def _unpack(*_p):")
    writer.indent()
    for position, param in enumerate(method.params):
        writer.emit(
            f"{param}_r.set(_p[{position}] if len(_p) > {position} else None)"
        )
    for local in low.locals_list[len(method.params):]:
        writer.emit(f"{local}_r.set(None)")
    writer.emit("return None")
    writer.dedent()
    writer.emit("# Method body, lowered to one native generator")
    writer.emit("def _gen():")
    writer.indent()
    for line in gen.lines:
        writer.emit(line)
    writer.dedent()
    writer.emit("_body = IconOptimizedBody(_gen, _unpack)")
    writer.emit(f"_body.set_cache(_method_cache, {name!r})")
    writer.emit("return _body.unpack_args(*_args)")
    writer.dedent()
    writer.emit(f"{name}._icon_function = True")
    writer.emit()
    _emit_compile_event(name, True, low.lowered, low.fallbacks)
    return True


def _whole_method_fallback_reasons(method: ast.MethodDecl) -> List[str]:
    reasons = []
    for descendant in ast.walk(method.body):
        if isinstance(descendant, ast.InitialClause):
            reasons.append("initial-clause")
        elif isinstance(descendant, ast.VarDecl) and descendant.kind == "static":
            reasons.append("static-locals")
    return sorted(set(reasons))
