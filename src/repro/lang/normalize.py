"""Normalization of primary expressions (paper Section V.A).

The key transformation that makes embedding possible: nested generators in
*invocation position* are moved out into products of bound iterators so
that the residual call is a plain host-language call over already-bound
values::

    e(ex, ey)   →   (f in ⟦e⟧) & (x in ⟦ex⟧) & (y in ⟦ey⟧) & (o in !f(x,y))

Two synthetic AST nodes carry the result:

* :class:`BoundIn` — ``(x_i in ⟦e⟧)``: bind each result of a flattened
  sub-expression to a compiler temporary (``IconTmp`` at runtime);
* :class:`TempRef` — a reference to such a temporary.

Atomic pieces (literals, names, temporaries) are *not* hoisted — exactly
as in the paper's Figure 5, where the simple callee ``f`` is dereferenced
directly inside the invocation closure while the generator argument
``!chunk`` is bound through ``IconIn(x_0_r, IconPromote(chunk_s_r))``.

Subscript/field subjects are handled by the runtime access nodes (which
perform the same bound iteration internally), so only invocations need
hoisting here; the observable semantics match the paper's full flattening.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Tuple

from . import ast_nodes as ast


@dataclass
class TempRef(ast.Node):
    """A reference to normalization temporary ``x_<index>``."""

    index: int = 0


@dataclass
class BoundIn(ast.Node):
    """``(x_<index> in expr)`` — bound iteration introduced by flattening."""

    index: int = 0
    expr: ast.Node = None  # type: ignore[assignment]

    def children(self) -> tuple:
        return (self.expr,)


class TempAllocator:
    """Source of unique temporary indices within one method body."""

    def __init__(self) -> None:
        self.count = 0

    def fresh(self) -> int:
        index = self.count
        self.count += 1
        return index


_ATOMIC = (ast.Literal, ast.NullLit, ast.Name, TempRef, ast.Keyword, ast.NativeCode)


def is_atomic(node: ast.Node) -> bool:
    """True when *node* can be evaluated inside an invocation closure."""
    return isinstance(node, _ATOMIC)


def _hoist(
    node: ast.Node, allocator: TempAllocator, bindings: List[BoundIn]
) -> ast.Node:
    """Flatten *node*; if non-atomic, bind it to a fresh temporary."""
    node = normalize_expr(node, allocator)
    if is_atomic(node):
        return node
    index = allocator.fresh()
    bindings.append(BoundIn(line=node.line, index=index, expr=node))
    return TempRef(line=node.line, index=index)


def _chain(bindings: List[BoundIn], final: ast.Node, line: int) -> ast.Node:
    """(b1) & (b2) & ... & final."""
    node: ast.Node = final
    for binding in reversed(bindings):
        node = ast.Binary(line=line, op="&", left=binding, right=node)
    return node


def normalize_expr(node: ast.Node, allocator: TempAllocator | None = None) -> ast.Node:
    """Rewrite *node* so every invocation has atomic callee and arguments.

    The rewrite is recursive and purely structural; it introduces
    :class:`BoundIn`/:class:`TempRef` pairs chained with ``&``.
    """
    if allocator is None:
        allocator = TempAllocator()

    if isinstance(node, ast.Invoke):
        bindings: List[BoundIn] = []
        callee = _hoist(node.callee, allocator, bindings)
        args = [_hoist(arg, allocator, bindings) for arg in node.args]
        call = replace(node, callee=callee, args=args)
        return _chain(bindings, call, node.line)

    if isinstance(node, ast.NativeInvoke):
        bindings = []
        subject = _hoist(node.subject, allocator, bindings)
        args = [_hoist(arg, allocator, bindings) for arg in node.args]
        call = replace(node, subject=subject, args=args)
        return _chain(bindings, call, node.line)

    # Structural recursion for everything else.
    return _rebuild(node, allocator)


def _rebuild(node: ast.Node, allocator: TempAllocator) -> ast.Node:
    def norm(child):
        return normalize_expr(child, allocator) if isinstance(child, ast.Node) else child

    if isinstance(node, ast.Unary):
        return replace(node, operand=norm(node.operand))
    if isinstance(node, ast.Binary):
        return replace(node, left=norm(node.left), right=norm(node.right))
    if isinstance(node, ast.Assign):
        return replace(node, target=norm(node.target), value=norm(node.value))
    if isinstance(node, ast.ToBy):
        return replace(
            node, start=norm(node.start), stop=norm(node.stop), step=norm(node.step)
        )
    if isinstance(node, ast.Scan):
        return replace(node, subject=norm(node.subject), body=norm(node.body))
    if isinstance(node, ast.Activate):
        return replace(node, target=norm(node.target), transmit=norm(node.transmit))
    if isinstance(node, (ast.FirstClass, ast.CoExprLit, ast.PipeLit)):
        return replace(node, expr=norm(node.expr))
    if isinstance(node, ast.Field):
        return replace(node, subject=norm(node.subject))
    if isinstance(node, ast.Index):
        return replace(node, subject=norm(node.subject), index=norm(node.index))
    if isinstance(node, ast.Section):
        return replace(
            node, subject=norm(node.subject), low=norm(node.low), high=norm(node.high)
        )
    if isinstance(node, ast.ListLit):
        return replace(node, items=[norm(item) for item in node.items])
    if isinstance(node, ast.Block):
        return replace(node, body=[norm(statement) for statement in node.body])
    if isinstance(node, ast.If):
        return replace(
            node, cond=norm(node.cond), then=norm(node.then), orelse=norm(node.orelse)
        )
    if isinstance(node, ast.While):
        return replace(node, cond=norm(node.cond), body=norm(node.body))
    if isinstance(node, ast.Until):
        return replace(node, cond=norm(node.cond), body=norm(node.body))
    if isinstance(node, ast.Every):
        return replace(node, gen=norm(node.gen), body=norm(node.body))
    if isinstance(node, ast.RepeatLoop):
        return replace(node, body=norm(node.body))
    if isinstance(node, ast.Case):
        return replace(
            node,
            subject=norm(node.subject),
            branches=[(norm(sel), norm(body)) for sel, body in node.branches],
            default=norm(node.default),
        )
    if isinstance(node, ast.Suspend):
        return replace(node, expr=norm(node.expr), do_clause=norm(node.do_clause))
    if isinstance(node, (ast.Return, ast.Break)):
        return replace(node, expr=norm(node.expr))
    if isinstance(node, ast.InitialClause):
        return replace(node, expr=norm(node.expr))
    if isinstance(node, ast.VarDecl):
        return replace(node, inits=[norm(init) for init in node.inits])
    if isinstance(node, BoundIn):
        return replace(node, expr=norm(node.expr))
    # Atoms and declarations without expression children.
    return node


def normalize_method(method: ast.MethodDecl) -> Tuple[ast.MethodDecl, int]:
    """Normalize a method body; returns (new method, temporaries used)."""
    allocator = TempAllocator()
    body = normalize_expr(method.body, allocator)
    return replace(method, body=body), allocator.count


def count_temps(node: ast.Node) -> int:
    """Highest temporary index used below *node*, plus one."""
    highest = -1
    for descendant in ast.walk(node):
        if isinstance(descendant, (TempRef, BoundIn)):
            highest = max(highest, descendant.index)
    return highest + 1
