"""Names available to generated code (the transformer's runtime prelude).

Generated modules begin with ``from repro.lang.prelude import *`` and host
files with embedded expression regions get the same import injected.  The
exported set is the exact vocabulary :mod:`repro.lang.transform` emits —
runtime node constructors, the operations module (as ``iops``), and the
environment helpers.
"""

from ..runtime import operations as iops
from ..runtime.failure import FAIL
from ..runtime.cache import MethodBodyCache
from ..runtime.combinators import (
    IconBound,
    IconConcat,
    IconEvery,
    IconIn,
    IconLimit,
    IconNot,
    IconProduct,
    IconRepeatAlt,
    IconSequence,
)
from ..runtime.control import (
    IconBreak,
    IconCase,
    IconFailStmt,
    IconIf,
    IconNext,
    IconRepeat,
    IconReturn,
    IconSuspend,
    IconUntil,
    IconWhile,
)
from ..runtime.access import IconField, IconIndex, IconSection
from ..runtime.invoke import IconInvokeIterator, IconMethodBody
from ..runtime.iterator import (
    IconFail,
    IconGenerator,
    IconIterator,
    IconLazy,
    IconNullIterator,
    IconValue,
    IconVarIterator,
)
from ..runtime.operations import (
    IconAssign,
    IconDeref,
    IconNonNullTest,
    IconNullTest,
    IconOperation,
    IconRevAssign,
    IconRevSwap,
    IconSwap,
    IconToBy,
)
from ..runtime.promote import IconActivate, IconPromote
from ..runtime.refs import FieldRef, IconTmp, IconVar
from ..runtime.scanning import IconScan, tab_match
from ..runtime.types import Cset
from ..runtime.functions import BUILTINS
from ..coexpr.coexpression import CoExpression
from ..coexpr.pipe import Pipe
from ..coexpr.calculus import refresh as _jrefresh
from .environment import (
    GlobalRef,
    IconInitial,
    class_lookup,
    KeywordRef,
    ListBuild,
    global_value,
    host_lookup,
    invoke_value,
    shadow,
)

__all__ = [
    "_jrefresh",
    "BUILTINS",
    "CoExpression",
    "Cset",
    "FAIL",
    "FieldRef",
    "GlobalRef",
    "IconActivate",
    "IconAssign",
    "IconBound",
    "IconBreak",
    "IconCase",
    "IconConcat",
    "IconDeref",
    "IconEvery",
    "IconFail",
    "IconFailStmt",
    "IconField",
    "IconGenerator",
    "IconIf",
    "IconIn",
    "IconIndex",
    "IconInitial",
    "IconInvokeIterator",
    "IconIterator",
    "IconLazy",
    "IconLimit",
    "IconMethodBody",
    "IconNext",
    "IconNonNullTest",
    "IconNot",
    "IconNullIterator",
    "IconNullTest",
    "IconOperation",
    "IconProduct",
    "IconPromote",
    "IconRepeat",
    "IconRepeatAlt",
    "IconReturn",
    "IconRevAssign",
    "IconRevSwap",
    "IconScan",
    "IconSection",
    "IconSequence",
    "IconSuspend",
    "IconSwap",
    "IconTmp",
    "IconToBy",
    "IconUntil",
    "IconValue",
    "IconVar",
    "IconVarIterator",
    "IconWhile",
    "KeywordRef",
    "ListBuild",
    "MethodBodyCache",
    "Pipe",
    "class_lookup",
    "global_value",
    "host_lookup",
    "invoke_value",
    "iops",
    "shadow",
    "tab_match",
]
