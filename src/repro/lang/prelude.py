"""Names available to generated code (the transformer's runtime prelude).

Generated modules begin with ``from repro.lang.prelude import *`` and host
files with embedded expression regions get the same import injected.  The
exported set is the exact vocabulary :mod:`repro.lang.transform` emits —
runtime node constructors, the operations module (as ``iops``), and the
environment helpers.
"""

from ..runtime import operations as iops
from ..runtime.failure import (
    FAIL,
    BreakSignal,
    FailSignal,
    NextSignal,
    ReturnSignal,
    Suspension,
)
from ..runtime.cache import MethodBodyCache
from ..runtime.combinators import (
    IconBound,
    IconConcat,
    IconEvery,
    IconIn,
    IconLimit,
    IconNot,
    IconProduct,
    IconRepeatAlt,
    IconSequence,
)
from ..runtime.control import (
    IconBreak,
    IconCase,
    IconFailStmt,
    IconIf,
    IconNext,
    IconRepeat,
    IconReturn,
    IconSuspend,
    IconUntil,
    IconWhile,
    case_match,
)
from ..runtime.access import IconField, IconIndex, IconSection
from ..runtime.invoke import IconInvokeIterator, IconMethodBody, IconOptimizedBody
from ..runtime.iterator import (
    IconFail,
    IconGenerator,
    IconIterator,
    IconLazy,
    IconNullIterator,
    IconValue,
    IconVarIterator,
)
from ..runtime.operations import (
    IconAssign,
    IconDeref,
    IconNonNullTest,
    IconNullTest,
    IconOperation,
    IconRevAssign,
    IconRevSwap,
    IconSwap,
    IconToBy,
)
from ..runtime.promote import IconActivate, IconPromote, promote_value
from ..runtime.refs import FieldRef, IconTmp, IconVar, deref
from ..runtime.scanning import IconScan, tab_match
from ..runtime.types import Cset
from ..runtime.functions import BUILTINS
from ..coexpr.coexpression import CoExpression
from ..coexpr.pipe import Pipe
from ..coexpr.calculus import refresh as _jrefresh
from .environment import (
    GlobalRef,
    IconInitial,
    break_results,
    call_results,
    class_lookup,
    first_result,
    KeywordRef,
    ListBuild,
    global_value,
    host_lookup,
    invoke_value,
    shadow,
)

__all__ = [
    "_jrefresh",
    "BUILTINS",
    "BreakSignal",
    "CoExpression",
    "Cset",
    "FAIL",
    "FailSignal",
    "FieldRef",
    "GlobalRef",
    "IconActivate",
    "IconAssign",
    "IconBound",
    "IconBreak",
    "IconCase",
    "IconConcat",
    "IconDeref",
    "IconEvery",
    "IconFail",
    "IconFailStmt",
    "IconField",
    "IconGenerator",
    "IconIf",
    "IconIn",
    "IconIndex",
    "IconInitial",
    "IconInvokeIterator",
    "IconIterator",
    "IconLazy",
    "IconLimit",
    "IconMethodBody",
    "IconNext",
    "IconNonNullTest",
    "IconNot",
    "IconNullIterator",
    "IconNullTest",
    "IconOperation",
    "IconOptimizedBody",
    "IconProduct",
    "IconPromote",
    "IconRepeat",
    "IconRepeatAlt",
    "IconReturn",
    "IconRevAssign",
    "IconRevSwap",
    "IconScan",
    "IconSection",
    "IconSequence",
    "IconSuspend",
    "IconSwap",
    "IconTmp",
    "IconToBy",
    "IconUntil",
    "IconValue",
    "IconVar",
    "IconVarIterator",
    "IconWhile",
    "KeywordRef",
    "ListBuild",
    "MethodBodyCache",
    "NextSignal",
    "Pipe",
    "ReturnSignal",
    "Suspension",
    "break_results",
    "call_results",
    "case_match",
    "class_lookup",
    "deref",
    "first_result",
    "global_value",
    "host_lookup",
    "invoke_value",
    "iops",
    "promote_value",
    "shadow",
    "tab_match",
]
