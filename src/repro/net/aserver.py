"""The event-loop generator server — thousands of sessions, one thread.

A :class:`~repro.net.server.GeneratorServer` session costs two OS
threads (sender + reader), so one threaded server tops out at a few
hundred concurrent streams.  :class:`AsyncGeneratorServer` speaks the
*identical* wire protocol — the framing, credit flow control, deadline
rule, ``WIRE_BUSY`` shedding, and ``WIRE_PING``/``WIRE_PEERS`` control
channel of :mod:`repro.coexpr.wire` — but multiplexes every session as
a pair of coroutines on one event loop: a session costs two *tasks*
instead of two threads, so concurrency scales with memory, not with OS
thread limits.

Interoperability is the point: the sync
:class:`~repro.net.client.RemotePipe` client (and ``backend="remote"``
pipes, :class:`~repro.net.membership.HealthProber` probes,
:class:`~repro.net.cluster.ServerPool` routing, gossip exchanges) work
against this server *unchanged* — nothing on the wire reveals which
server answered.  The observable stream contract is pinned by the same
backend-matrix tests: data slices in production order, data before
error, close terminates, deadlines cross the wire as remaining seconds
and are re-anchored on receipt, shed dials get a busy envelope through
a lingering half-close.

The trust model matches the threaded server exactly: ``allow_spawn``
decides whether frames decode through full pickle (the server runs
client code by design — trusted networks only) or the restricted
unpickler that refuses every global lookup.

The cooperative caveat of :mod:`repro.coexpr.aio` applies: one
``activate()`` runs to completion on the loop, so the tier multiplexes
*between* results.  Streams of many small results interleave fairly
(the sender yields per item); a single multi-second activation would
stall every session — host such bodies on the threaded server.
"""

from __future__ import annotations

import asyncio
import pickle
import threading
import time
from typing import Any

from ..coexpr.coexpression import CoExpression
from ..coexpr.deadline import Deadline
from ..coexpr.wire import (
    MAX_FRAME,
    WIRE_BEAT,
    WIRE_BUSY,
    WIRE_CALL,
    WIRE_CANCEL,
    WIRE_CLOSE,
    WIRE_CREDIT,
    WIRE_DATA,
    WIRE_DEADLINE,
    WIRE_ERROR,
    WIRE_PEERS,
    WIRE_PING,
    WIRE_PONG,
    WIRE_SPAWN,
    FrameError,
    _HEADER,
    _restricted_loads,
    encode_error,
)
from ..errors import PipeDeadlineExceeded, PipeError
from ..monitor.events import Event, EventKind, emit_lifecycle, lifecycle_enabled
from ..runtime.failure import FAIL
from .server import (
    _CREDIT_SLICE,
    _REQUEST_TIMEOUT,
    _SHED_LINGER,
    GeneratorServer,
)

#: How long the loop thread's graceful drain waits for sessions to
#: flush + close before cancelling their tasks outright.
_DRAIN_TIMEOUT = 5.0


class _AsyncSession:
    """One client connection: a body and its sender/reader coroutines.

    The coroutine twin of :class:`~repro.net.server.Session`: same
    request handling, same credit/greedy-quota semantics, same deadline
    re-anchoring, same data-before-error-before-close termination, same
    lingering half-close drain — with asyncio primitives standing in
    for threads, conditions, and select.
    """

    __slots__ = (
        "server",
        "reader",
        "writer",
        "peer",
        "name",
        "request_name",
        "batch",
        "max_linger",
        "heartbeat_interval",
        "coexpr",
        "task",
        "reader_task",
        "_wlock",
        "_credit",
        "_greedy",
        "_credit_wakeup",
        "_deadline",
        "_buffer",
        "_buf_oldest",
        "_need",
        "_killed",
        "_cancelled",
        "_finished",
        "_torn",
    )

    def __init__(
        self,
        server: "AsyncGeneratorServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        try:
            self.peer = writer.get_extra_info("peername")
        except Exception:  # noqa: BLE001 - transport already gone
            self.peer = None
        self.name = f"aio-session-{id(self):x}"
        self.request_name = ""
        self.batch = 1
        self.max_linger: float | None = None
        self.heartbeat_interval = server.heartbeat_interval
        self.coexpr: CoExpression | None = None
        self.task: asyncio.Task | None = None
        self.reader_task: asyncio.Task | None = None
        #: Serializes frame sends AND the pop-slice/send pair: two
        #: flushers (sender, reader's linger tick) must never interleave
        #: slices out of production order, and asyncio's drain() allows
        #: only one waiter.
        self._wlock = asyncio.Lock()
        #: Items the client has granted (None = unlimited); starts at
        #: zero — nothing is sent before the first grant.
        self._credit: int | None = 0
        #: True once a quota clamped an unlimited grant (the sender then
        #: self-replenishes in quota-sized slices).
        self._greedy = False
        self._credit_wakeup = asyncio.Event()
        #: Budget from a ``WIRE_DEADLINE`` envelope, re-anchored here.
        self._deadline: Deadline | None = None
        self._buffer: list = []
        self._buf_oldest = 0.0
        #: Bytes still owed on a half-received frame (resumable receive
        #: state, so a heartbeat timeout never desynchronizes the
        #: stream; also the reader's mid-frame stall signal).
        self._need: int | None = None
        self._killed = False
        self._cancelled = False
        self._finished = False
        self._torn = False

    # -- framing (coroutine-side, cancellation-safe) ---------------------------

    async def _recv(self) -> tuple:
        """The next envelope.  Resumable under ``asyncio.wait_for``
        cancellation: a consumed header is remembered in ``_need``, and
        ``readexactly`` leaves its buffer intact when cancelled mid-wait
        — so a receive timeout never loses stream position."""
        if self._need is None:
            header = await self.reader.readexactly(_HEADER.size)
            (need,) = _HEADER.unpack(header)
            if need > MAX_FRAME:
                raise FrameError(f"oversized frame ({need} bytes)")
            self._need = need
        frame = await self.reader.readexactly(self._need)
        self._need = None
        loads = pickle.loads if self.server.allow_spawn else _restricted_loads
        try:
            envelope = loads(frame)
        except Exception as error:  # noqa: BLE001 - corrupt frame
            raise FrameError(f"undecodable frame: {error!r}") from error
        if not isinstance(envelope, tuple) or not envelope:
            raise FrameError(f"malformed envelope: {envelope!r}")
        return envelope

    async def _send(self, envelope: tuple) -> None:
        payload = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        async with self._wlock:
            self.writer.write(_HEADER.pack(len(payload)) + payload)
            await self.writer.drain()

    # -- worker/session protocol -----------------------------------------------

    def kill(self) -> None:
        """Abrupt teardown (chaos / scheduler shutdown): close the
        transport now.  Loop-thread only — cross-thread callers go
        through the server's ``call_soon_threadsafe``."""
        self._killed = True
        self._credit_wakeup.set()
        if self.coexpr is not None:
            self.coexpr.close()
        try:
            self.writer.transport.abort()
        except Exception:  # noqa: BLE001 - transport already gone
            pass

    def finish(self) -> None:
        """Graceful teardown: stop producing; the sender flushes and
        sends ``WIRE_CLOSE`` on its way out (loop-thread only)."""
        self._cancelled = True
        self._credit_wakeup.set()
        if self.coexpr is not None:
            self.coexpr.close()

    def _stopping(self) -> bool:
        return self._killed or self._cancelled

    # -- credit ----------------------------------------------------------------

    def grant(self, amount: int | None) -> None:
        """Apply one ``WIRE_CREDIT`` envelope — identical quota/greedy
        semantics to the threaded server's
        :meth:`~repro.net.server.Session.grant`."""
        quota = self.server.max_credit
        if amount is None:
            if quota is None:
                self._credit = None
            else:
                self._greedy = True
                self._credit = quota
        elif self._credit is not None:
            self._credit += amount
            if quota is not None and self._credit > quota:
                self._credit = quota
        self._credit_wakeup.set()

    # -- sender ----------------------------------------------------------------

    async def _flush(self, block: bool) -> None:
        """Send buffered items as credit allows (``block=True`` parks on
        credit until the buffer drains; ``block=False`` is the reader's
        linger tick).  The pop/send pair runs under ``_wlock``, so the
        two flushers can never reorder slices."""
        while True:
            async with self._wlock:
                if not self._buffer or self._killed:
                    return
                credit = self._credit
                if credit != 0:
                    take = (
                        len(self._buffer)
                        if credit is None
                        else min(credit, len(self._buffer))
                    )
                    slice_, self._buffer = (
                        self._buffer[:take],
                        self._buffer[take:],
                    )
                    if credit is not None:
                        self._credit = credit - take
                    payload = pickle.dumps(
                        (WIRE_DATA, slice_), protocol=pickle.HIGHEST_PROTOCOL
                    )
                    self.writer.write(_HEADER.pack(len(payload)) + payload)
                    await self.writer.drain()
                    continue
            # Out of credit with items still buffered.
            if not block:
                return
            if self._killed:
                return
            if self._greedy:
                self._credit = self.server.max_credit
                continue
            self._credit_wakeup.clear()
            try:
                await asyncio.wait_for(
                    self._credit_wakeup.wait(), _CREDIT_SLICE
                )
            except asyncio.TimeoutError:
                pass

    async def _append(self, value: Any) -> None:
        if not self._buffer:
            self._buf_oldest = time.monotonic()
        self._buffer.append(value)
        if len(self._buffer) >= self.batch:
            await self._flush(block=True)

    async def run(self) -> None:
        """The session's main coroutine: request → body → stream →
        terminator (control connections short-circuit to the probe/
        gossip loop, exactly like the threaded server)."""
        try:
            try:
                envelope = await asyncio.wait_for(
                    self._recv(), _REQUEST_TIMEOUT
                )
            except (
                OSError,
                EOFError,
                FrameError,
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
            ):
                return  # client vanished before asking for anything
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 - reported to client
                await self._send_failure(error)
                return
            if envelope[0] in (WIRE_PING, WIRE_PEERS):
                self.request_name = "control"
                await self._run_control(envelope)
                return
            try:
                coexpr = self._build_body(envelope)
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 - reported to client
                await self._send_failure(error)
                return
            self.coexpr = coexpr
            self.server._note_session(self)
            self.reader_task = asyncio.get_running_loop().create_task(
                self._run_reader(), name=f"{self.name}-reader"
            )
            await self._stream(coexpr)
        finally:
            self._finish()

    async def _run_control(self, envelope: tuple | None) -> None:
        """Serve ping/peers frames until the peer closes or goes silent
        — the membership tier's probe and gossip channel, answered by
        the loop with the threaded server's exact reply shapes."""
        idle_deadline = time.monotonic() + _REQUEST_TIMEOUT
        try:
            while not self._stopping():
                if envelope is not None:
                    kind = envelope[0]
                    if kind == WIRE_PING:
                        nonce = envelope[1] if len(envelope) > 1 else None
                        await self._send((WIRE_PONG, nonce))
                    elif kind == WIRE_PEERS:
                        told = envelope[1] if len(envelope) > 1 else None
                        if told:
                            self.server._merge_peers(told)
                        await self._send(
                            (WIRE_PEERS, self.server.known_peers())
                        )
                    else:
                        return  # protocol violation: drop the connection
                    idle_deadline = time.monotonic() + _REQUEST_TIMEOUT
                elif time.monotonic() >= idle_deadline:
                    return  # silent peer: reclaim the slot
                try:
                    envelope = await asyncio.wait_for(
                        self._recv(), self.heartbeat_interval
                    )
                except asyncio.TimeoutError:
                    envelope = None
        except (OSError, EOFError, FrameError, asyncio.IncompleteReadError):
            pass  # peer gone: the control session just ends

    def _build_body(self, first: tuple) -> CoExpression:
        kind, *payload = first
        if kind not in (WIRE_SPAWN, WIRE_CALL) or not payload:
            raise PipeError(f"expected a spawn/call request, got {kind!r}")
        request = payload[0]
        self.request_name = request.get("name") or kind
        self.batch = max(int(request.get("batch", 1)), 1)
        if self.server.max_batch is not None:
            self.batch = min(self.batch, self.server.max_batch)
        self.max_linger = request.get("max_linger")
        interval = request.get("heartbeat_interval")
        if interval:
            self.heartbeat_interval = float(interval)
        if kind == WIRE_SPAWN:
            if not self.server.allow_spawn:
                raise PipeError(
                    f"server {self.server.name!r} does not accept spawn "
                    "requests (allow_spawn=False); use a registered factory"
                )
            factory, env = pickle.loads(request["body"])
            return CoExpression(factory, lambda: env, name=self.request_name)
        factory = self.server._factory(request["name"])
        args = tuple(request.get("args") or ())
        return CoExpression(factory, lambda: args, name=self.request_name)

    async def _stream(self, coexpr: CoExpression) -> None:
        try:
            while not self._stopping():
                deadline = self._deadline
                if deadline is not None and deadline.expired():
                    if lifecycle_enabled():
                        emit_lifecycle(
                            Event(
                                EventKind.DEADLINE_EXPIRED,
                                f"pipe:{self.request_name}",
                                0,
                                {"where": "session", "remaining": 0.0},
                            )
                        )
                    raise PipeDeadlineExceeded(
                        f"session {self.request_name!r}: deadline exceeded "
                        "(session)",
                        where="session",
                    )
                value = coexpr.activate()
                if value is FAIL:
                    break
                await self._append(value)
                await asyncio.sleep(0)  # per-item fairness across sessions
            await self._flush(block=True)
            if not self._killed:
                await self._send((WIRE_CLOSE,))
        except (OSError, EOFError, FrameError, ConnectionError):
            pass  # peer gone mid-stream: nothing left to tell it
        except asyncio.CancelledError:
            raise
        except BaseException as error:  # noqa: BLE001 - forwarded to client
            await self._send_failure(error)

    async def _send_failure(self, error: BaseException) -> None:
        """Data first, then the error, then close — the wire invariant."""
        try:
            await self._flush(block=True)
            await self._send((WIRE_ERROR, encode_error(error)))
            await self._send((WIRE_CLOSE,))
        except (OSError, EOFError, FrameError, ConnectionError):
            pass  # peer gone: the error dies with the session

    # -- reader ----------------------------------------------------------------

    async def _run_reader(self) -> None:
        """Control channel + beater: credits, deadlines, cancellation,
        liveness — then the lingering half-close drain once the sender
        has finished.  A receive idle for one heartbeat interval sends a
        ``WIRE_BEAT`` and delivers any batch past its linger bound; a
        frame left partial for ``stall_intervals`` heartbeats kills the
        session (the wedged-client bound)."""
        stall_deadline: float | None = None
        while not self._killed:
            try:
                envelope = await asyncio.wait_for(
                    self._recv(), self.heartbeat_interval
                )
            except asyncio.TimeoutError:
                # Mid-frame silence counts toward the stall bound; idle
                # silence proves liveness and runs the linger tick.
                if self._need is not None:
                    if stall_deadline is None:
                        stall_deadline = time.monotonic() + (
                            self.server.stall_intervals
                            * self.heartbeat_interval
                        )
                    elif time.monotonic() >= stall_deadline:
                        self.kill()  # stalled mid-frame: a dead client
                        break
                else:
                    stall_deadline = None
                if self._finished:
                    continue  # draining a half-closed socket: no beats
                try:
                    await self._send((WIRE_BEAT, time.monotonic()))
                except (OSError, EOFError, ConnectionError):
                    self.kill()  # wedged client: wake the blocked sender
                    break
                if (
                    self.max_linger is not None
                    and self._buffer
                    and time.monotonic() - self._buf_oldest >= self.max_linger
                ):
                    try:
                        await self._flush(block=False)
                    except (OSError, EOFError, FrameError, ConnectionError):
                        self.kill()
                        break
                continue
            except asyncio.IncompleteReadError:
                if not self._finished:
                    self.kill()  # client left mid-stream: stop the body
                break
            except (OSError, EOFError, FrameError, ConnectionError):
                self.kill()
                break
            except asyncio.CancelledError:
                raise
            stall_deadline = None
            kind = envelope[0]
            if kind == WIRE_CREDIT:
                self.grant(envelope[1] if len(envelope) > 1 else None)
            elif kind == WIRE_DEADLINE:
                # Budget, never a timestamp: re-anchor against our own
                # monotonic clock (see repro.coexpr.deadline).
                budget = envelope[1] if len(envelope) > 1 else 0.0
                try:
                    self._deadline = Deadline(float(budget))
                except (TypeError, ValueError):
                    pass  # malformed budget: ignore, don't kill the stream
            elif kind == WIRE_CANCEL:
                self.kill()
                break
            # Anything else (a stray beat) is ignored.
        if self._finished:
            self._teardown()

    # -- teardown --------------------------------------------------------------

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        if self.coexpr is not None:
            self.coexpr.close()
        reader = self.reader_task
        if reader is not None and not self._killed and not reader.done():
            # Lingering close: push our FIN but leave the reader
            # draining until the *client* closes; it runs the final
            # teardown when the drain reaches EOF.
            try:
                if self.writer.can_write_eof():
                    self.writer.write_eof()
            except (OSError, RuntimeError):
                pass
            return
        self._teardown()

    def _teardown(self) -> None:
        """Final transport close + deregistration (idempotent)."""
        if self._torn:
            return
        self._torn = True
        try:
            self.writer.close()
        except Exception:  # noqa: BLE001 - transport already gone
            pass
        self.server._forget(self)

    # -- chaos/accounting protocol (what kill_sessions/stats expect) -----------

    def is_alive(self) -> bool:
        return self.task is not None and not self.task.done()

    def join(self, timeout: float | None = None) -> bool:
        return not self.is_alive()


class AsyncGeneratorServer(GeneratorServer):
    """A :class:`GeneratorServer` whose sessions are event-loop tasks.

    Drop-in: the constructor, registry, gossip surface
    (``known_peers``/``add_peer``/``announce``), admission knobs
    (``max_sessions``/``max_credit``/``max_batch``/``retry_after``/
    ``stall_intervals``), ``stats``, context-manager protocol, and
    signal handling are inherited; only the execution substrate
    changes.  One scheduler thread runs the event loop; every session
    is a pair of coroutines on it, so concurrent sessions cost memory —
    not OS threads — and the ``junicon-serve --async`` deployment
    multiplexes thousands of streams where the threaded server tops
    out at hundreds.

    The server registers with the scheduler's session accounting and
    the loop thread is an ordinary scheduler thread: a shut-down
    scheduler stops the loop (cancelling every session task) along with
    everything else it owns — the no-orphans contract unchanged.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        if len(args) < 6:  # name is the sixth positional parameter
            kwargs.setdefault("name", "agenserver")
        super().__init__(*args, **kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_handle: Any = None
        self._bound = threading.Event()
        self._start_error: BaseException | None = None
        self._stop_async: asyncio.Event | None = None
        self._drain_timeout = _DRAIN_TIMEOUT

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "AsyncGeneratorServer":
        """Bind, listen, and run the event loop on a scheduler thread."""
        with self._lock:
            if self._stopped:
                raise PipeError("start on a shut-down AsyncGeneratorServer")
            if self._started:
                return self
            self._started = True
        self._warn_non_loopback()
        self.scheduler.track_session(self)
        try:
            self._loop_handle = self.scheduler.submit(
                self._run_loop, name=f"{self.name}-loop"
            )
        except BaseException:
            self.scheduler.untrack_session(self)
            raise
        self._bound.wait()
        if self._start_error is not None:
            error = self._start_error
            self.scheduler.untrack_session(self)
            raise error
        return self

    def _warn_non_loopback(self) -> None:
        import warnings

        from .server import _is_loopback

        if not _is_loopback(self.host):
            warnings.warn(
                f"AsyncGeneratorServer {self.name!r} is binding non-loopback "
                f"host {self.host!r}: the wire protocol is unauthenticated "
                + (
                    "and allow_spawn=True lets any client execute arbitrary "
                    "code — expose it to trusted networks only"
                    if self.allow_spawn
                    else "— expose it to trusted networks only"
                ),
                RuntimeWarning,
                stacklevel=3,
            )

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced via start()
            if not self._bound.is_set():
                self._start_error = error
                self._bound.set()
        finally:
            try:
                loop.close()
            except Exception:  # noqa: BLE001
                pass
            self._bound.set()  # belt-and-braces: never strand start()

    async def _main(self) -> None:
        self._stop_async = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._on_connect, self.host, self.port
            )
        except OSError as error:
            self._start_error = error
            self._bound.set()
            return
        try:
            self.host, self.port = server.sockets[0].getsockname()[:2]
            self._bound.set()
            await self._stop_async.wait()
        finally:
            server.close()
            try:
                await server.wait_closed()
            except Exception:  # noqa: BLE001
                pass
            await self._drain_sessions()

    async def _drain_sessions(self) -> None:
        """Graceful loop-side drain: finish every session (flush +
        ``WIRE_CLOSE``), bound the wait, cancel stragglers."""
        sessions = self.active_sessions()
        for session in sessions:
            session.finish()
        tasks = [
            t
            for s in sessions
            for t in (s.task, s.reader_task)
            if t is not None and not t.done()
        ]
        if tasks:
            done, pending = await asyncio.wait(
                tasks, timeout=self._drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        for session in sessions:
            session._teardown()

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._stopped:
            writer.close()
            return
        if self.max_sessions is not None:
            with self._lock:
                over = len(self._sessions) >= self.max_sessions
            if over:
                await self._shed_async(reader, writer)
                return
        session = _AsyncSession(self, reader, writer)
        with self._lock:
            if self._stopped:
                writer.close()
                return
            self._sessions.append(session)
            self._served += 1
        session.task = asyncio.current_task()
        try:
            await session.run()
        finally:
            if not session._torn and (
                session._killed or session.reader_task is None
            ):
                session._teardown()

    async def _shed_async(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Refuse one over-capacity dial: ``WIRE_BUSY(retry_after)``
        through a lingering half-close, so the busy reply survives the
        client's in-flight handshake (same shape as the threaded
        server's shed path)."""
        with self._lock:
            self._shed_count += 1
            active = len(self._sessions)
        try:
            peer = writer.get_extra_info("peername")
        except Exception:  # noqa: BLE001
            peer = None
        if lifecycle_enabled():
            emit_lifecycle(
                Event(
                    EventKind.SHED,
                    f"server:{self.name}",
                    0,
                    {
                        "peer": peer,
                        "active": active,
                        "max_sessions": self.max_sessions,
                        "retry_after": self.retry_after,
                    },
                )
            )
        try:
            payload = pickle.dumps(
                (WIRE_BUSY, self.retry_after),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            writer.write(_HEADER.pack(len(payload)) + payload)
            await writer.drain()
            if writer.can_write_eof():
                writer.write_eof()
            limit = time.monotonic() + _SHED_LINGER
            while time.monotonic() < limit:
                try:
                    chunk = await asyncio.wait_for(reader.read(4096), 0.05)
                except asyncio.TimeoutError:
                    continue
                if not chunk:
                    break  # client saw the busy reply and hung up
        except (OSError, ConnectionError):
            pass  # the impatient client already hung up
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    def _note_session(self, session: Any) -> None:
        super()._note_session(session)
        if lifecycle_enabled():
            emit_lifecycle(
                Event(
                    EventKind.ASYNC_SESSION,
                    f"pipe:{session.request_name}",
                    0,
                    {
                        "peer": session.peer,
                        "name": session.request_name,
                        "server": self.name,
                    },
                )
            )

    # -- cross-thread control ----------------------------------------------

    def _call_on_loop(self, fn: Any) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(fn)
        except RuntimeError:
            pass  # loop shut down between the check and the call

    def kill_sessions(self) -> int:
        """Hard-kill every live session on the loop (the chaos hook)."""
        sessions = self.active_sessions()
        self._call_on_loop(
            lambda: [session.kill() for session in sessions]
        )
        return len(sessions)

    def shutdown(self, wait: bool = True, timeout: float = 5.0) -> None:
        """Stop accepting and drain every session gracefully: each one
        flushes its coalesced batch and sends ``WIRE_CLOSE``; stragglers
        past *timeout* are cancelled.  Idempotent."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        self._drain_timeout = timeout
        started = self._started

        def _signal() -> None:
            if self._stop_async is not None:
                self._stop_async.set()

        self._call_on_loop(_signal)
        handle = self._loop_handle
        if wait and handle is not None:
            # The loop thread exits once the drain completes; give it
            # the drain budget plus slack for the cancellation sweep.
            handle.join(timeout + 2.0)
        if started:
            self.scheduler.untrack_session(self)

    # -- session protocol (scheduler accounting) -------------------------------

    def kill(self) -> None:
        """Scheduler-shutdown hook: stop the loop, cancel every session."""
        self.shutdown(wait=False)

    def is_alive(self) -> bool:
        handle = self._loop_handle
        return handle is not None and handle.is_alive()

    def join(self, timeout: float | None = None) -> bool:
        handle = self._loop_handle
        if handle is None:
            return True
        return handle.join(timeout)

    def __repr__(self) -> str:
        state = (
            "stopped"
            if self._stopped
            else ("listening" if self._started else "unstarted")
        )
        return (
            f"AsyncGeneratorServer({self.name}, {self.host}:{self.port}, "
            f"{state}, active={len(self._sessions)})"
        )
