"""Live cluster membership — health probes, registries, and gossip.

PR 6's cluster tier froze the fleet at construction: a
:class:`~repro.net.cluster.ServerPool` could route around a dead
replica but never grow, shrink, or heal.  This module supplies the
three missing pieces and the pool wires them together:

* **health probing** — :class:`HealthProber` keeps one persistent
  control connection per member and pings it with lightweight
  ``WIRE_PING``/``WIRE_PONG`` envelopes; consecutive misses drive a
  ``MEMBER_DOWN`` transition (the member leaves the ring but not the
  fleet), and the first pong after that drives ``MEMBER_UP``.  Active
  detection replaces the passive suspicion window as the primary
  liveness signal — suspicion still re-orders dials, probing changes
  *routability*.
* **membership sources** — :class:`StaticMembers` (the frozen list,
  for symmetry), :class:`FileRegistry` (an mtime-watched JSON file;
  the ``remote_address="registry:/path.json"`` spelling), and
  :class:`GossipMembers` (seed addresses; each poll is one push-pull
  ``WIRE_PEERS`` exchange with a live member).  A source feeds the
  pool's live ``add``/``remove``, which feed the ring's minimal-remap
  ``add``/``remove`` — streams in flight never re-route unless their
  keys actually moved.
* **shared health** — a process-wide :class:`AddressHealth` registry
  keyed by ``(host, port)``.  Probe verdicts and dial failures are
  recorded here, so two pools routing over the same dead replica don't
  each pay the connect-timeout trip: the second pool demotes the
  address before ever dialing it.  The per-address circuit breaker
  (:func:`~repro.net.client.breaker_for`) is already process-wide;
  this extends the same sharing to suspicion-grade memory.

**Trust note.**  Gossip is only as trustworthy as the servers you
seed: a ``WIRE_PEERS`` reply is an unauthenticated claim, so a hostile
or compromised replica can inject arbitrary addresses into any pool
that polls it.  Gossip is therefore *additive only* (it can introduce
members, never evict them) and belongs on the same trusted network the
wire protocol already assumes; registries and static lists are the
authoritative sources.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
import time
from typing import Any, Iterable, List

from ..coexpr.wire import (
    WIRE_BUSY,
    WIRE_PEERS,
    WIRE_PING,
    WIRE_PONG,
    FrameError,
    SocketFramer,
)

__all__ = [
    "AddressHealth",
    "FileRegistry",
    "GossipMembers",
    "HealthProber",
    "StaticMembers",
    "exchange_peers",
    "membership_source",
    "parse_host_port",
    "probe_address",
    "reset_shared_health",
    "shared_health",
]

#: Dial/receive budget for one control exchange (probe or gossip).
_CONTROL_TIMEOUT = 1.0


# ---------------------------------------------------------------------------
# Member parsing.  A member is ``((host, port), weight)``; the wire shape
# is the primitive triple ``[host, port, weight]`` (restricted-unpickler
# safe), and operators also write ``host:port`` strings and JSON dicts.
# ---------------------------------------------------------------------------


def parse_host_port(value: str) -> tuple:
    """``"host:port"`` → ``(host, port)`` (the CLI/seed spelling)."""
    host, _, port = value.rpartition(":")
    if not host:
        raise ValueError(f"not a host:port address: {value!r}")
    try:
        return (host, int(port))
    except ValueError:
        raise ValueError(f"not a host:port address: {value!r}") from None


def as_member(value: Any) -> tuple:
    """Normalize any member spelling to ``((host, port), weight)``.

    Accepts ``(host, port)`` / ``(host, port, weight)`` sequences,
    ``"host:port"`` strings, and ``{"host": ..., "port": ...,
    "weight": ...}`` dicts (the registry-file shape).  Weight defaults
    to 1.0 and must be a positive number.
    """
    weight = 1.0
    if isinstance(value, str):
        try:
            return (parse_host_port(value), weight)
        except ValueError:
            raise ValueError(f"not a cluster member: {value!r}") from None
    if isinstance(value, dict):
        host, port = value.get("host"), value.get("port")
        weight = value.get("weight", 1.0)
    else:
        try:
            parts = tuple(value)
        except TypeError:
            raise ValueError(f"not a cluster member: {value!r}") from None
        if len(parts) == 2:
            host, port = parts
        elif len(parts) == 3:
            host, port, weight = parts
        else:
            raise ValueError(f"not a cluster member: {value!r}")
    if (
        not isinstance(host, str)
        or not isinstance(port, int)
        or isinstance(port, bool)
        or not isinstance(weight, (int, float))
        or isinstance(weight, bool)
        or weight <= 0
    ):
        raise ValueError(f"not a cluster member: {value!r}")
    return ((host, port), float(weight))


def _wire_members(members: Iterable[tuple]) -> list:
    """``((host, port), weight)`` pairs → primitive wire triples."""
    return [[host, port, weight] for (host, port), weight in members]


def parse_wire_members(payload: Any) -> List[tuple]:
    """Decode a ``WIRE_PEERS`` payload, silently dropping malformed
    entries — gossip merges best-effort, it never tears a stream."""
    members: List[tuple] = []
    if not isinstance(payload, (list, tuple)):
        return members
    for entry in payload:
        try:
            members.append(as_member(entry))
        except ValueError:
            continue
    return members


# ---------------------------------------------------------------------------
# Shared health — process-wide failure memory keyed by address.
# ---------------------------------------------------------------------------


class AddressHealth:
    """Down-address memory shared by every pool in the process.

    Entries expire (``until`` is a monotonic deadline): a mark from a
    one-off dial failure lives for the marking pool's suspicion window,
    a prober's mark is refreshed every failed round — so an entry whose
    owner vanished decays instead of condemning the address forever.
    ``mark_up`` (a pong, a healthy stream) clears the entry for every
    pool at once.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._down: dict[tuple, tuple] = {}  # address -> (until, reason)

    def mark_down(self, address: tuple, reason: str, ttl: float) -> None:
        until = time.monotonic() + max(ttl, 0.0)
        with self._lock:
            current = self._down.get(address)
            if current is None or current[0] < until:
                self._down[address] = (until, reason)

    def mark_up(self, address: tuple) -> None:
        with self._lock:
            self._down.pop(address, None)

    def is_down(self, address: tuple) -> bool:
        now = time.monotonic()
        with self._lock:
            entry = self._down.get(address)
            if entry is None:
                return False
            if entry[0] <= now:
                del self._down[address]
                return False
            return True

    def snapshot(self) -> dict:
        """``{address: reason}`` for every live entry."""
        now = time.monotonic()
        with self._lock:
            return {
                address: reason
                for address, (until, reason) in self._down.items()
                if until > now
            }

    def clear(self) -> None:
        with self._lock:
            self._down.clear()


_shared_health = AddressHealth()


def shared_health() -> AddressHealth:
    """The process-wide :class:`AddressHealth` registry."""
    return _shared_health


def reset_shared_health() -> None:
    """Forget every shared down-mark (test isolation, like
    :func:`~repro.net.client.reset_breakers` — which calls this)."""
    _shared_health.clear()


# ---------------------------------------------------------------------------
# One-shot control exchanges.
# ---------------------------------------------------------------------------


def _dial_control(address: tuple, timeout: float) -> SocketFramer:
    sock = socket.create_connection(tuple(address), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.settimeout(timeout)
    return SocketFramer(sock)


def probe_address(address: Any, timeout: float = _CONTROL_TIMEOUT) -> bool:
    """One-shot liveness probe: dial, ``WIRE_PING``, await the pong.

    True for a pong *or* a busy reply (a shedding server is alive);
    False for refusal, timeout, or a torn/unparseable stream.
    """
    address, _ = as_member(address)
    try:
        framer = _dial_control(address, timeout)
    except OSError:
        return False
    try:
        framer.send((WIRE_PING, 0))
        while True:
            envelope = framer.recv()
            if envelope[0] in (WIRE_PONG, WIRE_BUSY):
                return True
    except (OSError, EOFError, FrameError, TimeoutError):
        return False
    finally:
        framer.close()


def exchange_peers(
    address: Any,
    known: Iterable[tuple] = (),
    timeout: float = _CONTROL_TIMEOUT,
) -> List[tuple]:
    """One push-pull gossip exchange with the server at *address*.

    Ships *known* (``((host, port), weight)`` pairs) as a
    ``WIRE_PEERS`` envelope — the server merges them into its fleet —
    and returns the server's fleet from the reply.  Raises ``OSError``
    when the exchange cannot complete (unreachable, busy, torn).
    """
    address, _ = as_member(address)
    framer = _dial_control(address, timeout)
    try:
        framer.send((WIRE_PEERS, _wire_members(known)))
        while True:
            envelope = framer.recv()
            if envelope[0] == WIRE_PEERS:
                payload = envelope[1] if len(envelope) > 1 else None
                return parse_wire_members(payload)
            if envelope[0] == WIRE_BUSY:
                raise OSError(f"peer {address} is shedding (busy)")
    except (EOFError, FrameError, TimeoutError) as error:
        raise OSError(f"peer exchange with {address} failed: {error!r}") from error
    finally:
        framer.close()


# ---------------------------------------------------------------------------
# The health prober.
# ---------------------------------------------------------------------------


class HealthProber:
    """Per-fleet ping state: persistent control connections + miss counts.

    Owned by a :class:`~repro.net.cluster.ServerPool`, which calls
    :meth:`probe` for each member every probe interval and applies the
    up/down transitions.  One connection per member persists across
    rounds (a probe is one envelope each way, not a dial); a torn or
    stale socket gets exactly one fresh redial within the same call, so
    a restarted server is seen alive on the first round after it binds.
    """

    def __init__(self, timeout: float = _CONTROL_TIMEOUT, failures: int = 2) -> None:
        if timeout <= 0:
            raise ValueError("probe timeout must be > 0")
        if failures < 1:
            raise ValueError("probe failures must be >= 1")
        self.timeout = timeout
        #: Consecutive misses before the owner declares MEMBER_DOWN.
        self.failures = failures
        self._nonces = itertools.count(1)
        self._lock = threading.Lock()
        self._conns: dict[tuple, SocketFramer] = {}
        self._misses: dict[tuple, int] = {}

    def _drop(self, address: tuple) -> None:
        with self._lock:
            framer = self._conns.pop(address, None)
        if framer is not None:
            framer.close()

    def probe(self, address: tuple) -> bool:
        """One ping; True on pong (or busy — shedding is alive)."""
        for _ in range(2):  # a cached socket may be stale: one redial
            with self._lock:
                framer = self._conns.get(address)
            if framer is None:
                try:
                    framer = _dial_control(address, self.timeout)
                except OSError:
                    return False
                with self._lock:
                    self._conns[address] = framer
            nonce = next(self._nonces)
            try:
                framer.sock.settimeout(self.timeout)
                framer.send((WIRE_PING, nonce))
                while True:
                    envelope = framer.recv()
                    if envelope[0] == WIRE_BUSY:
                        return True
                    if envelope[0] == WIRE_PONG and (
                        len(envelope) < 2 or envelope[1] == nonce
                    ):
                        return True
                    # Stray envelope (an older pong): keep reading.
            except (socket.timeout, TimeoutError):
                # A live TCP path with a silent server — the wedged-
                # replica case.  No redial: the next round retries.
                self._drop(address)
                return False
            except (OSError, EOFError, FrameError):
                self._drop(address)
                continue
        return False

    def record(self, address: tuple, alive: bool) -> int:
        """Update the consecutive-miss counter; returns its new value."""
        with self._lock:
            if alive:
                self._misses[address] = 0
                return 0
            misses = self._misses.get(address, 0) + 1
            self._misses[address] = misses
            return misses

    def forget(self, address: tuple) -> None:
        """A member left the fleet: drop its connection and counters."""
        self._drop(address)
        with self._lock:
            self._misses.pop(address, None)

    def close(self) -> None:
        with self._lock:
            framers = list(self._conns.values())
            self._conns.clear()
            self._misses.clear()
        for framer in framers:
            framer.close()


# ---------------------------------------------------------------------------
# Membership sources.
# ---------------------------------------------------------------------------


class StaticMembers:
    """The frozen fleet, as a source: initial members, no changes.

    Exists so every pool has *a* source shape to reason about; a plain
    address list reaches the pool through exactly this.
    """

    #: Authoritative sources may remove members; gossip may not.
    authoritative = True
    kind = "static"

    def __init__(self, members: Iterable[Any]) -> None:
        self._members = [as_member(value) for value in members]

    def initial(self) -> List[tuple]:
        return list(self._members)

    def poll(self, current: List[tuple]) -> List[tuple] | None:
        return None  # never changes

    def __repr__(self) -> str:
        return f"StaticMembers({len(self._members)} members)"


class FileRegistry:
    """An mtime-watched JSON membership file.

    The file is either a list of members (``[host, port]`` /
    ``[host, port, weight]`` / ``{"host": ..., "port": ...,
    "weight": ...}``) or ``{"members": [...]}``.  :meth:`poll` returns
    the parsed fleet only when the mtime moved; a missing or
    unparseable file returns None — the pool keeps its last good view
    rather than evicting everyone on a half-written update (writers
    should rename into place for atomicity anyway).
    """

    authoritative = True
    kind = "registry"

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._mtime: float | None = None

    def _read(self) -> List[tuple] | None:
        try:
            with open(self.path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if isinstance(payload, dict):
            payload = payload.get("members")
        if not isinstance(payload, list):
            return None
        try:
            return [as_member(entry) for entry in payload]
        except ValueError:
            return None

    def initial(self) -> List[tuple]:
        members = self._read()
        try:
            self._mtime = os.stat(self.path).st_mtime
        except OSError:
            self._mtime = None
        return members or []

    def poll(self, current: List[tuple]) -> List[tuple] | None:
        try:
            mtime = os.stat(self.path).st_mtime
        except OSError:
            return None
        if self._mtime is not None and mtime == self._mtime:
            return None
        members = self._read()
        if members is None:
            return None  # torn write: keep the last good view
        self._mtime = mtime
        return members

    def __repr__(self) -> str:
        return f"FileRegistry({self.path!r})"


class GossipMembers:
    """Seed-based peer discovery over ``WIRE_PEERS`` exchanges.

    Each poll pushes the pool's current view to up to *fanout* live
    members (current members first, then unlearned seeds) and merges
    their replies.  **Additive only** (``authoritative = False``): a
    reply introduces members, it never evicts them — a server's fleet
    view is an unauthenticated claim (see the module trust note), and
    a partial view from one peer must not shrink the pool.  Death is
    the prober's verdict, not gossip's.
    """

    authoritative = False
    kind = "gossip"

    def __init__(
        self,
        seeds: Iterable[Any],
        timeout: float = _CONTROL_TIMEOUT,
        fanout: int = 2,
    ) -> None:
        self.seeds = [as_member(value) for value in seeds]
        if not self.seeds:
            raise ValueError("GossipMembers needs at least one seed")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.timeout = timeout
        self.fanout = fanout

    def initial(self) -> List[tuple]:
        return list(self.seeds)

    def poll(self, current: List[tuple]) -> List[tuple] | None:
        known = {address: weight for address, weight in current}
        for address, weight in self.seeds:
            known.setdefault(address, weight)
        targets = [address for address, _ in current]
        targets += [
            address for address, _ in self.seeds if address not in set(targets)
        ]
        merged: dict[tuple, float] = dict(known)
        replies = 0
        for address in targets:
            if replies >= self.fanout:
                break
            try:
                fleet = exchange_peers(
                    address, known.items(), timeout=self.timeout
                )
            except OSError:
                continue
            replies += 1
            for peer, weight in fleet:
                merged[peer] = weight
        if not replies:
            return None
        return list(merged.items())

    def __repr__(self) -> str:
        seeds = ", ".join(f"{h}:{p}" for (h, p), _ in self.seeds)
        return f"GossipMembers([{seeds}])"


def membership_source(value: Any) -> Any:
    """Resolve a ``remote_address`` membership spelling to a source.

    * ``"registry:/path.json"`` → :class:`FileRegistry`;
    * ``"gossip:host:port[,host:port...]"`` → :class:`GossipMembers`;
    * an object with ``initial``/``poll`` passes through.
    """
    if isinstance(value, str):
        if value.startswith("registry:"):
            path = value[len("registry:"):]
            if not path:
                raise ValueError("registry: needs a file path")
            return FileRegistry(path)
        if value.startswith("gossip:"):
            seeds = value[len("gossip:"):]
            return GossipMembers(
                [parse_host_port(part) for part in seeds.split(",") if part]
            )
        raise ValueError(
            f"unknown membership source {value!r} "
            "(expected 'registry:/path.json' or 'gossip:host:port,...')"
        )
    if hasattr(value, "initial") and hasattr(value, "poll"):
        return value
    raise ValueError(f"not a membership source: {value!r}")
