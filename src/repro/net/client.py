"""The client side of the network tier: remote workers and remote pipes.

Two entry points share one transport:

* :func:`start_remote_worker` — the hook :meth:`Pipe.start` calls for
  ``backend="remote"``: ship the pipe's own ``(factory, env)`` body to
  the generator server and pump the result stream into the pipe's
  channel (or return None to degrade to the thread backend);
* :class:`RemotePipe` — an :class:`~repro.runtime.iterator.IconIterator`
  proxy over a factory the *server* registered by name, for bodies that
  only exist on the far side.

The pump thread is transport and monitor in one loop, exactly like the
process tier's: every received envelope refreshes the heartbeat
deadline; expiry, an EOF, or a torn frame surfaces as
:class:`~repro.errors.PipeConnectionLost` through the channel (after
draining any data received first — the data-before-error invariant).

Flow control is credit-based: the client grants credit equal to its
channel capacity up front (None = unlimited for an unbounded channel)
and replenishes a slice's worth *after* ``put_many`` has delivered it —
so the server never has more than roughly two windows in flight and a
slow consumer throttles the remote producer the same way it throttles
a local worker blocked on a full channel.

Degradation mirrors :mod:`repro.coexpr.proc`: a body that cannot leave
the process (:func:`~repro.coexpr.proc.body_portability_reason`), a
body that does not pickle, or a server that cannot be reached all fall
back to the thread backend with a ``DEGRADED`` monitor event.

A per-address :class:`CircuitBreaker` sits in front of every dial:
consecutive ``WIRE_BUSY`` sheds and connection losses trip it open, and
while open ``backend="remote"`` degrades to the thread tier *without
dialing* — a saturated server stops being hammered by reconnect storms.
After the shed's ``retry_after`` lapses the breaker admits one half-open
probe; a healthy stream closes it again.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
from typing import Any, Iterator

from ..coexpr.channel import CLOSED, Channel
from ..coexpr.deadline import deadline_from
from ..coexpr.proc import body_portability_reason
from ..coexpr.scheduler import PipeScheduler, default_scheduler
from ..coexpr.wire import (
    WIRE_BEAT,
    WIRE_BUSY,
    WIRE_CALL,
    WIRE_CANCEL,
    WIRE_CLOSE,
    WIRE_CREDIT,
    WIRE_DATA,
    WIRE_DEADLINE,
    WIRE_ERROR,
    WIRE_SPAWN,
    FrameError,
    SocketFramer,
    decode_error,
)
from ..errors import (
    ChannelClosedError,
    InjectedDisconnect,
    PipeConnectionLost,
    PipeDeadlineExceeded,
    PipeError,
    PipeServerBusy,
    PipeTimeoutError,
)
from ..monitor.events import Event, EventKind, emit_lifecycle, lifecycle_enabled
from ..runtime.failure import FAIL
from ..runtime.iterator import IconIterator

#: Receive poll slice — bounds cancel/watchdog latency, not throughput.
_POLL_SLICE = 0.05
#: TCP connect timeout before degrading (or failing a RemotePipe).
_CONNECT_TIMEOUT = 5.0
#: Watchdog default: this many silent heartbeat intervals = a dead session.
_TIMEOUT_INTERVALS = 10

#: Consecutive failures (sheds or connection losses) that trip a breaker.
_BREAKER_THRESHOLD = 3
#: Open-state hold when the failure carried no ``retry_after`` hint.
_BREAKER_COOLDOWN = 0.5

_UNSET = object()


class CircuitBreaker:
    """Per-address overload memory: closed → open → half-open → closed.

    Every remote dial consults the breaker for its target address.
    While **closed** (healthy) dials pass through; *threshold*
    consecutive failures — a ``WIRE_BUSY`` shed, a refused or lost
    connection — trip it **open**, and :meth:`allow` then answers False
    until the failure's ``retry_after`` (or a default cooldown) lapses.
    The first dial after that is the **half-open probe**: exactly one
    caller is admitted while the others keep failing fast; the probe's
    outcome (a healthy stream vs. another failure) closes or re-opens
    the breaker.

    Thread-safe; shared process-wide per address via :func:`breaker_for`.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, address: Any, threshold: int = _BREAKER_THRESHOLD) -> None:
        self.address = address
        self.threshold = threshold
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._until = 0.0  # monotonic instant the open hold lapses

    def _emit(self, kind: str, value: dict) -> None:
        if lifecycle_enabled():
            try:
                host, port = self.address
                node = f"breaker:{host}:{port}"
            except (TypeError, ValueError):
                node = f"breaker:{self.address!r}"
            emit_lifecycle(Event(kind, node, 0, value))

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def remaining(self) -> float:
        """Seconds until an open breaker will admit its probe."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            return max(0.0, self._until - time.monotonic())

    def allow(self) -> bool:
        """May this dial proceed?  (Admits the one half-open probe.)"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN and time.monotonic() >= self._until:
                self._state = self.HALF_OPEN
                self._emit(
                    EventKind.BREAKER_PROBE,
                    {"address": self.address, "failures": self._failures},
                )
                return True
            # OPEN within the hold, or a probe already in flight.
            return False

    def record_failure(self, retry_after: float | None = None) -> None:
        """One shed/lost outcome; trips the breaker at the threshold
        (immediately when it burns the half-open probe)."""
        with self._lock:
            self._failures += 1
            probe_failed = self._state == self.HALF_OPEN
            if not probe_failed and self._failures < self.threshold:
                return
            hold = retry_after if retry_after else _BREAKER_COOLDOWN
            self._state = self.OPEN
            self._until = time.monotonic() + hold
            self._emit(
                EventKind.BREAKER_OPEN,
                {
                    "address": self.address,
                    "failures": self._failures,
                    "retry_after": hold,
                },
            )

    def record_success(self) -> None:
        """A healthy stream: close the breaker, forget the failures."""
        with self._lock:
            reopened = self._state != self.CLOSED
            self._state = self.CLOSED
            self._failures = 0
            self._until = 0.0
            if reopened:
                self._emit(EventKind.BREAKER_CLOSE, {"address": self.address})


_breakers: dict = {}
_breakers_lock = threading.Lock()


def breaker_for(address: Any) -> CircuitBreaker:
    """The process-wide breaker for *address* (created on first use)."""
    key = tuple(address) if isinstance(address, (list, tuple)) else address
    with _breakers_lock:
        breaker = _breakers.get(key)
        if breaker is None:
            breaker = _breakers[key] = CircuitBreaker(key)
        return breaker


def reset_breakers() -> None:
    """Forget every breaker (test isolation between server lifetimes).

    Also clears the membership tier's shared address-health registry:
    both are process-wide per-address failure memory, and a test that
    resets one without the other inherits the previous test's corpses.
    """
    with _breakers_lock:
        _breakers.clear()
    from .membership import reset_shared_health

    reset_shared_health()


def remote_unsafe_reason(pipe: Any) -> str | None:
    """Why *pipe*'s body cannot be shipped to a server (None = it can).

    The shared portability rules plus the network-tier specific one: the
    ``(factory, env)`` payload must *always* pickle — unlike a forked
    child, the server never shares memory with the client.
    """
    reason = body_portability_reason(pipe)
    if reason is not None:
        return reason
    coexpr = pipe.coexpr
    try:
        pickle.dumps((coexpr._factory, coexpr._env))
    except Exception as error:  # noqa: BLE001 - any pickle failure degrades
        return f"body not picklable for remote execution: {error!r}"
    return None


#: In-flight workers indexed by server address, so a membership tier's
#: death verdict can wake their watchdogs *now* — see :func:`drain_address`.
_live_lock = threading.Lock()
_live_workers: dict = {}


def _register_live(worker: Any) -> None:
    with _live_lock:
        _live_workers.setdefault(worker.address, set()).add(worker)


def _unregister_live(worker: Any) -> None:
    with _live_lock:
        peers = _live_workers.get(worker.address)
        if peers is not None:
            peers.discard(worker)
            if not peers:
                _live_workers.pop(worker.address, None)


def drain_address(address: Any, reason: str) -> int:
    """Wake every in-flight worker on *address* immediately.

    The eager half of failure detection: a health prober that declares
    a replica dead (:meth:`~repro.net.cluster.ServerPool.mark_down`)
    already *knows* the streams on it are doomed — without this, each
    one still blocks out its own heartbeat watchdog (up to
    ``_TIMEOUT_INTERVALS`` silent intervals) before failing over.
    Closing the framer under the pump's blocked receive surfaces an
    ``OSError`` within one ``_POLL_SLICE``; the stashed *reason* makes
    the loss verdict say "probe declared the server dead" rather than
    the bare transport error the forced close produced.  Returns how
    many workers were woken.
    """
    with _live_lock:
        workers = list(_live_workers.get(tuple(address), ()))
    for worker in workers:
        worker.drained = reason
        worker.framer.close()
    return len(workers)


class RemoteWorker:
    """One server connection plus the pump/watchdog thread draining it.

    *owner* is the pipe (or :class:`RemotePipe`) being fed: it supplies
    the output channel, the cancel flag, and the watchdog knobs.  The
    pump body runs on a scheduler thread; the worker itself registers
    with the scheduler's session accounting, so ``leaked()`` and
    ``shutdown()`` cover the open socket.
    """

    __slots__ = (
        "owner",
        "scheduler",
        "framer",
        "address",
        "name",
        "request",
        "window",
        "heartbeat_timeout",
        "handle",
        "lost",
        "pool",
        "route_key",
        "chaos",
        "drained",
        "_healthy",
    )

    def __init__(
        self,
        owner: Any,
        scheduler: Any,
        sock: Any,
        address: Any,
        name: str,
        request: tuple,
    ) -> None:
        interval = owner.heartbeat_interval
        timeout = owner.heartbeat_timeout
        if timeout is None:
            timeout = max(_TIMEOUT_INTERVALS * interval, 1.0)
        self.owner = owner
        self.scheduler = scheduler
        self.framer = SocketFramer(sock)
        self.address = address
        self.name = name
        self.request = request
        #: Credit window: the channel capacity (None = unbounded).
        self.window: int | None = owner.capacity or None
        self.heartbeat_timeout = timeout
        self.handle: Any = None
        #: The loss verdict once the watchdog fired (None while healthy).
        self.lost: PipeConnectionLost | None = None
        #: Cluster routing, when this session was dialed through a
        #: :class:`~repro.net.cluster.ServerPool`: the pool hears about
        #: losses/health (suspicion, failover accounting) keyed by
        #: ``route_key``; ``chaos`` is the pool's armed fault context
        #: (one per (re)connection) ticked per delivered item.
        self.pool: Any = None
        self.route_key: Any = None
        self.chaos: Any = None
        #: The drain verdict when a health prober declared this worker's
        #: server dead (:func:`drain_address`): the pump reports *this*
        #: reason instead of the bare transport error the forced close
        #: produced.
        self.drained: str | None = None
        #: True once the stream proved the server healthy (first data /
        #: error / close envelope) and the breaker heard about it.
        self._healthy = False

    # -- lifecycle events ------------------------------------------------------

    def _emit(self, kind: str, value: Any = None) -> None:
        if lifecycle_enabled():
            emit_lifecycle(Event(kind, f"pipe:{self.name}", 0, value))

    # -- handshake -------------------------------------------------------------

    def handshake(self) -> None:
        """Ship the request, the initial credit grant, and (when the
        owner carries one) the deadline budget — remaining seconds, the
        only form that survives a clock boundary."""
        self.framer.send(self.request)
        self.framer.send((WIRE_CREDIT, self.window))
        deadline = getattr(self.owner, "deadline", None)
        if deadline is not None:
            remaining = deadline.remaining()
            self.framer.send((WIRE_DEADLINE, remaining))
            self._emit(
                EventKind.DEADLINE_PROPAGATED,
                {"remaining": remaining, "transport": "remote"},
            )
        self.framer.sock.settimeout(_POLL_SLICE)

    # -- pump / watchdog -------------------------------------------------------

    def _mark_lost(self, reason: str) -> None:
        breaker_for(self.address).record_failure()
        if self.pool is not None:
            self.pool.note_lost(self.route_key, self.address, reason)
        self.lost = PipeConnectionLost(
            f"pipe {self.name!r}: remote session lost ({reason})",
            address=self.address,
            reason=reason,
        )
        self._emit(
            EventKind.NET_LOST, {"reason": reason, "address": self.address}
        )
        self.owner._errored = True
        try:
            self.owner.out.put_error(self.lost)
        except ChannelClosedError:
            pass  # consumer cancelled while the session was dying

    def _mark_busy(self, retry_after: float) -> None:
        """The server shed us (``WIRE_BUSY``): a retryable loss that
        feeds the breaker its ``retry_after`` hint."""
        breaker_for(self.address).record_failure(retry_after)
        if self.pool is not None:
            self.pool.note_lost(self.route_key, self.address, "server at capacity")
        busy = PipeServerBusy(
            f"pipe {self.name!r}: server at {self.address!r} shed the "
            f"connection (retry after {retry_after:.2f}s)",
            address=self.address,
            retry_after=retry_after,
        )
        self.lost = busy
        self._emit(
            EventKind.NET_LOST,
            {"reason": "server at capacity", "address": self.address},
        )
        self.owner._errored = True
        try:
            self.owner.out.put_error(busy)
        except ChannelClosedError:
            pass  # consumer cancelled while being shed

    def _mark_healthy(self) -> None:
        # First substantive envelope: the server accepted and ran the
        # session, so the breaker's failure streak is over (a long
        # stream must not wait for WIRE_CLOSE to close the breaker).
        if not self._healthy:
            self._healthy = True
            breaker_for(self.address).record_success()
            if self.pool is not None:
                self.pool.note_healthy(self.address)

    def pump(self) -> None:
        """Forward wire envelopes into the owner's channel; watch liveness.

        The deadline is only *checked* when a receive times out and
        refreshed by every envelope — so a pump that spent seconds
        blocked in ``put_many`` (slow consumer) finds the server's
        buffered beats waiting and never false-positives.
        """
        owner = self.owner
        out = owner.out
        deadline = time.monotonic() + self.heartbeat_timeout
        closed = False
        _register_live(self)
        try:
            while not closed:
                if owner._cancelled:
                    return
                try:
                    envelope = self.framer.recv()
                except (socket.timeout, TimeoutError):
                    if time.monotonic() >= deadline:
                        self._mark_lost(
                            self.drained
                            or f"no heartbeat within "
                            f"{self.heartbeat_timeout:.2f}s"
                        )
                        return
                    continue
                except (EOFError, FrameError, OSError) as error:
                    if owner._cancelled:
                        return
                    self._mark_lost(
                        self.drained
                        or (
                            "connection closed before end of stream"
                            if isinstance(error, (EOFError, FrameError))
                            else f"transport error: {error!r}"
                        )
                    )
                    return
                deadline = time.monotonic() + self.heartbeat_timeout
                kind = envelope[0]
                if kind == WIRE_DATA:
                    self._mark_healthy()
                    slice_ = envelope[1]
                    out.put_many(slice_)
                    if self.chaos is not None:
                        # Deterministic chaos: tick the armed fault plan
                        # once per delivered item.  drop_connection rules
                        # raise here; kill_server rules fire silently and
                        # the fault arrives through the socket like a
                        # real crash.
                        try:
                            for item in slice_:
                                self.chaos.on_item(item)
                        except InjectedDisconnect:
                            self._mark_lost("injected connection drop")
                            return
                    if self.window is not None and slice_:
                        try:
                            # Replenish only after delivery: bounds what
                            # the server may have in flight to ~2 windows.
                            self.framer.send((WIRE_CREDIT, len(slice_)))
                        except (OSError, EOFError) as error:
                            if owner._cancelled:
                                return
                            self._mark_lost(
                                self.drained or f"transport error: {error!r}"
                            )
                            return
                elif kind == WIRE_ERROR:
                    self._mark_healthy()  # the *server* worked; the body crashed
                    owner._errored = True
                    closed = out.feed_wire(kind, decode_error(envelope[1]))
                elif kind == WIRE_CLOSE:
                    self._mark_healthy()
                    closed = True
                elif kind == WIRE_BUSY:
                    retry_after = envelope[1] if len(envelope) > 1 else 0.0
                    self._mark_busy(float(retry_after))
                    return
                elif kind != WIRE_BEAT:
                    self._mark_lost(f"protocol violation: {kind!r} envelope")
                    return
        except ChannelClosedError:
            pass  # the consumer cancelled the pipe; just exit
        finally:
            _unregister_live(self)
            out.close()
            self.framer.close()
            self.scheduler.untrack_session(self)
            if owner._cancelled or owner._errored:
                owner._cancel_upstream()

    # -- teardown --------------------------------------------------------------

    def terminate(self) -> None:
        """Tell the server to stop, then close the socket (idempotent)."""
        try:
            self.framer.send((WIRE_CANCEL,))
        except (OSError, EOFError):
            pass  # session already gone
        self.framer.close()

    # -- worker/session protocol (scheduler accounting) ------------------------

    def kill(self) -> None:
        """Abrupt close (scheduler shutdown): unblocks the pump."""
        self.framer.close()

    def join(self, timeout: float | None = None) -> bool:
        if self.handle is not None:
            return self.handle.join(timeout)
        return True

    def is_alive(self) -> bool:
        return self.handle is not None and self.handle.is_alive()


def _connect_worker(
    owner: Any,
    scheduler: Any,
    address: Any,
    name: str,
    request: tuple,
) -> RemoteWorker:
    """Dial, register, handshake, and submit the pump for *owner*.

    Raises ``OSError`` when the server is unreachable and
    :class:`~repro.errors.SchedulerShutdownError` when the scheduler is
    down — the callers decide whether that degrades or propagates.
    """
    sock = socket.create_connection(address, timeout=_CONNECT_TIMEOUT)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    worker = RemoteWorker(owner, scheduler, sock, address, name, request)
    try:
        scheduler.track_session(worker)  # raises after shutdown
    except BaseException:
        worker.framer.close()
        raise
    try:
        worker.handshake()
        worker.handle = scheduler.submit(worker.pump, name=f"net-{name}")
    except BaseException:
        worker.framer.close()
        scheduler.untrack_session(worker)
        raise
    if lifecycle_enabled():
        emit_lifecycle(
            Event(
                EventKind.NET_CONNECT,
                f"pipe:{name}",
                0,
                {"address": address},
            )
        )
    return worker


def _dial_pooled(
    owner: Any,
    scheduler: Any,
    pool: Any,
    key: Any,
    request: tuple,
    label: Any = None,
) -> RemoteWorker:
    """Dial through a :class:`~repro.net.cluster.ServerPool`.

    Walks the pool's dial candidates for *key* — the ring's preference
    order with suspect replicas last — consulting the per-address
    circuit breaker before each dial (an open breaker is a ``REROUTE``,
    not a dead end; the next candidate is tried).  The first replica
    that accepts gets the session: the pool records the connect (and
    emits ``FAILOVER`` when a lost stream lands on a new replica), the
    worker carries the pool + key so losses feed suspicion, and an
    armed fault plan is entered for the session.

    *label* names the worker: a callable receives the chosen address
    (RemotePipe's ``factory@host:port`` labels); None uses *key*.

    Raises :class:`~repro.errors.PipeConnectionLost` only when **every**
    replica refused — the caller then applies its tier's last-resort
    rule (degrade to threads, or propagate for a RemotePipe).
    """
    last_error: BaseException | None = None
    for address in pool.dial_candidates(key):
        breaker = breaker_for(address)
        if not breaker.allow():
            pool.note_skip(
                key,
                address,
                f"circuit breaker open (probe in {breaker.remaining():.2f}s)",
            )
            continue
        name = label(address) if callable(label) else (label or key)
        try:
            worker = _connect_worker(owner, scheduler, address, name, request)
        except (OSError, EOFError) as error:
            breaker.record_failure()
            pool.note_dial_failure(key, address, error)
            last_error = error
            continue
        worker.pool = pool
        worker.route_key = key
        pool.note_connect(key, address)
        try:
            worker.chaos = pool.chaos_enter(key)
        except InjectedDisconnect:
            # A drop-at-connect rule: the session opened, then "died"
            # before any data.  The error is already in the channel;
            # return the worker so the owner tears it down normally.
            worker._mark_lost("injected connection drop")
            worker.terminate()
        return worker
    suffix = f" (last error: {last_error!r})" if last_error is not None else ""
    raise PipeConnectionLost(
        f"no replica reachable for {key!r} in {pool!r}{suffix}",
        address=pool.addresses,
        reason="no replica reachable",
    )


def start_remote_worker(pipe: Any, scheduler: Any) -> RemoteWorker | None:
    """Ship *pipe*'s body to its generator server; None means *degrade*.

    Returns a running :class:`RemoteWorker` (connected, request sent,
    pump submitted, session tracked by *scheduler*) — or None after
    emitting a ``DEGRADED`` monitor event, in which case the caller
    falls back to the thread backend.  Scheduler shutdown is **not**
    degradation: it propagates
    :class:`~repro.errors.SchedulerShutdownError` exactly as the other
    backends do.

    An open :class:`CircuitBreaker` for the target address degrades
    *without dialing* — while the server is shedding (or down), remote
    requests run on the thread tier instead of feeding a reconnect
    storm; the breaker's half-open probe decides when to go back.
    """
    reason = remote_unsafe_reason(pipe)
    if reason is None:
        address = pipe.remote_address
        pooled = hasattr(address, "dial_candidates")
        breaker = None if pooled else breaker_for(address)
        if breaker is not None and not breaker.allow():
            reason = (
                f"circuit breaker open for {address!r} "
                f"(probe in {breaker.remaining():.2f}s)"
            )
        else:
            coexpr = pipe.coexpr
            request = (
                WIRE_SPAWN,
                {
                    "body": pickle.dumps(
                        (coexpr._factory, coexpr._env),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ),
                    "name": coexpr.name,
                    "batch": max(pipe.batch, 1),
                    "max_linger": pipe.max_linger,
                    "heartbeat_interval": pipe.heartbeat_interval,
                },
            )
            if pooled:
                # Cluster tier: per-replica breakers are consulted
                # inside the candidate walk; only a fleet-wide refusal
                # degrades (replica -> next replica -> threads).
                try:
                    return _dial_pooled(
                        pipe, scheduler, address, coexpr.name, request
                    )
                except PipeConnectionLost as error:
                    reason = str(error)
            else:
                try:
                    return _connect_worker(
                        pipe, scheduler, address, coexpr.name, request
                    )
                except (OSError, EOFError) as error:
                    breaker.record_failure()
                    reason = f"connect to {address!r} failed: {error!r}"
    pipe._degraded = reason
    if lifecycle_enabled():
        emit_lifecycle(
            Event(EventKind.DEGRADED, f"pipe:{pipe.coexpr.name}", 0, reason)
        )
    return None


class RemotePipe(IconIterator):
    """A pipe over a factory the *server* registered by name.

    The consumer-facing twin of ``Pipe(..., backend="remote")`` for
    bodies that only exist server-side: ``RemotePipe(address, "events",
    args=(...,))`` asks the server to run its ``events`` factory and
    streams the results through a local channel with the same take /
    iterate / cancel surface a :class:`~repro.coexpr.pipe.Pipe` has.

    There is no local body to fall back to, so connection failures
    raise :class:`~repro.errors.PipeConnectionLost` instead of
    degrading.  ``refresh()`` returns a sibling proxy — a *new*
    connection replaying the factory from the start — which is what
    supervision needs for reconnect-and-replay.
    """

    __slots__ = (
        "address",
        "factory_name",
        "args",
        "capacity",
        "out",
        "take_timeout",
        "batch",
        "heartbeat_interval",
        "heartbeat_timeout",
        "deadline",
        "upstream",
        "_scheduler",
        "_worker",
        "_started",
        "_cancelled",
        "_errored",
    )

    def __init__(
        self,
        address: Any,
        name: str,
        args: tuple = (),
        capacity: int = 0,
        scheduler: PipeScheduler | None = None,
        take_timeout: float | None = None,
        batch: int = 1,
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        deadline: Any = None,
    ) -> None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        super().__init__()
        from .cluster import normalize_remote_address

        # A list of replicas becomes a ServerPool; a single (host, port)
        # stays a tuple; an existing pool is shared (routing memory —
        # suspicion, failover history — persists across refresh()).
        self.address = normalize_remote_address(address)
        self.factory_name = name
        self.args = tuple(args)
        self.capacity = capacity
        self.out = Channel(capacity)
        self.take_timeout = take_timeout
        self.batch = batch
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else 0.1
        )
        self.heartbeat_timeout = heartbeat_timeout
        #: End-to-end budget; shipped to the server in the handshake.
        self.deadline = deadline_from(deadline)
        self.upstream: Any = None
        self._scheduler = scheduler
        self._worker: RemoteWorker | None = None
        self._started = False
        self._cancelled = False
        self._errored = False

    def _emit(self, kind: str, value: Any = None) -> None:
        if lifecycle_enabled():
            emit_lifecycle(Event(kind, f"pipe:{self.factory_name}", 0, value))

    def _deadline_error(self, where: str) -> PipeDeadlineExceeded:
        self._emit(EventKind.DEADLINE_EXPIRED, {"where": where, "remaining": 0.0})
        return PipeDeadlineExceeded(
            f"remote pipe {self.factory_name!r}: deadline exceeded ({where})",
            where=where,
        )

    def _cancel_upstream(self) -> None:
        upstream = self.upstream
        if upstream is not None:
            canceller = getattr(upstream, "cancel", None)
            if canceller is not None:
                canceller()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "RemotePipe":
        """Connect and start streaming (idempotent; lazy via take).

        An expired deadline short-circuits before the dial; an open
        circuit breaker fails fast with
        :class:`~repro.errors.PipeServerBusy` (retryable — there is no
        local body to degrade to).
        """
        if self._started or self._cancelled:
            return self
        deadline = self.deadline
        if deadline is not None and deadline.expired():
            error = self._deadline_error("start")
            self.cancel()
            raise error
        pooled = hasattr(self.address, "dial_candidates")
        if not pooled:
            breaker = breaker_for(self.address)
            if not breaker.allow():
                raise PipeServerBusy(
                    f"remote pipe {self.factory_name!r}: circuit breaker open "
                    f"for {self.address!r}",
                    address=self.address,
                    retry_after=breaker.remaining(),
                )
        self._started = True
        scheduler = self._scheduler or default_scheduler()
        request = (
            WIRE_CALL,
            {
                "name": self.factory_name,
                "args": self.args,
                "batch": self.batch,
                "max_linger": None,
                "heartbeat_interval": self.heartbeat_interval,
            },
        )
        if pooled:
            # Cluster tier: walk the replicas (per-replica breakers are
            # consulted inside).  Only a fleet-wide refusal propagates —
            # there is no local body to degrade to.
            try:
                self._worker = _dial_pooled(
                    self,
                    scheduler,
                    self.address,
                    self.factory_name,
                    request,
                    label=lambda a: f"{self.factory_name}@{a[0]}:{a[1]}",
                )
            except BaseException:
                self._started = False
                raise
            return self
        label = f"{self.factory_name}@{self.address[0]}:{self.address[1]}"
        try:
            self._worker = _connect_worker(
                self, scheduler, self.address, label, request
            )
        except (OSError, EOFError) as error:
            # Un-start on a failed dial: with _started left set, a
            # retrying take() would skip the reconnect and block forever
            # on a channel nothing will ever feed or close.
            self._started = False
            breaker.record_failure()
            raise PipeConnectionLost(
                f"remote pipe {self.factory_name!r}: cannot reach "
                f"{self.address!r} ({error!r})",
                address=self.address,
                reason="connect failed",
            ) from error
        except BaseException:
            self._started = False
            raise
        return self

    def cancel(self, join: bool = False, timeout: float | None = None) -> bool:
        """Stop the remote session and close the local channel."""
        first = not self._cancelled
        self._cancelled = True
        if first:
            self.out.close()
            worker = self._worker
            if worker is not None:
                worker.terminate()
        worker = self._worker
        if worker is None:
            return True
        if join:
            return worker.join(timeout)
        return not worker.is_alive()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def refresh(self) -> "RemotePipe":
        """A sibling proxy: a fresh connection replaying the factory."""
        return RemotePipe(
            self.address,
            self.factory_name,
            args=self.args,
            capacity=self.capacity,
            scheduler=self._scheduler,
            take_timeout=self.take_timeout,
            batch=self.batch,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            deadline=self.deadline,  # the same budget: a refresh is not a reset
        )

    # -- consumer --------------------------------------------------------------

    def take(self, timeout: Any = _UNSET) -> Any:
        """The next result or :data:`FAIL`; deadline like ``Pipe.take``."""
        if timeout is _UNSET:
            timeout = self.take_timeout
        deadline = self.deadline
        if deadline is not None:
            if deadline.expired():
                error = self._deadline_error("take")
                self.cancel()
                raise error
            timeout = deadline.bound(timeout)
        try:
            self.start()
            item = self.out.take(timeout)
        except PipeDeadlineExceeded:
            # The server session's own expiry envelope (or a start-time
            # short-circuit): tear down and let it through unwrapped.
            self.cancel()
            raise
        except PipeTimeoutError:
            if deadline is not None and deadline.expired():
                error = self._deadline_error("take")
                self.cancel()
                raise error from None
            raise PipeTimeoutError(
                f"remote pipe {self.factory_name!r}: no result within {timeout}s"
            ) from None
        if item is CLOSED:
            return FAIL
        return item

    def next_value(self) -> Any:
        return self.take()

    def iterate(self) -> Iterator[Any]:
        self.start()
        while True:
            item = self.take()
            if item is FAIL:
                return
            yield item

    # -- runtime protocol hooks ------------------------------------------------

    def icon_activate(self, transmit: Any = None) -> Any:
        if transmit is not None:
            raise PipeError("cannot transmit a value into a remote pipe")
        return self.take()

    def icon_promote(self) -> Iterator[Any]:
        return self.iterate()

    def icon_type(self) -> str:
        return "remote-pipe"

    def __repr__(self) -> str:
        state = (
            "cancelled"
            if self._cancelled
            else ("connected" if self._started else "unstarted")
        )
        return (
            f"RemotePipe({self.factory_name}@{self.address!r}, {state}, "
            f"queued={len(self.out)})"
        )
