"""The cluster tier — replicated generator servers behind one address.

``backend="remote"`` binds a pipeline to exactly one
:class:`~repro.net.server.GeneratorServer`: a single point of failure
and a vertical ceiling.  This module turns a *list* of addresses into a
routing layer with the same surface a single ``(host, port)`` pair has:

* :class:`HashRing` — consistent hashing with virtual nodes.  Factory
  placement is stable (the same pipeline name lands on the same replica
  run after run) and membership changes are minimal (removing a replica
  remaps only the keys it owned; every other key stays put).
* :class:`ServerPool` — the live routing state over a ring: per-address
  *suspicion* (a replica whose session just died or shed is routed
  around while the window lasts), per-key session memory (which replica
  served a stream last, and whether that session was lost), and the
  monitor-event vocabulary of recovery — ``REROUTE`` when placement
  skips a candidate, ``FAILOVER`` when a lost stream reconnects to a
  *different* replica, ``STEAL`` when
  :class:`~repro.coexpr.dataparallel.DataParallel` re-runs a chunk that
  was stranded on a dead or shed replica.

Failover deliberately *composes* with what is already there instead of
duplicating it: the per-address
:class:`~repro.net.client.CircuitBreaker` supplies liveness memory
between dials, supervision's reconnect+replay preserves the
exactly-once delivered prefix across the re-route, and the
:class:`~repro.coexpr.deadline.Deadline` wire rule already makes
budgets survive re-routing (only remaining seconds ever cross a
boundary).  The degradation order is **replica → next replica →
threads** — work is never silently lost: only when every replica is
down or shedding does a transparent pipe fall back to the thread tier
(the documented ``DEGRADED`` path), and a chunk task that exhausts its
steal budget re-runs locally.

Trust model: a pool is just N servers, so the single-server posture
applies to each replica — the wire is unauthenticated, and replicas
meant for untrusted clients should all run ``allow_spawn=False`` (the
restricted-unpickler posture); a pool is only as safe as its least
restricted member.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import threading
import time
from typing import Any, Iterable, List

from ..monitor.events import Event, EventKind, emit_lifecycle, lifecycle_enabled

__all__ = ["HashRing", "ServerPool", "normalize_remote_address"]

#: Virtual nodes per ring member.  128 points keep the worst member's
#: key share within a few tens of percent of the mean (the hypothesis
#: suite pins a 2x bound), at ~1 µs of bisect per route.
_DEFAULT_VNODES = 128
#: Seconds a replica stays *suspect* (routed around) after a lost or
#: shed session.  Short on purpose: the circuit breaker carries the
#: longer memory, suspicion only has to outlive the immediate
#: reconnect so a supervised replay does not re-dial the corpse.
_DEFAULT_SUSPICION = 1.0


def _hash64(data: str) -> int:
    """Stable 64-bit hash (blake2b) — ``hash()`` is salted per process,
    which would re-shuffle placement on every restart."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing over hashable nodes with virtual points.

    Each node contributes ``vnodes`` points on a 64-bit ring; a key is
    owned by the first point clockwise from its own hash.  Two
    properties matter (and are hypothesis-tested):

    * **balance** — with enough virtual points, every node owns a share
      of the key space close to the mean;
    * **minimal remap** — removing a node reassigns *only* the keys
      that node owned; adding one steals keys only for the new node.

    Not thread-safe by itself; :class:`ServerPool` serializes access.
    """

    __slots__ = ("vnodes", "_points", "_owners", "_nodes")

    def __init__(self, nodes: Iterable[Any] = (), vnodes: int = _DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []      # sorted ring positions
        self._owners: dict[int, Any] = {} # position -> node
        self._nodes: dict[Any, List[int]] = {}
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Any) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> tuple:
        return tuple(self._nodes)

    def add(self, node: Any) -> None:
        """Insert *node* (idempotent)."""
        if node in self._nodes:
            return
        points = []
        for index in range(self.vnodes):
            point = _hash64(f"{node!r}#{index}")
            while point in self._owners:  # 64-bit collision: nudge
                point = (point + 1) % (1 << 64)
            self._owners[point] = node
            bisect.insort(self._points, point)
            points.append(point)
        self._nodes[node] = points

    def remove(self, node: Any) -> None:
        """Remove *node* (idempotent); only its keys are remapped."""
        points = self._nodes.pop(node, None)
        if points is None:
            return
        drop = set(points)
        self._points = [p for p in self._points if p not in drop]
        for point in points:
            del self._owners[point]

    def node_for(self, key: Any) -> Any:
        """The node owning *key* (the ring's primary placement)."""
        if not self._points:
            raise ValueError("hash ring is empty")
        index = bisect.bisect_right(self._points, _hash64(repr(key)))
        return self._owners[self._points[index % len(self._points)]]

    def preference(self, key: Any) -> List[Any]:
        """Every node, ordered by ring walk from *key*'s position.

        The failover order: the primary first, then the replica that
        would own the key if the primary vanished, and so on — so
        routing around a dead node lands exactly where a ring with that
        node removed would place the key (the minimal-remap property,
        applied at dial time).
        """
        if not self._points:
            return []
        start = bisect.bisect_right(self._points, _hash64(repr(key)))
        count = len(self._points)
        want = len(self._nodes)
        seen: set = set()
        order: List[Any] = []
        for step in range(count):
            node = self._owners[self._points[(start + step) % count]]
            if node not in seen:
                seen.add(node)
                order.append(node)
                if len(order) == want:
                    break
        return order


def _as_address(value: Any) -> tuple:
    """One ``(host, port)`` pair, normalized to a hashable tuple."""
    try:
        host, port = value
    except (TypeError, ValueError):
        raise ValueError(f"not a (host, port) address: {value!r}") from None
    if not isinstance(host, str) or not isinstance(port, int):
        raise ValueError(f"not a (host, port) address: {value!r}")
    return (host, port)


def _is_single_address(value: Any) -> bool:
    return (
        isinstance(value, (tuple, list))
        and len(value) == 2
        and isinstance(value[0], str)
        and isinstance(value[1], int)
    )


def normalize_remote_address(value: Any) -> Any:
    """Accept every shape ``remote_address`` takes, everywhere.

    * ``None`` and an existing :class:`ServerPool` pass through;
    * a single ``(host, port)`` pair stays a plain tuple (the
      single-server tier, byte-for-byte the old behavior);
    * a list/tuple of pairs becomes a :class:`ServerPool` — the
      cluster tier.

    Callers that spawn *many* pipes over one cluster (supervision's
    restarts, a pipeline's stages, DataParallel's chunk tasks) should
    normalize once and share the pool object, so suspicion and
    failover memory persist across spawns.
    """
    if value is None or isinstance(value, ServerPool):
        return value
    if _is_single_address(value):
        return _as_address(value)
    return ServerPool(value)


class ServerPool:
    """Replica routing state: a hash ring plus liveness memory.

    The pool answers one question — *which replicas should this key try,
    in what order?* — and records the outcomes that shape the next
    answer: a lost or shed session makes its address **suspect** for
    ``suspicion`` seconds (routed last, not never — the degradation
    order ends at the replica list, so a suspect is still dialed before
    any thread fallback), a healthy stream clears it, and a reconnect
    that lands on a different replica than the lost session is a
    **failover**, emitted on the monitor bus and counted in
    :meth:`stats` / :meth:`~repro.monitor.Tracer.cluster_stats`.

    ``fault_plan`` (a :class:`~repro.coexpr.supervision.FaultPlan`)
    arms deterministic chaos: ``drop_connection`` / ``kill_server``
    rules keyed by route key fire from the client pump, so tests drive
    failover without racing a real crash.

    Thread-safe; one pool is meant to be shared by every pipe routed
    over the same replica fleet.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        addresses: Iterable[Any],
        vnodes: int = _DEFAULT_VNODES,
        suspicion: float = _DEFAULT_SUSPICION,
        name: str | None = None,
        fault_plan: Any = None,
    ) -> None:
        if suspicion < 0:
            raise ValueError("suspicion must be >= 0")
        normalized: List[tuple] = []
        for value in addresses:
            address = _as_address(value)
            if address not in normalized:
                normalized.append(address)
        if not normalized:
            raise ValueError("ServerPool needs at least one address")
        self.name = name or f"pool-{next(self._ids)}"
        self.suspicion = suspicion
        #: Chaos hook: rules keyed by route key, entered by the client
        #: pump on every (re)connect — attempt numbers count sessions.
        self.fault_plan = fault_plan
        self._lock = threading.Lock()
        self._ring = HashRing(normalized, vnodes=vnodes)
        self._addresses: List[tuple] = normalized
        self._suspect: dict[tuple, float] = {}  # address -> monotonic until
        self._last: dict[Any, tuple] = {}       # key -> last connected address
        self._lost: set = set()                 # keys whose last session died
        self._failovers = 0
        self._reroutes = 0
        self._steals = 0

    # -- membership ------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._addresses)

    @property
    def addresses(self) -> tuple:
        with self._lock:
            return tuple(self._addresses)

    def add(self, address: Any) -> None:
        """Join *address* to the fleet (idempotent); only the keys the
        new replica now owns are remapped."""
        address = _as_address(address)
        with self._lock:
            if address not in self._addresses:
                self._addresses.append(address)
                self._ring.add(address)

    def remove(self, address: Any) -> None:
        """Retire *address* (idempotent); only its keys are remapped."""
        address = _as_address(address)
        with self._lock:
            if address in self._addresses:
                self._addresses.remove(address)
                self._ring.remove(address)
                self._suspect.pop(address, None)

    # -- routing ---------------------------------------------------------------

    def primary(self, key: Any) -> tuple:
        """The ring's placement for *key*, ignoring liveness."""
        with self._lock:
            return self._ring.node_for(key)

    def dial_candidates(self, key: Any) -> List[tuple]:
        """Replicas to try for *key*, in order: the ring's preference
        walk with suspect addresses moved to the tail.

        Every replica appears — suspicion re-orders, it never excludes:
        if the whole fleet is suspect the dial still tries each one
        (fast refusals) before the caller degrades to threads.
        """
        now = time.monotonic()
        with self._lock:
            preference = self._ring.preference(key)
            suspect = {
                address
                for address, until in self._suspect.items()
                if until > now
            }
        live = [address for address in preference if address not in suspect]
        tail = [address for address in preference if address in suspect]
        return live + tail

    def suspected(self, address: Any) -> bool:
        with self._lock:
            return self._suspect.get(address, 0.0) > time.monotonic()

    def last_address(self, key: Any) -> tuple | None:
        """The replica the last successful dial for *key* landed on
        (None before any connect).  Lets a test — or an operator — ask
        *which* replica currently serves a stream, e.g. to kill it."""
        with self._lock:
            return self._last.get(key)

    # -- outcome notifications (the client pump and dial loop call these) ------

    def _emit(self, kind: str, value: dict) -> None:
        if lifecycle_enabled():
            emit_lifecycle(Event(kind, f"pool:{self.name}", 0, value))

    def note_lost(self, key: Any, address: Any, reason: str) -> None:
        """A session for *key* on *address* died or was shed."""
        with self._lock:
            self._suspect[address] = time.monotonic() + self.suspicion
            self._lost.add(key)

    def note_dial_failure(self, key: Any, address: Any, error: BaseException) -> None:
        """A dial for *key* to *address* failed; routing moves on."""
        with self._lock:
            self._suspect[address] = time.monotonic() + self.suspicion
            self._reroutes += 1
        self._emit(
            EventKind.REROUTE,
            {"key": key, "skipped": address, "reason": f"dial failed: {error!r}"},
        )

    def note_skip(self, key: Any, address: Any, reason: str) -> None:
        """Routing for *key* passed over *address* without dialing
        (breaker open, suspect window)."""
        with self._lock:
            self._reroutes += 1
        self._emit(
            EventKind.REROUTE, {"key": key, "skipped": address, "reason": reason}
        )

    def note_connect(self, key: Any, address: Any) -> None:
        """A dial for *key* landed on *address*.  A reconnect after a
        loss that lands on a *different* replica is the failover."""
        with self._lock:
            previous = self._last.get(key)
            recovered = key in self._lost
            self._last[key] = address
            self._lost.discard(key)
            failover = recovered and previous is not None and previous != address
            if failover:
                self._failovers += 1
        if failover:
            self._emit(
                EventKind.FAILOVER,
                {"key": key, "from": previous, "to": address},
            )

    def note_healthy(self, address: Any) -> None:
        """A stream on *address* proved the replica alive."""
        with self._lock:
            self._suspect.pop(address, None)

    def note_steal(
        self, key: Any, delivered: int, reason: str, fallback: bool = False
    ) -> None:
        """A DataParallel chunk stranded on a dead/shed replica is being
        re-run (*fallback* = on the thread tier, the end of the
        degradation order)."""
        with self._lock:
            self._steals += 1
        self._emit(
            EventKind.STEAL,
            {
                "key": key,
                "delivered": delivered,
                "reason": reason,
                "fallback": fallback,
            },
        )

    # -- chaos -----------------------------------------------------------------

    def chaos_enter(self, key: Any) -> Any:
        """Enter the fault plan for one (re)connection of *key*; None
        when no plan is armed.  May raise the injected fault itself
        (a ``drop_connection`` rule with ``after_items=0``)."""
        plan = self.fault_plan
        if plan is None:
            return None
        return plan.enter(key)

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """``{"addresses", "suspected", "failovers", "reroutes",
        "steals"}`` — the pool-side recovery counters."""
        now = time.monotonic()
        with self._lock:
            return {
                "addresses": tuple(self._addresses),
                "suspected": tuple(
                    address
                    for address, until in self._suspect.items()
                    if until > now
                ),
                "failovers": self._failovers,
                "reroutes": self._reroutes,
                "steals": self._steals,
            }

    def __repr__(self) -> str:
        with self._lock:
            members = ", ".join(f"{h}:{p}" for h, p in self._addresses)
        return f"ServerPool({self.name}, [{members}])"
