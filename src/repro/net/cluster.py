"""The cluster tier — replicated generator servers behind one address.

``backend="remote"`` binds a pipeline to exactly one
:class:`~repro.net.server.GeneratorServer`: a single point of failure
and a vertical ceiling.  This module turns a *list* of addresses into a
routing layer with the same surface a single ``(host, port)`` pair has:

* :class:`HashRing` — consistent hashing with virtual nodes.  Factory
  placement is stable (the same pipeline name lands on the same replica
  run after run) and membership changes are minimal (removing a replica
  remaps only the keys it owned; every other key stays put).
* :class:`ServerPool` — the live routing state over a ring: per-address
  *suspicion* (a replica whose session just died or shed is routed
  around while the window lasts), per-key session memory (which replica
  served a stream last, and whether that session was lost), and the
  monitor-event vocabulary of recovery — ``REROUTE`` when placement
  skips a candidate, ``FAILOVER`` when a lost stream reconnects to a
  *different* replica, ``STEAL`` when
  :class:`~repro.coexpr.dataparallel.DataParallel` re-runs a chunk that
  was stranded on a dead or shed replica.

Failover deliberately *composes* with what is already there instead of
duplicating it: the per-address
:class:`~repro.net.client.CircuitBreaker` supplies liveness memory
between dials, supervision's reconnect+replay preserves the
exactly-once delivered prefix across the re-route, and the
:class:`~repro.coexpr.deadline.Deadline` wire rule already makes
budgets survive re-routing (only remaining seconds ever cross a
boundary).  The degradation order is **replica → next replica →
threads** — work is never silently lost: only when every replica is
down or shedding does a transparent pipe fall back to the thread tier
(the documented ``DEGRADED`` path), and a chunk task that exhausts its
steal budget re-runs locally.

Trust model: a pool is just N servers, so the single-server posture
applies to each replica — the wire is unauthenticated, and replicas
meant for untrusted clients should all run ``allow_spawn=False`` (the
restricted-unpickler posture); a pool is only as safe as its least
restricted member.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import threading
import time
from typing import Any, Iterable, List

from ..monitor.events import Event, EventKind, emit_lifecycle, lifecycle_enabled
from .membership import (
    HealthProber,
    as_member,
    membership_source,
    shared_health,
)

__all__ = ["HashRing", "ServerPool", "normalize_remote_address"]

#: Virtual nodes per ring member.  128 points keep the worst member's
#: key share within a few tens of percent of the mean (the hypothesis
#: suite pins a 2x bound), at ~1 µs of bisect per route.
_DEFAULT_VNODES = 128
#: Seconds a replica stays *suspect* (routed around) after a lost or
#: shed session.  Short on purpose: the circuit breaker carries the
#: longer memory, suspicion only has to outlive the immediate
#: reconnect so a supervised replay does not re-dial the corpse.
_DEFAULT_SUSPICION = 1.0
#: Probe cadence when a dynamic pool turns probing on without an
#: explicit interval (``remote_address="registry:..."`` / ``"gossip:..."``).
_DEFAULT_PROBE = 0.25
#: How often a source-backed pool polls its registry/gossip source.
_DEFAULT_REFRESH = 1.0


def _hash64(data: str) -> int:
    """Stable 64-bit hash (blake2b) — ``hash()`` is salted per process,
    which would re-shuffle placement on every restart."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing over hashable nodes with virtual points.

    Each node contributes ``vnodes`` points on a 64-bit ring; a key is
    owned by the first point clockwise from its own hash.  Two
    properties matter (and are hypothesis-tested):

    * **balance** — with enough virtual points, every node owns a share
      of the key space close to the mean;
    * **minimal remap** — removing a node reassigns *only* the keys
      that node owned; adding one steals keys only for the new node.

    Not thread-safe by itself; :class:`ServerPool` serializes access.
    """

    __slots__ = ("vnodes", "_points", "_owners", "_nodes", "_weights")

    def __init__(self, nodes: Iterable[Any] = (), vnodes: int = _DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []      # sorted ring positions
        self._owners: dict[int, Any] = {} # position -> node
        self._nodes: dict[Any, List[int]] = {}
        self._weights: dict[Any, float] = {}
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Any) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> tuple:
        return tuple(self._nodes)

    def weight(self, node: Any) -> float:
        """The weight *node* was added with (KeyError when absent)."""
        return self._weights[node]

    def add(self, node: Any, weight: float = 1.0) -> None:
        """Insert *node* (idempotent) with ``vnodes * weight`` points.

        Weight scales a member's share of the key space for
        heterogeneous hosts: a weight-2 replica owns twice the keys of
        a weight-1 one (the hypothesis suite pins the weighted 2x
        balance bound).  Very small weights still get one point — a
        member on the ring is always reachable by some key.
        """
        if weight <= 0:
            raise ValueError("weight must be > 0")
        if node in self._nodes:
            return
        points = []
        for index in range(max(1, round(self.vnodes * weight))):
            point = _hash64(f"{node!r}#{index}")
            while point in self._owners:  # 64-bit collision: nudge
                point = (point + 1) % (1 << 64)
            self._owners[point] = node
            bisect.insort(self._points, point)
            points.append(point)
        self._nodes[node] = points
        self._weights[node] = float(weight)

    def remove(self, node: Any) -> None:
        """Remove *node* (idempotent); only its keys are remapped."""
        points = self._nodes.pop(node, None)
        if points is None:
            return
        self._weights.pop(node, None)
        drop = set(points)
        self._points = [p for p in self._points if p not in drop]
        for point in points:
            del self._owners[point]

    def node_for(self, key: Any) -> Any:
        """The node owning *key* (the ring's primary placement)."""
        if not self._points:
            raise ValueError("hash ring is empty")
        index = bisect.bisect_right(self._points, _hash64(repr(key)))
        return self._owners[self._points[index % len(self._points)]]

    def preference(self, key: Any) -> List[Any]:
        """Every node, ordered by ring walk from *key*'s position.

        The failover order: the primary first, then the replica that
        would own the key if the primary vanished, and so on — so
        routing around a dead node lands exactly where a ring with that
        node removed would place the key (the minimal-remap property,
        applied at dial time).
        """
        if not self._points:
            return []
        start = bisect.bisect_right(self._points, _hash64(repr(key)))
        count = len(self._points)
        want = len(self._nodes)
        seen: set = set()
        order: List[Any] = []
        for step in range(count):
            node = self._owners[self._points[(start + step) % count]]
            if node not in seen:
                seen.add(node)
                order.append(node)
                if len(order) == want:
                    break
        return order


def _as_address(value: Any) -> tuple:
    """One ``(host, port)`` pair, normalized to a hashable tuple."""
    try:
        host, port = value
    except (TypeError, ValueError):
        raise ValueError(f"not a (host, port) address: {value!r}") from None
    if not isinstance(host, str) or not isinstance(port, int):
        raise ValueError(f"not a (host, port) address: {value!r}")
    return (host, port)


def _is_single_address(value: Any) -> bool:
    return (
        isinstance(value, (tuple, list))
        and len(value) == 2
        and isinstance(value[0], str)
        and isinstance(value[1], int)
    )


def normalize_remote_address(value: Any) -> Any:
    """Accept every shape ``remote_address`` takes, everywhere.

    * ``None`` and an existing :class:`ServerPool` pass through;
    * a single ``(host, port)`` pair stays a plain tuple (the
      single-server tier, byte-for-byte the old behavior);
    * a list/tuple of pairs (optionally ``(host, port, weight)``
      triples) becomes a :class:`ServerPool` — the cluster tier;
    * a membership spelling — ``"registry:/path.json"``,
      ``"gossip:host:port,..."``, or a source object — becomes a pool
      with live membership (and probing on by default: dynamic fleets
      need an active liveness verdict, not just dial outcomes).

    Callers that spawn *many* pipes over one cluster (supervision's
    restarts, a pipeline's stages, DataParallel's chunk tasks) should
    normalize once and share the pool object, so suspicion and
    failover memory persist across spawns.
    """
    if value is None or isinstance(value, ServerPool):
        return value
    if isinstance(value, str) or (
        hasattr(value, "initial") and hasattr(value, "poll")
    ):
        return ServerPool(membership=value, probe_interval=_DEFAULT_PROBE)
    if _is_single_address(value):
        return _as_address(value)
    return ServerPool(value)


class ServerPool:
    """Replica routing state: a hash ring plus liveness memory.

    The pool answers one question — *which replicas should this key try,
    in what order?* — and records the outcomes that shape the next
    answer: a lost or shed session makes its address **suspect** for
    ``suspicion`` seconds (routed last, not never — the degradation
    order ends at the replica list, so a suspect is still dialed before
    any thread fallback), a healthy stream clears it, and a reconnect
    that lands on a different replica than the lost session is a
    **failover**, emitted on the monitor bus and counted in
    :meth:`stats` / :meth:`~repro.monitor.Tracer.cluster_stats`.

    ``fault_plan`` (a :class:`~repro.coexpr.supervision.FaultPlan`)
    arms deterministic chaos: ``drop_connection`` / ``kill_server`` /
    ``churn_membership`` rules keyed by route key fire from the client
    pump, so tests drive failover without racing a real crash.

    **Live membership** (PR 8).  The fleet is no longer frozen:
    :meth:`add` / :meth:`remove` change it at runtime (each remaps only
    the keys the ring's minimal-remap property says must move), a
    *membership source* (``membership=`` — a
    :class:`~repro.net.membership.FileRegistry`,
    :class:`~repro.net.membership.GossipMembers`, or the string
    spellings ``"registry:/path.json"`` / ``"gossip:host:port,..."``)
    feeds those transitions from a background thread, and a **health
    prober** (``probe_interval=`` seconds; None = off) pings every
    member over persistent ``WIRE_PING`` control connections —
    ``probe_failures`` consecutive misses drive ``MEMBER_DOWN`` (the
    member leaves the *ring* but stays in the fleet, dialed only as a
    last resort), the next pong drives ``MEMBER_UP``.  Members carry
    **weights** (``(host, port, weight)`` triples): vnode counts scale
    proportionally, so a weight-2 host owns twice the key share.
    Probe verdicts and dial failures also feed the process-wide
    :func:`~repro.net.membership.shared_health` registry, so a second
    pool routing over the same dead replica demotes it without paying
    the connect-timeout trip.  Call :meth:`close` to stop the
    background thread (pools without a source or prober never start
    one).

    Thread-safe; one pool is meant to be shared by every pipe routed
    over the same replica fleet.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        addresses: Iterable[Any] = (),
        vnodes: int = _DEFAULT_VNODES,
        suspicion: float = _DEFAULT_SUSPICION,
        name: str | None = None,
        fault_plan: Any = None,
        membership: Any = None,
        probe_interval: float | None = None,
        probe_timeout: float = 1.0,
        probe_failures: int = 2,
        refresh_interval: float = _DEFAULT_REFRESH,
    ) -> None:
        if suspicion < 0:
            raise ValueError("suspicion must be >= 0")
        if probe_interval is not None and probe_interval <= 0:
            raise ValueError("probe_interval must be > 0 or None")
        if refresh_interval <= 0:
            raise ValueError("refresh_interval must be > 0")
        if isinstance(addresses, str) or (
            hasattr(addresses, "initial") and hasattr(addresses, "poll")
        ):
            if membership is not None:
                raise ValueError("pass the membership source only once")
            membership, addresses = addresses, ()
        self._source = (
            membership_source(membership) if membership is not None else None
        )
        members: List[tuple] = []  # ((host, port), weight), insertion order
        seen: set = set()
        for value in addresses:
            address, weight = as_member(value)
            if address not in seen:
                seen.add(address)
                members.append((address, weight))
        if self._source is not None:
            for address, weight in self._source.initial():
                if address not in seen:
                    seen.add(address)
                    members.append((address, weight))
        if not members and self._source is None:
            raise ValueError("ServerPool needs at least one address")
        self.name = name or f"pool-{next(self._ids)}"
        self.suspicion = suspicion
        #: Chaos hook: rules keyed by route key, entered by the client
        #: pump on every (re)connect — attempt numbers count sessions.
        self.fault_plan = fault_plan
        self.probe_interval = probe_interval
        self.refresh_interval = refresh_interval
        self._lock = threading.Lock()
        self._ring = HashRing(vnodes=vnodes)
        self._members: dict[tuple, float] = {}  # address -> weight
        self._down: dict[tuple, str] = {}       # address -> down reason
        for address, weight in members:
            self._members[address] = weight
            self._ring.add(address, weight=weight)
        self._suspect: dict[tuple, float] = {}  # address -> monotonic until
        self._last: dict[Any, tuple] = {}       # key -> last connected address
        self._lost: set = set()                 # keys whose last session died
        self._failovers = 0
        self._reroutes = 0
        self._steals = 0
        self._joins = 0
        self._leaves = 0
        self._ups = 0
        self._downs = 0
        self._prober = (
            HealthProber(timeout=probe_timeout, failures=probe_failures)
            if probe_interval is not None
            else None
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if self._prober is not None or self._source is not None:
            # A plain daemon thread, not a scheduler worker: the pool is
            # routing infrastructure that outlives any one scheduler,
            # and close() is its teardown.
            self._thread = threading.Thread(
                target=self._membership_loop,
                name=f"membership-{self.name}",
                daemon=True,
            )
            self._thread.start()

    # -- membership ------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    @property
    def addresses(self) -> tuple:
        """Every fleet member (up or down), in join order."""
        with self._lock:
            return tuple(self._members)

    @property
    def up_addresses(self) -> tuple:
        """Members currently on the ring (not probed down)."""
        with self._lock:
            return tuple(a for a in self._members if a not in self._down)

    @property
    def down_addresses(self) -> tuple:
        """Members the prober has declared dead (off the ring, still in
        the fleet — the next pong brings them back)."""
        with self._lock:
            return tuple(self._down)

    def weight_of(self, address: Any) -> float:
        address, _ = as_member(address)
        with self._lock:
            return self._members[address]

    def add(self, member: Any, weight: float | None = None, source: str = "api") -> bool:
        """Join *member* to the fleet (idempotent); only the keys the
        new replica now owns are remapped.  *member* may carry its
        weight (``(host, port, weight)``); an explicit ``weight=``
        wins.  Returns True when the fleet actually changed."""
        address, parsed_weight = as_member(member)
        weight = parsed_weight if weight is None else float(weight)
        with self._lock:
            if address in self._members:
                return False
            self._members[address] = weight
            self._ring.add(address, weight=weight)
            self._joins += 1
        self._emit(
            EventKind.MEMBER_JOIN,
            {"address": address, "weight": weight, "source": source},
        )
        return True

    def remove(self, member: Any, source: str = "api") -> bool:
        """Retire *member* (idempotent); only its keys are remapped.
        Returns True when the fleet actually changed."""
        address, _ = as_member(member)
        with self._lock:
            if address not in self._members:
                return False
            del self._members[address]
            self._ring.remove(address)
            self._suspect.pop(address, None)
            self._down.pop(address, None)
            self._leaves += 1
        if self._prober is not None:
            self._prober.forget(address)
        self._emit(EventKind.MEMBER_LEAVE, {"address": address, "source": source})
        return True

    def mark_down(self, address: Any, reason: str, misses: int = 0) -> bool:
        """The prober's death verdict: *address* leaves the ring (its
        keys remap minimally) but stays a fleet member — dialed only
        after every up member, and restored by :meth:`mark_up`."""
        address, _ = as_member(address)
        with self._lock:
            if address not in self._members or address in self._down:
                return False
            self._down[address] = reason
            self._ring.remove(address)
            self._downs += 1
        shared_health().mark_down(
            address, reason, ttl=self._shared_ttl()
        )
        self._emit(
            EventKind.MEMBER_DOWN,
            {"address": address, "reason": reason, "misses": misses},
        )
        # Eager drain: every in-flight stream on the dead replica is
        # doomed — wake its watchdog now so failover starts within one
        # poll slice of the verdict, not one full heartbeat timeout.
        from .client import drain_address

        drain_address(address, f"marked down by health probe: {reason}")
        return True

    def mark_up(self, address: Any) -> bool:
        """A pong (or a healthy stream) on a down member: back on the
        ring, owning exactly the keys the weighted ring gives it."""
        address, _ = as_member(address)
        with self._lock:
            if address not in self._down:
                return False
            del self._down[address]
            self._ring.add(address, weight=self._members[address])
            self._suspect.pop(address, None)
            self._ups += 1
        shared_health().mark_up(address)
        self._emit(EventKind.MEMBER_UP, {"address": address})
        return True

    def _shared_ttl(self) -> float:
        """How long a shared down-mark lives without refresh: a probing
        pool refreshes every round, so a few intervals outlive jitter;
        a non-probing pool falls back to its suspicion window."""
        if self.probe_interval is not None:
            return max(5 * self.probe_interval, self.suspicion)
        return self.suspicion

    # -- the background membership loop ---------------------------------------

    def _membership_loop(self) -> None:
        next_probe = next_refresh = time.monotonic()
        while not self._stop.is_set():
            now = time.monotonic()
            due = []
            if self._source is not None and now >= next_refresh:
                next_refresh = now + self.refresh_interval
                due.append(self.refresh)
            if self._prober is not None and now >= next_probe:
                next_probe = now + self.probe_interval
                due.append(self.probe_round)
            for step in due:
                try:
                    step()
                except Exception:  # noqa: BLE001 - a broken source/probe
                    pass  # must not kill the loop; the next tick retries
            waits = []
            if self._source is not None:
                waits.append(next_refresh - time.monotonic())
            if self._prober is not None:
                waits.append(next_probe - time.monotonic())
            self._stop.wait(max(0.005, min(waits)) if waits else 0.1)

    def refresh(self) -> None:
        """Poll the membership source once and apply the delta.

        Authoritative sources (registry, static) both add and remove;
        gossip is additive only — death is the prober's verdict, and an
        unauthenticated fleet claim must not evict members (see the
        membership module's trust note).
        """
        source = self._source
        if source is None:
            return
        with self._lock:
            current = list(self._members.items())
        desired = source.poll(current)
        if desired is None:
            return
        wanted = {address: weight for address, weight in desired}
        for address, weight in wanted.items():
            self.add((address[0], address[1]), weight=weight, source=source.kind)
        if getattr(source, "authoritative", True):
            for address, _ in current:
                if address not in wanted:
                    self.remove(address, source=source.kind)

    def probe_round(self) -> None:
        """Ping every member once and apply up/down transitions."""
        prober = self._prober
        if prober is None:
            return
        for address in self.addresses:
            if self._stop.is_set():
                return
            alive = prober.probe(address)
            misses = prober.record(address, alive)
            if alive:
                self.mark_up(address)
                shared_health().mark_up(address)
            elif misses >= prober.failures:
                if not self.mark_down(
                    address,
                    reason=f"no pong after {misses} probes",
                    misses=misses,
                ):
                    # Already down: refresh the shared mark so it
                    # outlives its TTL while the corpse stays dead.
                    shared_health().mark_down(
                        address,
                        f"no pong after {misses} probes",
                        ttl=self._shared_ttl(),
                    )

    def close(self) -> None:
        """Stop the membership thread and probe connections
        (idempotent).  Routing keeps working on the frozen state."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0)
        if self._prober is not None:
            self._prober.close()

    def __enter__(self) -> "ServerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- routing ---------------------------------------------------------------

    def primary(self, key: Any) -> tuple:
        """The ring's placement for *key*, ignoring liveness."""
        with self._lock:
            return self._ring.node_for(key)

    def dial_candidates(self, key: Any) -> List[tuple]:
        """Replicas to try for *key*, in order: the ring's preference
        walk (up members only) with suspect addresses moved to the
        tail, then probed-down members last.

        Every fleet member appears — suspicion and even a MEMBER_DOWN
        verdict re-order, they never exclude: if the whole fleet is
        down the dial still tries each one (fast refusals) before the
        caller degrades to threads.  Suspicion here is the *union* of
        this pool's window and the process-wide shared health registry,
        so another pool's dead-replica discovery demotes the address
        before this pool ever pays the trip.
        """
        now = time.monotonic()
        health = shared_health()
        with self._lock:
            preference = self._ring.preference(key)
            down = [address for address in self._members if address in self._down]
            suspect = {
                address
                for address, until in self._suspect.items()
                if until > now
            }
        suspect.update(
            address for address in preference
            if address not in suspect and health.is_down(address)
        )
        live = [address for address in preference if address not in suspect]
        tail = [address for address in preference if address in suspect]
        return live + tail + down

    def suspected(self, address: Any) -> bool:
        with self._lock:
            return self._suspect.get(address, 0.0) > time.monotonic()

    def last_address(self, key: Any) -> tuple | None:
        """The replica the last successful dial for *key* landed on
        (None before any connect).  Lets a test — or an operator — ask
        *which* replica currently serves a stream, e.g. to kill it."""
        with self._lock:
            return self._last.get(key)

    # -- outcome notifications (the client pump and dial loop call these) ------

    def _emit(self, kind: str, value: dict) -> None:
        if lifecycle_enabled():
            emit_lifecycle(Event(kind, f"pool:{self.name}", 0, value))

    def note_lost(self, key: Any, address: Any, reason: str) -> None:
        """A session for *key* on *address* died or was shed."""
        with self._lock:
            self._suspect[address] = time.monotonic() + self.suspicion
            self._lost.add(key)
        shared_health().mark_down(address, reason, ttl=self.suspicion)

    def note_dial_failure(self, key: Any, address: Any, error: BaseException) -> None:
        """A dial for *key* to *address* failed; routing moves on."""
        with self._lock:
            self._suspect[address] = time.monotonic() + self.suspicion
            self._reroutes += 1
        shared_health().mark_down(
            address, f"dial failed: {error!r}", ttl=self.suspicion
        )
        self._emit(
            EventKind.REROUTE,
            {"key": key, "skipped": address, "reason": f"dial failed: {error!r}"},
        )

    def note_skip(self, key: Any, address: Any, reason: str) -> None:
        """Routing for *key* passed over *address* without dialing
        (breaker open, suspect window)."""
        with self._lock:
            self._reroutes += 1
        self._emit(
            EventKind.REROUTE, {"key": key, "skipped": address, "reason": reason}
        )

    def note_connect(self, key: Any, address: Any) -> None:
        """A dial for *key* landed on *address*.  A reconnect after a
        loss that lands on a *different* replica is the failover."""
        with self._lock:
            previous = self._last.get(key)
            recovered = key in self._lost
            self._last[key] = address
            self._lost.discard(key)
            failover = recovered and previous is not None and previous != address
            if failover:
                self._failovers += 1
        if failover:
            self._emit(
                EventKind.FAILOVER,
                {"key": key, "from": previous, "to": address},
            )

    def note_healthy(self, address: Any) -> None:
        """A stream on *address* proved the replica alive — stronger
        evidence than any probe, so it also reverses a MEMBER_DOWN."""
        with self._lock:
            self._suspect.pop(address, None)
        shared_health().mark_up(address)
        self.mark_up(address)

    def note_steal(
        self,
        key: Any,
        delivered: int,
        reason: str,
        fallback: bool = False,
        address: Any = None,
    ) -> None:
        """A DataParallel chunk stranded on a dead/shed replica is being
        re-run (*fallback* = on the thread tier, the end of the
        degradation order).  *address* is the replica the chunk was
        stranded on, when the caller knows it — it feeds the per-address
        breakdown in ``Tracer.cluster_stats()``."""
        with self._lock:
            self._steals += 1
        self._emit(
            EventKind.STEAL,
            {
                "key": key,
                "delivered": delivered,
                "reason": reason,
                "fallback": fallback,
                "address": address,
            },
        )

    # -- chaos -----------------------------------------------------------------

    def chaos_enter(self, key: Any) -> Any:
        """Enter the fault plan for one (re)connection of *key*; None
        when no plan is armed.  May raise the injected fault itself
        (a ``drop_connection`` rule with ``after_items=0``)."""
        plan = self.fault_plan
        if plan is None:
            return None
        return plan.enter(key)

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """``{"addresses", "up", "down", "weights", "suspected",
        "failovers", "reroutes", "steals", "joins", "leaves", "ups",
        "downs"}`` — the pool-side recovery + membership counters."""
        now = time.monotonic()
        with self._lock:
            return {
                "addresses": tuple(self._members),
                "up": tuple(a for a in self._members if a not in self._down),
                "down": tuple(self._down),
                "weights": dict(self._members),
                "suspected": tuple(
                    address
                    for address, until in self._suspect.items()
                    if until > now
                ),
                "failovers": self._failovers,
                "reroutes": self._reroutes,
                "steals": self._steals,
                "joins": self._joins,
                "leaves": self._leaves,
                "ups": self._ups,
                "downs": self._downs,
            }

    def __repr__(self) -> str:
        with self._lock:
            members = ", ".join(
                f"{h}:{p}" + ("!" if (h, p) in self._down else "")
                for h, p in self._members
            )
        return f"ServerPool({self.name}, [{members}])"
