"""The network tier — generator pipelines served over sockets.

The paper's pipes stream generator results through blocking queues
between threads; :mod:`repro.coexpr.proc` moved the same envelope
traffic across a process boundary.  This package moves it across a
*machine* boundary: a :class:`GeneratorServer` hosts pipeline bodies
(shipped by pickle, or registered by name) and streams their results
back over TCP, speaking the shared wire vocabulary of
:mod:`repro.coexpr.wire` — batched data slices, cause-preserving
errors, close envelopes, and heartbeats — with credit-based flow
control standing in for the blocking queue's capacity bound.

Two client shapes:

* ``Pipe(..., backend="remote", remote_address=(host, port))`` — the
  transparent tier: the pipe's own body is pickled and shipped, and the
  consumer sees the identical element-at-a-time stream (degrading to
  the thread backend when the body cannot travel);
* :class:`RemotePipe` — a proxy over a factory the *server* registered
  by name, for bodies that only exist on the far side.

The **event-loop server** (:mod:`repro.net.aserver`) is the same wire
contract on a different substrate: :class:`AsyncGeneratorServer`
multiplexes every session as a coroutine pair on one loop thread, so
thousands of concurrent streams cost memory instead of OS threads —
and nothing client-side can tell which server answered.

A dead connection surfaces as
:class:`~repro.errors.PipeConnectionLost`, which supervision treats as
a retryable fault: reconnect and replay.  An *overloaded* server sheds
instead of hanging — it answers the dial with ``WIRE_BUSY`` and a
retry hint, surfacing :class:`~repro.errors.PipeServerBusy`; repeated
busy/lost outcomes trip a per-address :class:`CircuitBreaker` that
fails fast (and lets ``backend="remote"`` degrade to threads) until a
half-open probe finds the server healthy again.

The **cluster tier** (:mod:`repro.net.cluster`) replicates the server:
``remote_address=[addr1, addr2, ...]`` anywhere a single address is
accepted becomes a :class:`ServerPool` — consistent-hash placement
over a :class:`HashRing`, failover to the next live replica on
connection loss or shed (the supervised replay preserves the
exactly-once delivered prefix), and a degradation order of
replica → next replica → threads.

**Live membership** (:mod:`repro.net.membership`) unfreezes the fleet:
pools probe their members with ``WIRE_PING`` control frames (a
``MEMBER_DOWN`` verdict takes a replica off the ring, the next pong
puts it back), learn joins/leaves from a :class:`FileRegistry`
(``remote_address="registry:/path.json"``) or seed-based
:class:`GossipMembers` (``"gossip:host:port"``, answered by any
server's ``WIRE_PEERS``), carry per-member weights (vnode scaling for
heterogeneous hosts), and share dead-address memory process-wide so
two pools never each pay the same corpse's connect timeout.
"""

from .aserver import AsyncGeneratorServer
from .client import (
    CircuitBreaker,
    RemotePipe,
    breaker_for,
    drain_address,
    remote_unsafe_reason,
    reset_breakers,
    start_remote_worker,
)
from .cluster import HashRing, ServerPool, normalize_remote_address
from .membership import (
    AddressHealth,
    FileRegistry,
    GossipMembers,
    HealthProber,
    StaticMembers,
    exchange_peers,
    membership_source,
    probe_address,
    reset_shared_health,
    shared_health,
)
from .server import GeneratorServer

__all__ = [
    "AddressHealth",
    "AsyncGeneratorServer",
    "CircuitBreaker",
    "FileRegistry",
    "GeneratorServer",
    "GossipMembers",
    "HashRing",
    "HealthProber",
    "RemotePipe",
    "ServerPool",
    "StaticMembers",
    "breaker_for",
    "drain_address",
    "exchange_peers",
    "membership_source",
    "normalize_remote_address",
    "probe_address",
    "remote_unsafe_reason",
    "reset_breakers",
    "reset_shared_health",
    "shared_health",
    "start_remote_worker",
]
