"""``junicon-serve`` — run a generator server from the command line.

Factories are published with ``--serve NAME=MODULE:ATTR`` (repeatable);
``--no-spawn`` restricts the server to those named factories.  The
server prints ``listening on HOST:PORT`` once bound (machine-parseable
for ephemeral ports) and shuts down gracefully — draining every open
session — on SIGTERM or SIGINT, exiting 0.

Operational limits mirror the :class:`GeneratorServer` kwargs:
``--max-sessions`` (shed over-capacity dials with a busy reply whose
hint is ``--retry-after``), ``--max-credit`` / ``--max-batch``
(per-session flow-control quotas), and ``--stall-intervals`` /
``--heartbeat-interval`` (liveness tuning).  Defaults are unchanged
from the in-process constructor.  ``--stats-interval N`` logs a
one-line served/active/shed snapshot to stderr every N seconds —
enough to watch a replica's load from its service log.

``--async`` swaps the execution substrate for the event-loop server
(:class:`~repro.net.aserver.AsyncGeneratorServer`): the identical wire
protocol and flags, but sessions are coroutine pairs on one loop
thread instead of thread pairs — the deployment shape for thousands of
concurrent streams of cooperative bodies.

Fleet membership: ``--advertise HOST:PORT`` sets the address this
replica *gossips* (a NAT'd or containerized server is not reachable at
its bind address), ``--peer HOST:PORT`` (repeatable) names fleet
members to announce to at startup — one push-pull ``WIRE_PEERS``
exchange each, so pools gossiping with those peers discover this
replica without config changes — and ``--weight W`` gossips a capacity
weight (vnode scaling on the client's weighted ring).
"""

from __future__ import annotations

import argparse
import importlib
import sys
import threading
from typing import Any, Callable

from .membership import parse_host_port
from .server import GeneratorServer


def _resolve(spec: str) -> tuple[str, Callable[..., Any]]:
    """``NAME=MODULE:ATTR`` → (name, factory), with dotted ATTR paths."""
    try:
        name, target = spec.split("=", 1)
        module_name, attr_path = target.split(":", 1)
    except ValueError:
        raise SystemExit(
            f"junicon-serve: bad --serve spec {spec!r} "
            "(expected NAME=MODULE:ATTR)"
        ) from None
    module = importlib.import_module(module_name)
    factory: Any = module
    for part in attr_path.split("."):
        factory = getattr(factory, part)
    if not callable(factory):
        raise SystemExit(
            f"junicon-serve: {target!r} resolved to a non-callable "
            f"{factory!r}"
        )
    return name, factory


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="junicon-serve",
        description="Host generator pipeline factories over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--serve",
        action="append",
        default=[],
        metavar="NAME=MODULE:ATTR",
        help="register a factory under NAME (repeatable)",
    )
    parser.add_argument(
        "--no-spawn",
        action="store_true",
        help="refuse pickled bodies; only registered factories run",
    )
    parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve on one event loop instead of two threads per "
        "session — same wire protocol, thousands of concurrent "
        "sessions; bodies must be cooperative (no long blocking "
        "activations)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.1,
        help="seconds between liveness beats on idle connections",
    )
    parser.add_argument(
        "--stall-intervals",
        type=float,
        default=None,
        help="silent heartbeat intervals before a client is declared "
        "stalled and its session killed (default: server default)",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help="concurrent session cap; over-capacity dials are shed with "
        "a busy reply instead of queued (default: unlimited)",
    )
    parser.add_argument(
        "--max-credit",
        type=int,
        default=None,
        help="per-session outstanding flow-control credit quota, in "
        "slices (default: client-controlled)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help="per-session coalescing slice cap, in elements "
        "(default: client-controlled)",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=0.5,
        help="retry hint, in seconds, sent with busy replies when "
        "shedding load",
    )
    parser.add_argument(
        "--stats-interval",
        type=float,
        default=None,
        metavar="N",
        help="log server stats (served/active/shed) to stderr every N "
        "seconds (default: off)",
    )
    parser.add_argument(
        "--advertise",
        default=None,
        metavar="HOST:PORT",
        help="address to gossip instead of the bind address — what a "
        "replica behind NAT or a container boundary is actually "
        "reachable as (default: the bind address)",
    )
    parser.add_argument(
        "--peer",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="a fleet member to gossip with (repeatable); the server "
        "announces itself to each peer at startup so gossiping pools "
        "discover it, and answers WIRE_PEERS with the merged fleet",
    )
    parser.add_argument(
        "--weight",
        type=float,
        default=1.0,
        help="capacity weight this replica gossips (vnode scaling on "
        "the client's weighted ring; default: 1.0)",
    )
    return parser


def _stats_logger(server: GeneratorServer, interval: float, stop: Any) -> None:
    """Periodic one-line stats on stderr until *stop* is set.

    stderr on purpose: stdout carries the machine-parseable
    ``listening on`` line, and an operator tailing the service log (or
    a chaos harness watching a replica) reads the stats stream without
    disturbing it.
    """
    while not stop.wait(interval):
        print(server.stats_line(), file=sys.stderr, flush=True)


def main(argv: list | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.stats_interval is not None and args.stats_interval <= 0:
        raise SystemExit("junicon-serve: --stats-interval must be > 0")
    if args.weight <= 0:
        raise SystemExit("junicon-serve: --weight must be > 0")
    limits: dict[str, Any] = {}
    if args.stall_intervals is not None:
        limits["stall_intervals"] = args.stall_intervals
    advertise = None
    if args.advertise is not None:
        try:
            advertise = parse_host_port(args.advertise)
        except ValueError:
            raise SystemExit(
                f"junicon-serve: bad --advertise {args.advertise!r} "
                "(expected HOST:PORT)"
            ) from None
    peers = []
    for spec in args.peer:
        try:
            peers.append(parse_host_port(spec))
        except ValueError:
            raise SystemExit(
                f"junicon-serve: bad --peer {spec!r} (expected HOST:PORT)"
            ) from None
    server_class: Any = GeneratorServer
    if args.use_async:
        from .aserver import AsyncGeneratorServer

        server_class = AsyncGeneratorServer
    server = server_class(
        host=args.host,
        port=args.port,
        heartbeat_interval=args.heartbeat_interval,
        allow_spawn=not args.no_spawn,
        max_sessions=args.max_sessions,
        max_credit=args.max_credit,
        max_batch=args.max_batch,
        retry_after=args.retry_after,
        advertise=advertise,
        weight=args.weight,
        **limits,
    )
    for spec in args.serve:
        server.register(*_resolve(spec))
    for peer in peers:
        server.add_peer(peer)

    # The accept loop lives on a scheduler thread; the main thread just
    # waits for a termination signal, then drains gracefully (the
    # handler only sets the event — never blocks in the handler).
    done = server.install_signal_handlers()

    server.start()
    host, port = server.address
    print(f"listening on {host}:{port}", flush=True)
    if peers:
        # The joining-replica handshake: push-pull our fleet view with
        # each seed so gossiping pools polling them discover us.  Best
        # effort — a seed that is down learns about us when *it* polls.
        reached = server.announce(peers)
        print(f"gossip: announced to {reached}/{len(peers)} peers", file=sys.stderr, flush=True)
    if args.stats_interval is not None:
        threading.Thread(
            target=_stats_logger,
            args=(server, args.stats_interval, done),
            name="stats-logger",
            daemon=True,
        ).start()
    done.wait()
    server.shutdown(wait=True)
    print("shutdown complete", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
