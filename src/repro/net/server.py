"""The generator server — named pipeline factories behind a TCP listener.

One server hosts many concurrent clients; each accepted connection
becomes a *session* that runs one pipeline body to exhaustion and
streams its results back as wire envelopes.  A session is two scheduler
threads:

* the **sender** reads the request, builds the body (a pickled
  ``(factory, env)`` pair for ``spawn`` requests, a registered factory
  for ``call`` requests), and drives it — coalescing results into
  batched ``WIRE_DATA`` slices, never sending more items than the
  client has granted credit for (the flow-control mirror of a bounded
  channel: a slow client throttles the producer instead of ballooning
  the socket buffer);
* the **reader** consumes the control channel — credit grants and
  cancellation — and doubles as the *beater*: its receive timeout is
  the heartbeat interval, so exactly when the connection has been idle
  that long it sends a ``WIRE_BEAT`` (and flushes any batch older than
  the session's linger bound).

Stream termination follows the channel contract end to end: data
slices in production order, a crash flushed *after* the data produced
before it (``WIRE_ERROR`` carrying the cause-preserving payload of
:func:`repro.coexpr.wire.encode_error`), then ``WIRE_CLOSE``.

Sessions register with the :class:`~repro.coexpr.scheduler.PipeScheduler`
session accounting, so ``leaked()`` and ``shutdown()`` cover open
connections exactly as they cover threads and child processes.
:meth:`GeneratorServer.shutdown` is the graceful path — stop accepting,
close each session's body, flush, ``WIRE_CLOSE``, then kill stragglers —
and :meth:`GeneratorServer.install_signal_handlers` wires it to
SIGTERM/SIGINT for the ``junicon-serve`` entry point.
"""

from __future__ import annotations

import itertools
import pickle
import select
import socket
import threading
import time
import warnings
from typing import Any, Callable

from ..coexpr.coexpression import CoExpression
from ..coexpr.deadline import Deadline
from ..coexpr.scheduler import PipeScheduler, default_scheduler
from ..coexpr.wire import (
    WIRE_BEAT,
    WIRE_BUSY,
    WIRE_CALL,
    WIRE_CANCEL,
    WIRE_CLOSE,
    WIRE_CREDIT,
    WIRE_DATA,
    WIRE_DEADLINE,
    WIRE_ERROR,
    WIRE_PEERS,
    WIRE_PING,
    WIRE_PONG,
    WIRE_SPAWN,
    FrameError,
    SocketFramer,
    encode_error,
)
from ..errors import PipeDeadlineExceeded, PipeError, SchedulerShutdownError
from ..monitor.events import Event, EventKind, emit_lifecycle, lifecycle_enabled
from ..runtime.failure import FAIL

#: How long a session waits for the client's request envelope.
_REQUEST_TIMEOUT = 10.0
#: Accept-loop poll slice — bounds shutdown latency, not throughput.
_ACCEPT_SLICE = 0.2
#: Credit-wait slice for a sender with items but no credit.
_CREDIT_SLICE = 0.1
#: A client that leaves a frame half-sent for this many heartbeat
#: intervals is dead: the session is killed (the server-side mirror of
#: the client watchdog's ``_TIMEOUT_INTERVALS``).
_STALL_INTERVALS = 10
#: How long a shed connection's lingering half-close drains the
#: client's in-flight handshake before the socket is abandoned.
_SHED_LINGER = 0.5


def _is_loopback(host: str) -> bool:
    """True when *host* only ever admits local clients."""
    return host in ("localhost", "::1") or host.startswith("127.")


class Session:
    """One client connection: a body, its sender, and its reader."""

    _ids = itertools.count(1)

    __slots__ = (
        "server",
        "framer",
        "peer",
        "name",
        "request_name",
        "batch",
        "max_linger",
        "heartbeat_interval",
        "coexpr",
        "handle",
        "reader_handle",
        "_cond",
        "_order",
        "_credit",
        "_greedy",
        "_deadline",
        "_buffer",
        "_buf_oldest",
        "_killed",
        "_cancelled",
        "_finished",
        "_torn",
    )

    def __init__(self, server: "GeneratorServer", sock: Any, peer: Any) -> None:
        self.server = server
        # A server that does not execute client code must not unpickle
        # arbitrary client objects either: without allow_spawn, frames
        # decode through the restricted unpickler (primitives only).
        self.framer = SocketFramer(sock, trusted=server.allow_spawn)
        self.peer = peer
        self.name = f"net-session-{next(self._ids)}"
        self.request_name = ""
        self.batch = 1
        self.max_linger: float | None = None
        self.heartbeat_interval = server.heartbeat_interval
        self.coexpr: CoExpression | None = None
        self.handle: Any = None         # sender (main) scheduler handle
        self.reader_handle: Any = None  # control-channel scheduler handle
        self._cond = threading.Condition()
        #: Serializes the pop-buffer/send-WIRE_DATA pair across the two
        #: flushing threads (sender and the reader's linger tick) —
        #: separate from ``_cond`` so credit grants still land while a
        #: sendall is throttled by the socket.
        self._order = threading.Lock()
        #: Items the client has granted (None = unlimited, its channel is
        #: unbounded).  Starts at zero: nothing is sent before the first
        #: grant, which the client ships right behind its request.
        self._credit: int | None = 0
        #: True once a quota clamped an *unlimited* grant: the sender
        #: self-replenishes credit (the client will never send more).
        self._greedy = False
        #: Budget received in a ``WIRE_DEADLINE`` envelope, re-anchored
        #: against this host's monotonic clock.
        self._deadline: Deadline | None = None
        self._buffer: list = []
        self._buf_oldest = 0.0
        self._killed = False
        self._cancelled = False
        self._finished = False
        self._torn = False

    # -- worker/session protocol (scheduler accounting) ------------------------

    def is_alive(self) -> bool:
        for handle in (self.handle, self.reader_handle):
            if handle is not None and handle.is_alive():
                return True
        return False

    def join(self, timeout: float | None = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in (self.handle, self.reader_handle):
            if handle is None:
                continue
            budget = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            handle.join(budget)
        return not self.is_alive()

    def kill(self) -> None:
        """Abrupt teardown: close the socket now (idempotent).

        The chaos path — the client sees a torn connection, its
        watchdog raises :class:`~repro.errors.PipeConnectionLost`, and
        supervision (if any) reconnects.  Also what scheduler shutdown
        and the graceful path's straggler sweep use.
        """
        with self._cond:
            self._killed = True
            self._cond.notify_all()
        if self.coexpr is not None:
            self.coexpr.close()
        self.framer.close()

    def finish(self) -> None:
        """Graceful teardown: stop producing, flush, close the stream.

        Closing the co-expression makes its next activation fail, so the
        sender falls out of its loop naturally — delivering the batch it
        had coalesced and the ``WIRE_CLOSE`` terminator before the
        socket goes down.
        """
        with self._cond:
            self._cancelled = True
            self._cond.notify_all()
        if self.coexpr is not None:
            self.coexpr.close()

    def _stopping(self) -> bool:
        return self._killed or self._cancelled

    # -- credit ----------------------------------------------------------------

    def grant(self, amount: int | None) -> None:
        """Apply one ``WIRE_CREDIT`` envelope (None = unlimited).

        A server ``max_credit`` quota caps outstanding credit here, at
        the grant path — the one place every credit enters.  Bounded
        grants accumulate only up to the quota.  An *unlimited* grant
        (the client's channel is unbounded, so it will never send
        another credit envelope) becomes quota-sized **greedy** credit
        instead: :meth:`_flush` self-replenishes it, so the stream
        proceeds in quota-sized slices rather than wedging on a
        replenishment that cannot come.
        """
        quota = self.server.max_credit
        with self._cond:
            if amount is None:
                if quota is None:
                    self._credit = None
                else:
                    self._greedy = True
                    self._credit = quota
            elif self._credit is not None:
                self._credit += amount
                if quota is not None and self._credit > quota:
                    self._credit = quota
            self._cond.notify_all()

    # -- sender ----------------------------------------------------------------

    def _flush(self, block: bool) -> None:
        """Send buffered items as credit allows.

        ``block=True`` (the sender) waits for credit until the buffer is
        empty; ``block=False`` (the reader's linger tick) sends whatever
        the current credit covers and returns.

        Both threads flush, so the pop-slice/send pair runs under the
        ``_order`` lock: preempted between the two, one flusher could
        otherwise ship an earlier slice *after* the other's later one —
        or let the sender emit ``WIRE_CLOSE``/``WIRE_ERROR`` while the
        reader still held an unsent slice.  ``_order`` is not ``_cond``,
        so a sendall throttled by the socket never stops the reader from
        applying credit grants; and the credit wait happens *outside*
        ``_order``, so a credit-starved sender never locks the reader's
        linger tick out of the control channel the credit must arrive on.
        """
        while True:
            with self._order:
                with self._cond:
                    if not self._buffer or self._killed:
                        return
                    credit = self._credit
                    if credit == 0:
                        slice_ = None
                    else:
                        take = (
                            len(self._buffer)
                            if credit is None
                            else min(credit, len(self._buffer))
                        )
                        slice_, self._buffer = (
                            self._buffer[:take],
                            self._buffer[take:],
                        )
                        if credit is not None:
                            self._credit = credit - take
                if slice_ is not None:
                    self.framer.send((WIRE_DATA, slice_))
                    continue
            # Out of credit with items still buffered.
            if not block:
                return
            with self._cond:
                if self._buffer and self._credit == 0 and not self._killed:
                    if self._greedy:
                        self._credit = self.server.max_credit
                    else:
                        self._cond.wait(_CREDIT_SLICE)

    def _append(self, value: Any) -> None:
        with self._cond:
            if not self._buffer:
                self._buf_oldest = time.monotonic()
            self._buffer.append(value)
            full = len(self._buffer) >= self.batch
        if full:
            self._flush(block=True)

    def run(self) -> None:
        """The sender thread: request → body → stream → terminator.

        A connection whose first envelope is a control kind
        (``WIRE_PING`` / ``WIRE_PEERS``) never builds a body: it
        becomes a control session — the membership tier's probe and
        gossip channel — served inline on this thread until the peer
        hangs up.
        """
        try:
            try:
                envelope = self._read_first()
            except (OSError, EOFError, FrameError, TimeoutError):
                return  # client vanished before asking for anything
            except Exception as error:  # noqa: BLE001 - reported to the client
                self._send_failure(error)
                return
            if envelope[0] in (WIRE_PING, WIRE_PEERS):
                self.request_name = "control"
                self._run_control(envelope)
                return
            try:
                coexpr = self._build_body(envelope)
            except Exception as error:  # noqa: BLE001 - reported to the client
                self._send_failure(error)
                return
            self.coexpr = coexpr
            self.server._note_session(self)
            self.reader_handle = self.server.scheduler.submit(
                self._run_reader, name=f"{self.name}-reader"
            )
            self._stream(coexpr)
        finally:
            self._finish()

    def _read_first(self) -> tuple:
        # The request read is the only timed receive on this socket: the
        # reader thread polls with select over a *blocking* socket, so
        # the sender's sendall never inherits a receive timeout (a send
        # throttled past one heartbeat interval is flow control, not a
        # dead peer).
        self.framer.sock.settimeout(_REQUEST_TIMEOUT)
        try:
            return self.framer.recv()
        finally:
            try:
                self.framer.sock.settimeout(None)
            except OSError:
                pass

    def _run_control(self, envelope: tuple | None) -> None:
        """Serve ping/peers envelopes until the peer closes or goes
        silent.

        A prober holds this connection open across rounds, so the loop
        answers any number of control frames.  The receive timeout is
        one heartbeat interval — short enough that a graceful shutdown
        (``finish`` sets ``_cancelled``) is honored promptly — and a
        peer silent for the request timeout is dropped, so an abandoned
        prober cannot pin a session slot forever.
        """
        sock = self.framer.sock
        idle_deadline = time.monotonic() + _REQUEST_TIMEOUT
        try:
            sock.settimeout(self.heartbeat_interval)
            while not self._stopping():
                if envelope is not None:
                    kind = envelope[0]
                    if kind == WIRE_PING:
                        nonce = envelope[1] if len(envelope) > 1 else None
                        self.framer.send((WIRE_PONG, nonce))
                    elif kind == WIRE_PEERS:
                        told = envelope[1] if len(envelope) > 1 else None
                        if told:
                            self.server._merge_peers(told)
                        self.framer.send((WIRE_PEERS, self.server.known_peers()))
                    else:
                        return  # protocol violation: drop the connection
                    idle_deadline = time.monotonic() + _REQUEST_TIMEOUT
                elif time.monotonic() >= idle_deadline:
                    return  # silent peer: reclaim the slot
                try:
                    envelope = self.framer.recv()
                except (socket.timeout, TimeoutError):
                    envelope = None
        except (OSError, EOFError, FrameError):
            pass  # peer gone: the control session just ends

    def _build_body(self, first: tuple) -> CoExpression:
        kind, *payload = first
        if kind not in (WIRE_SPAWN, WIRE_CALL) or not payload:
            raise PipeError(f"expected a spawn/call request, got {kind!r}")
        request = payload[0]
        self.request_name = request.get("name") or kind
        self.batch = max(int(request.get("batch", 1)), 1)
        if self.server.max_batch is not None:
            # The coalescing buffer holds up to one batch before the
            # sender blocks on credit, so this caps per-session buffered
            # items no matter what slice size the client asks for.
            self.batch = min(self.batch, self.server.max_batch)
        self.max_linger = request.get("max_linger")
        interval = request.get("heartbeat_interval")
        if interval:
            self.heartbeat_interval = float(interval)
        if kind == WIRE_SPAWN:
            if not self.server.allow_spawn:
                raise PipeError(
                    f"server {self.server.name!r} does not accept spawn "
                    "requests (allow_spawn=False); use a registered factory"
                )
            factory, env = pickle.loads(request["body"])
            return CoExpression(factory, lambda: env, name=self.request_name)
        factory = self.server._factory(request["name"])
        args = tuple(request.get("args") or ())
        return CoExpression(factory, lambda: args, name=self.request_name)

    def _stream(self, coexpr: CoExpression) -> None:
        try:
            while not self._stopping():
                deadline = self._deadline
                if deadline is not None and deadline.expired():
                    # A reported crash, not a kill: _send_failure flushes
                    # buffered data first, so the client still receives
                    # everything produced within budget.
                    if lifecycle_enabled():
                        emit_lifecycle(
                            Event(
                                EventKind.DEADLINE_EXPIRED,
                                f"pipe:{self.request_name}",
                                0,
                                {"where": "session", "remaining": 0.0},
                            )
                        )
                    raise PipeDeadlineExceeded(
                        f"session {self.request_name!r}: deadline exceeded "
                        "(session)",
                        where="session",
                    )
                value = coexpr.activate()
                if value is FAIL:
                    break
                self._append(value)
            self._flush(block=True)
            if not self._killed:
                self.framer.send((WIRE_CLOSE,))
        except (OSError, EOFError, FrameError):
            pass  # peer gone mid-stream: nothing left to tell it
        except BaseException as error:  # noqa: BLE001 - forwarded to the client
            self._send_failure(error)

    def _send_failure(self, error: BaseException) -> None:
        """Data first, then the error, then close — the wire invariant."""
        try:
            self._flush(block=True)
            self.framer.send((WIRE_ERROR, encode_error(error)))
            self.framer.send((WIRE_CLOSE,))
        except (OSError, EOFError, FrameError):
            pass  # peer gone: the error dies with the session

    # -- reader ----------------------------------------------------------------

    def _run_reader(self) -> None:
        """Control channel + beater: credits, cancellation, liveness.

        Once the sender has finished this thread switches to *drain*
        mode — a lingering close that keeps consuming until the client
        closes its end.  Closing our socket any earlier would RST the
        connection while the client's late credit grants are still in
        flight, destroying the stream tail (data, the error, the close
        terminator) in the client's kernel buffer.

        The socket stays blocking (a receive timeout would infect the
        sender's sendall), so receives go through the framer's
        one-step :meth:`~repro.coexpr.wire.SocketFramer.try_recv` —
        never blocking past the bytes select reported.  A frame left
        partial for ``_STALL_INTERVALS`` heartbeat intervals kills the
        session: a wedged client must not pin two scheduler threads and
        a socket forever.
        """
        sock = self.framer.sock
        stall_deadline: float | None = None
        while not self._killed:
            if self.framer.buffered():
                ready = True  # a frame the request read already pulled in
            else:
                # Liveness bound on a half-received frame.  Asked of the
                # framer, not select: partial bytes an earlier receive
                # pulled into user space never poll readable again.
                if self.framer.partial():
                    if stall_deadline is None:
                        stall_deadline = (
                            time.monotonic()
                            + self.server.stall_intervals
                            * self.heartbeat_interval
                        )
                    elif time.monotonic() >= stall_deadline:
                        self.kill()  # stalled mid-frame: a dead client
                        break
                else:
                    stall_deadline = None
                try:
                    ready, _, _ = select.select(
                        [sock], [], [], self.heartbeat_interval
                    )
                except (OSError, ValueError):
                    break  # socket closed under us
            if not ready:
                if self._finished:
                    continue  # draining a half-closed socket: no beats
                # Idle exactly one heartbeat interval: prove liveness,
                # and deliver any batch that has out-lingered its bound.
                try:
                    self.framer.send((WIRE_BEAT, time.monotonic()))
                except (OSError, EOFError):
                    self.kill()  # wedged client: wake a credit-blocked sender
                    break
                if (
                    self.max_linger is not None
                    and self._buffer
                    and time.monotonic() - self._buf_oldest >= self.max_linger
                ):
                    try:
                        self._flush(block=False)
                    except (OSError, EOFError, FrameError):
                        self.kill()
                        break
                continue
            try:
                envelope = self.framer.try_recv()
            except EOFError:
                if not self._finished:
                    self.kill()  # client left mid-stream: stop the body
                break
            except (OSError, FrameError):
                # Torn connection: stop the body, wake the sender.
                self.kill()
                break
            if envelope is None:
                continue  # frame still partial; the pre-select check
                # above starts (and enforces) its completion deadline
            stall_deadline = None
            kind = envelope[0]
            if kind == WIRE_CREDIT:
                self.grant(envelope[1] if len(envelope) > 1 else None)
            elif kind == WIRE_DEADLINE:
                # Budget, never a timestamp: re-anchor against our own
                # monotonic clock (see repro.coexpr.deadline).
                budget = envelope[1] if len(envelope) > 1 else 0.0
                try:
                    self._deadline = Deadline(float(budget))
                except (TypeError, ValueError):
                    pass  # malformed budget: ignore, don't kill the stream
            elif kind == WIRE_CANCEL:
                self.kill()
                break
            # Anything else (a stray beat) is ignored.
        if self._finished:
            self._teardown()

    # -- teardown --------------------------------------------------------------

    def _finish(self) -> None:
        with self._cond:
            if self._finished:
                return
            self._finished = True
            self._cond.notify_all()
        if self.coexpr is not None:
            self.coexpr.close()
        reader = self.reader_handle
        if reader is not None and not self._killed:
            # Lingering close: push our FIN but leave the reader
            # consuming until the *client* closes; it runs the final
            # teardown when the drain reaches EOF.
            try:
                self.framer.sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
            if reader.is_alive():
                return
        self._teardown()

    def _teardown(self) -> None:
        """Final socket close + deregistration (idempotent, any thread)."""
        with self._cond:
            if self._torn:
                return
            self._torn = True
        self.framer.close()
        self.server._forget(self)


class GeneratorServer:
    """A TCP listener hosting named pipeline factories.

    ``register(name, factory)`` publishes a factory clients can run with
    :class:`~repro.net.client.RemotePipe`; with ``allow_spawn=True``
    (default) the server also runs bodies clients ship by pickle — the
    transparent ``backend="remote"`` tier.  ``port=0`` binds an
    ephemeral port (read :attr:`address` after :meth:`start`).

    **Trust model: the wire is for trusted networks only.**  With
    ``allow_spawn=True`` every connecting client can execute arbitrary
    code by design — that is what the spawn tier *is* — so the server
    must only ever be reachable by clients trusted with the host.  With
    ``allow_spawn=False`` the protocol surface shrinks to registered
    factories and frames decode through a restricted unpickler that
    refuses global lookups (client envelopes — requests, credit,
    cancel — are then limited to primitive payloads, so ``WIRE_CALL``
    args must be primitive too); that removes the unpickling RCE, but
    the port is still unauthenticated.  Binding a non-loopback host
    emits a :class:`RuntimeWarning` for exactly this reason.

    Every session's threads come from *scheduler* (default: the process
    default), and every session registers with its session accounting —
    a shut-down scheduler closes the server's connections along with
    everything else it owns.

    **Admission control.**  ``max_sessions`` bounds concurrently open
    sessions: an over-capacity dial is answered with a single
    ``WIRE_BUSY(retry_after)`` envelope and closed — load is *shed*,
    never silently queued, so the client fails fast (and its circuit
    breaker learns the server is saturated) instead of hanging.
    ``max_credit`` caps each session's outstanding flow-control credit
    and ``max_batch`` caps its coalescing slice, so one greedy client
    cannot make the server buffer unboundedly on its behalf.
    ``stall_intervals`` tunes how many silent heartbeat intervals a
    mid-frame client gets before its session is killed (the hostile/
    wedged-client bound).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        scheduler: PipeScheduler | None = None,
        heartbeat_interval: float = 0.1,
        allow_spawn: bool = True,
        name: str = "genserver",
        max_sessions: int | None = None,
        max_credit: int | None = None,
        max_batch: int | None = None,
        retry_after: float = 0.5,
        stall_intervals: float = _STALL_INTERVALS,
        advertise: tuple | None = None,
        weight: float = 1.0,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be >= 1 or None")
        if max_credit is not None and max_credit < 1:
            raise ValueError("max_credit must be >= 1 or None")
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be >= 1 or None")
        if retry_after < 0:
            raise ValueError("retry_after must be >= 0")
        if stall_intervals <= 0:
            raise ValueError("stall_intervals must be > 0")
        self.host = host
        self.port = port
        self.scheduler = scheduler or default_scheduler()
        self.heartbeat_interval = heartbeat_interval
        self.allow_spawn = allow_spawn
        self.name = name
        #: Admission bound (None = unlimited): dials past this many open
        #: sessions are shed with ``WIRE_BUSY``.
        self.max_sessions = max_sessions
        #: Per-session cap on outstanding credit (None = honor grants).
        self.max_credit = max_credit
        #: Per-session cap on the coalescing slice (None = honor request).
        self.max_batch = max_batch
        #: Seconds a shed client is told to wait before redialing.
        self.retry_after = retry_after
        #: Heartbeat intervals of mid-frame silence before a session is
        #: killed as stalled.
        self.stall_intervals = stall_intervals
        if weight <= 0:
            raise ValueError("weight must be > 0")
        #: The ``(host, port)`` this server *gossips* — for a replica
        #: behind NAT or a container boundary, the reachable address
        #: rather than the bind address (``junicon-serve --advertise``).
        #: None = the bound address.
        self.advertise = (
            None if advertise is None else (str(advertise[0]), int(advertise[1]))
        )
        #: This replica's gossiped capacity weight (vnode scaling on
        #: the client's weighted ring).
        self.weight = float(weight)
        self._peers: dict[tuple, float] = {}  # known fleet: address -> weight
        self._factories: dict[str, Callable[..., Any]] = {}
        self._listener: socket.socket | None = None
        self._accept_handle: Any = None
        self._lock = threading.Lock()
        self._sessions: list[Session] = []
        self._stopped = False
        self._started = False
        self._served = 0
        self._shed_count = 0

    # -- registry --------------------------------------------------------------

    def register(self, name: str, factory: Callable[..., Any]) -> "GeneratorServer":
        """Publish *factory* under *name* for ``call`` requests.

        ``factory(*args)`` must return what a co-expression body may be:
        an iterator, an iterable, or an
        :class:`~repro.runtime.iterator.IconIterator`.
        """
        if not callable(factory):
            raise TypeError(f"factory for {name!r} is not callable: {factory!r}")
        with self._lock:
            self._factories[name] = factory
        return self

    def _factory(self, name: Any) -> Callable[..., Any]:
        with self._lock:
            try:
                return self._factories[name]
            except KeyError:
                raise PipeError(
                    f"server {self.name!r} has no factory {name!r} "
                    f"(registered: {sorted(self._factories) or 'none'})"
                ) from None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "GeneratorServer":
        """Bind, listen, and run the accept loop on a scheduler thread."""
        with self._lock:
            if self._stopped:
                raise PipeError("start on a shut-down GeneratorServer")
            if self._started:
                return self
            self._started = True
        if not _is_loopback(self.host):
            warnings.warn(
                f"GeneratorServer {self.name!r} is binding non-loopback "
                f"host {self.host!r}: the wire protocol is unauthenticated "
                + (
                    "and allow_spawn=True lets any client execute arbitrary "
                    "code — expose it to trusted networks only"
                    if self.allow_spawn
                    else "— expose it to trusted networks only"
                ),
                RuntimeWarning,
                stacklevel=2,
            )
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        listener.settimeout(_ACCEPT_SLICE)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        # The server itself registers as a session: a shut-down
        # scheduler calls kill(), which closes the listener and stops
        # the accept loop along with every open connection.
        self.scheduler.track_session(self)
        try:
            self._accept_handle = self.scheduler.submit(
                self._accept_loop, name=f"{self.name}-accept"
            )
        except BaseException:
            self.scheduler.untrack_session(self)
            listener.close()
            raise
        return self

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` — resolves an ephemeral ``port=0``."""
        return (self.host, self.port)

    @property
    def advertised_address(self) -> tuple:
        """What this server tells the fleet it is reachable as:
        ``advertise`` when set (NAT/containers), else the bound
        address."""
        return self.advertise if self.advertise is not None else self.address

    # -- gossip fleet ----------------------------------------------------------

    def known_peers(self) -> list:
        """This server's fleet view as primitive wire triples —
        ``[[host, port, weight], ...]`` — itself (advertised address)
        first.  The ``WIRE_PEERS`` reply payload."""
        host, port = self.advertised_address
        with self._lock:
            peers = [[host, port, self.weight]] + [
                [h, p, w] for (h, p), w in self._peers.items()
                if (h, p) != (host, port)
            ]
        return peers

    def add_peer(self, address: Any, weight: float | None = None) -> None:
        """Record a fleet member this server should gossip about.
        *address* takes any member spelling (``"host:port"``, a pair,
        a weighted triple); an explicit ``weight=`` wins."""
        from .membership import as_member

        (host, port), parsed = as_member(address)
        weight = parsed if weight is None else float(weight)
        if (host, port) == self.advertised_address:
            return
        with self._lock:
            self._peers[(host, port)] = weight

    def _merge_peers(self, entries: Any) -> None:
        """Fold a ``WIRE_PEERS`` payload into the fleet view (the pull
        half of a push-pull exchange).  Malformed entries are dropped;
        the payload is an unauthenticated claim, so this is additive
        advisory state — never an eviction."""
        from .membership import parse_wire_members

        me = self.advertised_address
        with self._lock:
            for address, weight in parse_wire_members(entries):
                if address != me:
                    self._peers[address] = weight

    def announce(self, targets: Any = None) -> int:
        """Push-pull a ``WIRE_PEERS`` exchange with each target (default:
        every known peer), merging what they reply; returns how many
        exchanges completed.  Best-effort by design — a replica joining
        a fleet announces itself to a seed so gossiping pools discover
        it, and an unreachable seed is simply skipped.
        """
        from .membership import as_member, exchange_peers

        if targets is None:
            with self._lock:
                addresses = list(self._peers)
        else:
            addresses = [as_member(value)[0] for value in targets]
        me = self.advertised_address
        count = 0
        known = [
            ((entry[0], entry[1]), entry[2]) for entry in self.known_peers()
        ]
        for address in addresses:
            if address == me:
                continue
            try:
                fleet = exchange_peers(address, known)
            except OSError:
                continue
            count += 1
            with self._lock:
                for peer, weight in fleet:
                    if peer != me:
                        self._peers[peer] = weight
        return count

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopped:
            try:
                sock, peer = listener.accept()
            except (socket.timeout, TimeoutError):
                continue
            except OSError:
                return  # listener closed under us: shutdown
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self.max_sessions is not None:
                # Only this thread admits sessions, so a check under the
                # lock cannot be raced upward — a concurrent _forget can
                # only free a slot, which at worst sheds one dial early.
                with self._lock:
                    over = len(self._sessions) >= self.max_sessions
                if over:
                    self._shed(sock, peer)
                    continue
            session = Session(self, sock, peer)
            try:
                self.scheduler.track_session(session)
            except SchedulerShutdownError:
                sock.close()
                return
            with self._lock:
                if self._stopped:
                    self.scheduler.untrack_session(session)
                    sock.close()
                    return
                self._sessions.append(session)
                self._served += 1
            try:
                session.handle = self.scheduler.submit(
                    session.run, name=session.name
                )
            except SchedulerShutdownError:
                session.kill()
                self._forget(session)
                return

    def _shed(self, sock: Any, peer: Any) -> None:
        """Refuse one over-capacity dial: ``WIRE_BUSY(retry_after)``,
        then close — the client fails fast instead of hanging.

        The close is a *lingering* half-close: an abrupt ``close()``
        while the client's handshake envelopes are still in flight would
        RST the connection and destroy the busy reply in the client's
        kernel buffer — the client would see a torn dial with no retry
        hint.  Sending FIN first and draining the handshake bytes (off
        the accept thread, so a shed storm cannot serialize admission)
        lets the envelope land."""
        with self._lock:
            self._shed_count += 1
            active = len(self._sessions)
        # Emit before the busy reply goes out: the moment the reply is
        # on the wire the client can raise PipeServerBusy and a tracer
        # watching for the shed may already have unsubscribed.
        if lifecycle_enabled():
            emit_lifecycle(
                Event(
                    EventKind.SHED,
                    f"server:{self.name}",
                    0,
                    {
                        "peer": peer,
                        "active": active,
                        "max_sessions": self.max_sessions,
                        "retry_after": self.retry_after,
                    },
                )
            )
        try:
            SocketFramer(sock).send((WIRE_BUSY, self.retry_after))
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            try:
                sock.close()
            except OSError:
                pass
            sock = None  # the impatient client already hung up
        if sock is not None:
            try:
                self.scheduler.submit(
                    lambda: self._drain_shed(sock), name=f"{self.name}-shed"
                )
            except SchedulerShutdownError:
                try:
                    sock.close()
                except OSError:
                    pass

    @staticmethod
    def _drain_shed(sock: Any) -> None:
        """Consume a shed client's in-flight handshake until it closes
        its end (bounded: a writer that never stops is abandoned)."""
        limit = time.monotonic() + _SHED_LINGER
        try:
            sock.settimeout(0.05)
            while time.monotonic() < limit:
                try:
                    if not sock.recv(4096):
                        break  # client saw the busy reply and hung up
                except (socket.timeout, TimeoutError):
                    continue
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _note_session(self, session: Session) -> None:
        if lifecycle_enabled():
            emit_lifecycle(
                Event(
                    EventKind.NET_SESSION,
                    f"pipe:{session.request_name}",
                    0,
                    {
                        "peer": session.peer,
                        "name": session.request_name,
                        "server": self.name,
                    },
                )
            )

    def _forget(self, session: Session) -> None:
        with self._lock:
            try:
                self._sessions.remove(session)
            except ValueError:
                pass
        self.scheduler.untrack_session(session)

    def active_sessions(self) -> list:
        """Sessions currently open (snapshot)."""
        with self._lock:
            return list(self._sessions)

    def kill_sessions(self) -> int:
        """Hard-kill every live session (the chaos hook); returns the
        count.  Clients see :class:`~repro.errors.PipeConnectionLost`."""
        sessions = self.active_sessions()
        for session in sessions:
            session.kill()
        return len(sessions)

    @property
    def stats(self) -> dict:
        """``{"served": total sessions accepted, "active": open now,
        "shed": dials refused at capacity}``."""
        with self._lock:
            return {
                "served": self._served,
                "active": len(self._sessions),
                "shed": self._shed_count,
            }

    def stats_line(self) -> str:
        """One operator-readable line of :attr:`stats` — the shape
        ``junicon-serve --stats-interval`` logs to stderr."""
        snapshot = self.stats
        host, port = self.address
        return (
            f"stats {host}:{port} served={snapshot['served']} "
            f"active={snapshot['active']} shed={snapshot['shed']}"
        )

    def shutdown(self, wait: bool = True, timeout: float = 5.0) -> None:
        """Stop accepting and close every session gracefully.

        Each open session stops producing, flushes its coalesced batch,
        and sends ``WIRE_CLOSE`` — in-flight results are delivered, not
        dropped.  Sessions that do not drain within *timeout* are
        killed.  Idempotent.
        """
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        sessions = self.active_sessions()
        for session in sessions:
            session.finish()
        if wait:
            deadline = time.monotonic() + timeout
            for session in sessions:
                session.join(max(0.0, deadline - time.monotonic()))
            for session in sessions:
                if session.is_alive():
                    session.kill()
                    session.join(1.0)
        if self._accept_handle is not None:
            self._accept_handle.join(1.0)
        self.scheduler.untrack_session(self)

    # -- session protocol (scheduler accounting) -------------------------------

    def kill(self) -> None:
        """Scheduler-shutdown hook: stop accepting, close every session."""
        self.shutdown(wait=False)

    def is_alive(self) -> bool:
        handle = self._accept_handle
        return handle is not None and handle.is_alive()

    def join(self, timeout: float | None = None) -> bool:
        handle = self._accept_handle
        if handle is None:
            return True
        handle.join(timeout)
        return not handle.is_alive()

    def install_signal_handlers(self) -> threading.Event:
        """Arrange a graceful :meth:`shutdown` on SIGTERM/SIGINT.

        The handler itself only sets the returned event — a blocking
        shutdown (lock acquisition, multi-second joins) inside a signal
        handler can deadlock on state the interrupted frame holds, or
        re-enter when a second signal lands.  The *caller* waits on the
        event and runs the shutdown on an ordinary thread::

            stop = server.install_signal_handlers()
            stop.wait()
            server.shutdown(wait=True)

        Call from the main thread (a CPython requirement for
        ``signal.signal``); ``junicon-serve`` is exactly this pattern.
        """
        import signal

        stop = threading.Event()

        def _handler(signum: int, frame: Any) -> None:
            stop.set()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)
        return stop

    def __enter__(self) -> "GeneratorServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = (
            "stopped"
            if self._stopped
            else ("listening" if self._started else "unstarted")
        )
        return (
            f"GeneratorServer({self.name}, {self.host}:{self.port}, {state}, "
            f"active={len(self._sessions)})"
        )
