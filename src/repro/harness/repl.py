"""Interactive Junicon — the paper's "interactive extension" mode.

A line-oriented REPL over the :class:`~repro.harness.meta.MetaInterpreter`.
Incomplete input (unbalanced delimiters / parse errors that look like
continuations) accumulates across lines, mirroring the statement
recognition the paper's metaparser performs "based on grouping delimiters
such as braces and parentheses".

Directives:

``:python <code>``   evaluate host Python in the shared namespace
``:load <file>``     interpret a Junicon or mixed-language file
``:translate <file>`` print the translated Python for a file
``:quit``            leave
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List

from ..runtime.failure import FAIL
from ..runtime.functions import icon_image
from ..lang.interp import is_complete
from ..lang.embed import transform_file
from .meta import MetaInterpreter

BANNER = (
    "Junicon-in-Python — concurrent generators REPL "
    "(reproduction of Mills & Jeffery, HIPS'16)\n"
    "Type Junicon expressions; :quit to exit, :help for directives.\n"
)
PROMPT = "junicon> "
CONTINUE = "......   "


def render(value: Any) -> str:
    """Render an evaluation outcome the way Icon programmers expect."""
    if value is FAIL:
        return "«failure»"
    if value is None:
        return "&null"
    try:
        return icon_image(value)
    except Exception:
        return repr(value)


class Repl:
    def __init__(self, default_lang: str = "junicon") -> None:
        self.meta = MetaInterpreter(default_lang=default_lang)

    def handle_directive(self, line: str, out) -> bool:
        """Process a ``:directive``; True when the REPL should exit."""
        parts = line[1:].split(None, 1)
        directive = parts[0] if parts else ""
        argument = parts[1] if len(parts) > 1 else ""
        if directive in ("q", "quit", "exit"):
            return True
        if directive == "help":
            print(__doc__, file=out)
        elif directive == "python":
            try:
                print(render(self.meta.engine.execute(argument)), file=out)
            except Exception as error:  # noqa: BLE001 - REPL surface
                print(f"error: {error}", file=out)
        elif directive == "load":
            try:
                self.meta.execute_file(argument.strip())
                print(f"loaded {argument.strip()}", file=out)
            except Exception as error:  # noqa: BLE001
                print(f"error: {error}", file=out)
        elif directive == "translate":
            try:
                print(transform_file(argument.strip()), file=out)
            except Exception as error:  # noqa: BLE001
                print(f"error: {error}", file=out)
        else:
            print(f"unknown directive :{directive}", file=out)
        return False

    def run(self, stdin=None, stdout=None) -> int:
        stdin = stdin or sys.stdin
        stdout = stdout or sys.stdout
        print(BANNER, file=stdout, end="")
        buffer: List[str] = []
        while True:
            prompt = CONTINUE if buffer else PROMPT
            print(prompt, file=stdout, end="", flush=True)
            line = stdin.readline()
            if line == "":
                print(file=stdout)
                return 0
            line = line.rstrip("\n")
            if not buffer and line.startswith(":"):
                if self.handle_directive(line, stdout):
                    return 0
                continue
            buffer.append(line)
            pending = "\n".join(buffer)
            if not pending.strip():
                buffer = []
                continue
            if not is_complete(pending):
                continue
            buffer = []
            try:
                print(render(self.meta.execute(pending)), file=stdout)
            except Exception as error:  # noqa: BLE001 - REPL surface
                print(f"error: {type(error).__name__}: {error}", file=stdout)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="junicon", description="Interactive Junicon-in-Python."
    )
    parser.add_argument(
        "file", nargs="?", help="mixed-language file to run instead of a REPL"
    )
    parser.add_argument(
        "--lang",
        default="junicon",
        help="default top-level language (junicon or python)",
    )
    args = parser.parse_args(argv)
    repl = Repl(default_lang=args.lang)
    if args.file:
        repl.meta.execute_file(args.file)
        return 0
    return repl.run()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
