"""The meta-interpreter — annotation-driven dispatch (paper Section VI).

"The outermost instantiation of the harness is a meta-interpreter that
detects the embedded language and its context using scoped annotations,
and dispatches statements to the appropriate sub-interpreter for
transformation."

:class:`MetaInterpreter` accepts mixed input: text whose top level is in a
*default language* (python or junicon) with scoped annotations switching
language for delimited regions.  Junicon regions cascade through
transformation into the Python engine; Python regions go to the engine
directly.  All stages share one namespace, so definitions made in either
language are visible to the other — the interoperability story of
Section IV.
"""

from __future__ import annotations

from typing import Any, Dict

from ..errors import AnnotationError
from ..lang.annotations import find_annotations
from ..lang.embed import JUNICON_LANGS, HOST_LANGS, transform_source
from ..lang.interp import JuniconInterpreter
from .engine import PythonEngine


class MetaInterpreter:
    """Cascade: scoped annotations → sub-interpreter → script engine."""

    def __init__(
        self,
        default_lang: str = "junicon",
        namespace: Dict[str, Any] | None = None,
    ) -> None:
        if default_lang not in JUNICON_LANGS | HOST_LANGS:
            raise AnnotationError(f"unknown default language {default_lang!r}")
        self.default_lang = default_lang
        self.engine = PythonEngine(namespace)
        self.junicon = JuniconInterpreter(self.engine.namespace)

    @property
    def namespace(self) -> Dict[str, Any]:
        return self.engine.namespace

    def execute(self, source: str) -> Any:
        """Interpret mixed-language input; returns the last region's value.

        Top-level text is in :attr:`default_lang`; ``@<script lang=…>``
        regions switch language.  For a Junicon default, host regions are
        executed natively between the surrounding Junicon pieces.
        """
        annotations = [
            a for a in find_annotations(source) if a.tag == "script"
        ]
        if not annotations:
            return self._run_region(self.default_lang, source)
        result: Any = None
        cursor = 0
        for annotation in annotations:
            between = source[cursor: annotation.start]
            if between.strip():
                result = self._run_region(self.default_lang, between)
            lang = annotation.lang or "python"
            result = self._run_region(lang, annotation.body(source))
            cursor = annotation.end
        tail = source[cursor:]
        if tail.strip():
            result = self._run_region(self.default_lang, tail)
        return result

    def _run_region(self, lang: str, body: str) -> Any:
        if lang in JUNICON_LANGS:
            return self.junicon.run(body)
        if lang in HOST_LANGS:
            return self.engine.execute(body)
        raise AnnotationError(f"no interpreter for language {lang!r}")

    def execute_file(self, path: str) -> Any:
        """Interpret a mixed host-Python file (transform then exec)."""
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        code = transform_source(source)
        exec(compile(code, path, "exec"), self.engine.namespace)
        return None
