"""Script engines — the terminal stages of the cascading harness (VI).

The paper's harness "provides a cascading set of interpreters that at each
stage transforms its input and either executes it on a script engine, such
as for Groovy, or chooses another interpreter to pass to for further
transformation."  An engine here is anything that can execute host code
over a persistent namespace; :class:`PythonEngine` plays Groovy's role.
"""

from __future__ import annotations

import builtins
from typing import Any, Dict, Protocol


class ScriptEngine(Protocol):
    """What the harness needs from a terminal execution engine."""

    name: str

    def execute(self, code: str) -> Any:
        """Run *code*, returning the value of a final expression (if the
        input is a single expression) or None."""

    @property
    def namespace(self) -> Dict[str, Any]:
        ...


class PythonEngine:
    """Execute Python source over a persistent namespace."""

    name = "python"

    def __init__(self, namespace: Dict[str, Any] | None = None) -> None:
        self._namespace = namespace if namespace is not None else {}
        self._namespace.setdefault("__builtins__", builtins)

    @property
    def namespace(self) -> Dict[str, Any]:
        return self._namespace

    def execute(self, code: str) -> Any:
        """Evaluate an expression when possible, else exec statements."""
        try:
            compiled = compile(code, "<harness>", "eval")
        except SyntaxError:
            exec(compile(code, "<harness>", "exec"), self._namespace)
            return None
        return eval(compiled, self._namespace)
