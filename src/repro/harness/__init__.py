"""The cascading interpreter harness (paper Section VI): script engines,
the annotation-driven meta-interpreter, and the interactive REPL."""

from .engine import PythonEngine, ScriptEngine
from .meta import MetaInterpreter
from .repl import Repl, render

__all__ = ["MetaInterpreter", "PythonEngine", "Repl", "ScriptEngine", "render"]
