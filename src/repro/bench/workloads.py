"""Word-count workloads for the Figure 6 evaluation (paper Section VII).

The paper's program "takes lines of text, and computes a hash of the lines
by splitting each line into words, converting the words into numbers
[base-36 BigInteger], taking their square root, and then summing the
result".  Two weights of hash function are benchmarked:

* **lightweight** — ``int(word, 36)`` and ``sqrt`` (the Figure 3 bodies);
* **heavyweight** — "far more heavyweight and computationally intensive
  hash functions, by a factor of roughly 80, achieved using trigonometry
  and prime number functions of Java's Math and BigInteger libraries" —
  reproduced with a trigonometric iteration and a Miller-Rabin
  probable-prime search over big integers.

Both suites use arbitrary-precision arithmetic — implicit in Python ints,
as it is in Unicon.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List

_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


def generate_lines(
    num_lines: int = 200,
    words_per_line: int = 10,
    word_length: int = 4,
    seed: int = 36,
) -> List[str]:
    """A deterministic corpus of base-36 words (the benchmark input)."""
    rng = random.Random(seed)
    lines = []
    for _ in range(num_lines):
        words = [
            "".join(rng.choice(_ALPHABET) for _ in range(word_length))
            for _ in range(words_per_line)
        ]
        lines.append(" ".join(words))
    return lines


# ---------------------------------------------------------------------------
# Lightweight hash components (Figure 3's wordToNumber / hashNumber).
# ---------------------------------------------------------------------------


def word_to_number_light(word: str) -> int:
    """``new BigInteger((String) word, 36)``."""
    return int(str(word), 36)


def hash_number_light(number: int) -> float:
    """``Math.sqrt(word.doubleValue())``."""
    return math.sqrt(float(number))


# ---------------------------------------------------------------------------
# Heavyweight hash components (~80x the light weight).
# ---------------------------------------------------------------------------

#: Trig iterations / prime-search width chosen so heavy/light compute cost
#: lands near the paper's "factor of roughly 80" (see calibrate_weight()).
TRIG_ROUNDS = 12
PRIME_SEARCH_SPAN = 2


def _is_probable_prime(n: int, rounds: int = 8) -> bool:
    """Miller-Rabin over a fixed witness schedule (deterministic here)."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in (2, 3, 5, 7, 11, 13, 17, 19)[:rounds]:
        x = pow(witness, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def word_to_number_heavy(word: str) -> int:
    """Base-36 conversion followed by a probable-prime search upward
    (the ``BigInteger.nextProbablePrime`` flavour of extra weight)."""
    n = int(str(word), 36)
    # Work over a genuinely big integer so the arithmetic is bignum-bound.
    candidate = (n + 3) * (10 ** 9) + 1
    for _ in range(PRIME_SEARCH_SPAN):
        if _is_probable_prime(candidate):
            break
        candidate += 2
    return candidate


def hash_number_heavy(number: int) -> float:
    """Square root plus a trigonometric smoothing loop (``Math`` weight)."""
    x = math.sqrt(float(number % (10 ** 12)))
    acc = 0.0
    for i in range(1, TRIG_ROUNDS + 1):
        acc += math.sin(x / i) * math.cos(x / (i + 1)) + math.atan(x / i)
    return math.sqrt(abs(acc) + x)


# ---------------------------------------------------------------------------
# Weight bundles.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Weight:
    """One weight class: the pair of hash components plus bookkeeping."""

    name: str
    word_to_number: Callable[[str], int]
    hash_number: Callable[[int], float]


LIGHT = Weight("light", word_to_number_light, hash_number_light)
HEAVY = Weight("heavy", word_to_number_heavy, hash_number_heavy)

WEIGHTS = {"light": LIGHT, "heavy": HEAVY}


def expected_total(lines: List[str], weight: Weight) -> float:
    """The reference answer every variant must reproduce."""
    return sum(
        weight.hash_number(weight.word_to_number(word))
        for line in lines
        for word in line.split()
    )


def calibrate_weight(samples: int = 2000, seed: int = 7) -> float:
    """Measure the heavy/light cost ratio (the paper's "factor of ~80")."""
    import time

    rng = random.Random(seed)
    words = [
        "".join(rng.choice(_ALPHABET) for _ in range(4)) for _ in range(samples)
    ]
    start = time.perf_counter()
    for word in words:
        hash_number_light(word_to_number_light(word))
    light_time = time.perf_counter() - start
    start = time.perf_counter()
    for word in words:
        hash_number_heavy(word_to_number_heavy(word))
    heavy_time = time.perf_counter() - start
    return heavy_time / light_time if light_time else float("inf")
