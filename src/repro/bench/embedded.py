"""The embedded (Junicon) suite — the paper's Figure 3/4 programs.

Section VII: "The suite of embedded Unicon programs consisted of a
sequential word-count, a pipeline-parallel word-count that split the hash
function into two tasks, a map-reduce word-count that spread the hash
function and its summation reduction over chunks of data, and a
data-parallel word-count that only differed in performing summation over
the sequence returned from flattening the chunks."

The programs below are real Junicon source, compiled through the
transformation pipeline (parse → normalize → transform → exec), exactly
as an embedded program would be.  The host supplies the corpus and the
hash components through globals (``LINES``, ``WORD_TO_NUMBER``,
``HASH_NUMBER``, ``CHUNK_SIZE``), mirroring Figure 3's mixed-language
calls onto Java methods.

Dialect note: where Figure 4 writes ``chunk(<>s)`` over a method
reference, this dialect reifies the *invocation*, ``chunk(<>s())`` — our
``<>`` lifts an expression, and Icon-faithful invocation delegates
generation (DESIGN.md, "Host-language substitution").
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..lang.interp import JuniconInterpreter
from .workloads import Weight

#: The Figure 3 word-count methods plus the four run variants, in Junicon.
JUNICON_PROGRAM = r"""
def readLines() { suspend ! LINES; }

def splitWords(line) { suspend ! line::split(); }

def hashWords(line) {
    suspend HASH_NUMBER(WORD_TO_NUMBER(splitWords(line)));
}

def sumHash(sofar, h) { return sofar + h; }

# -- sequential: the generator; the host sums (Figure 3's for-loop) ----------
def seqGen() {
    suspend hashWords(readLines());
}

# -- pipeline: the hash function split into two threaded tasks ---------------
def pipeGen() {
    suspend HASH_NUMBER( ! |> WORD_TO_NUMBER(splitWords(readLines())) );
}

# -- Figure 4: DataParallel built from concurrent generators -----------------
def chunk(e) {
    local c;
    c = [];
    while put(c, @e) do {
        if *c >= CHUNK_SIZE then { suspend c; c = []; };
    };
    if *c > 0 then return c;
}

def mapReduce(f, s, r, i) {
    local c, t, tasks;
    tasks = [];
    every c = chunk(<>s()) do {
        t = |> { local x; x = i; every x = r(x, f(!c)); x };
        tasks::append(t);
    };
    suspend ! (! tasks);
}

def mapFlat(f, s) {
    local c, t, tasks;
    tasks = [];
    every c = chunk(<>s()) do {
        t = |> f(!c);
        tasks::append(t);
    };
    suspend ! (! tasks);
}

def mapReduceGen() {
    suspend mapReduce(hashWords, readLines, sumHash, 0.0);
}

def dataParallelGen() {
    suspend mapFlat(hashWords, readLines);
}
"""


class EmbeddedSuite:
    """The compiled Junicon word-count programs, bound to one workload."""

    def __init__(
        self,
        lines: List[str],
        weight: Weight,
        chunk_size: int = 250,
    ) -> None:
        self.interp = JuniconInterpreter()
        self.interp.load(JUNICON_PROGRAM)
        self.namespace: Dict[str, Any] = self.interp.namespace
        self.configure(lines, weight, chunk_size)

    def configure(
        self, lines: List[str], weight: Weight, chunk_size: int | None = None
    ) -> None:
        """Rebind the workload without recompiling the programs."""
        self.namespace["LINES"] = list(lines)
        self.namespace["WORD_TO_NUMBER"] = weight.word_to_number
        self.namespace["HASH_NUMBER"] = weight.hash_number
        if chunk_size is not None:
            self.namespace["CHUNK_SIZE"] = chunk_size

    def _run(self, name: str) -> float:
        """Iterate the embedded generator from the host and sum natively —
        exactly Figure 3's ``for (Object i : @<script …>) total += i``."""
        total = 0.0
        for value in self.namespace[name]():
            total += value
        return total

    def sequential(self) -> float:
        return self._run("seqGen")

    def pipeline(self) -> float:
        return self._run("pipeGen")

    def mapreduce(self) -> float:
        return self._run("mapReduceGen")

    def dataparallel(self) -> float:
        return self._run("dataParallelGen")

    def variant(self, name: str):
        """The runner for a Figure-6 variant name."""
        return {
            "Sequential": self.sequential,
            "Pipeline": self.pipeline,
            "DataParallel": self.dataparallel,
            "MapReduce": self.mapreduce,
        }[name]


EMBEDDED_VARIANTS = ("Sequential", "Pipeline", "DataParallel", "MapReduce")
