"""Measurement harness — the JMH analogue (paper Section VII).

"The Java Microbenchmarking Harness (JMH) was used to measure the
performance of both suites ... with 20 warmup iterations and 20 test
iterations."  :func:`measure` reproduces the protocol: warmup passes,
timed passes, mean and a Student-t 99% confidence interval.
:func:`run_figure6` executes the full 8-variant × weight matrix and
normalizes "with respect to that of the Java parallel stream benchmark"
— here the native MapReduce — per weight class.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

try:
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - scipy is an install requirement
    _scipy_stats = None

from .workloads import WEIGHTS, Weight, expected_total, generate_lines
from .native import NATIVE_VARIANTS
from .embedded import EMBEDDED_VARIANTS, EmbeddedSuite


def t_critical(confidence: float, dof: int) -> float:
    """Two-sided Student-t critical value (scipy, with a table fallback)."""
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    # Conservative fallback: 99% two-sided values for small dof.
    table = {1: 63.66, 2: 9.92, 3: 5.84, 4: 4.60, 5: 4.03, 10: 3.17, 19: 2.86}
    best = max(k for k in table if k <= max(dof, 1))
    return table[best]


@dataclass
class Measurement:
    """Timing result for one benchmark variant."""

    label: str
    times: List[float] = field(default_factory=list)
    result: float = 0.0

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.times) if len(self.times) > 1 else 0.0

    def ci(self, confidence: float = 0.99) -> float:
        """Half-width of the two-sided confidence interval on the mean."""
        n = len(self.times)
        if n < 2:
            return 0.0
        return t_critical(confidence, n - 1) * self.stdev / math.sqrt(n)


def measure(
    fn: Callable[[], float],
    label: str = "",
    warmup: int = 20,
    iterations: int = 20,
) -> Measurement:
    """Run *fn* with the paper's 20+20 protocol and collect timings."""
    result = 0.0
    for _ in range(warmup):
        result = fn()
    measurement = Measurement(label=label or getattr(fn, "__name__", "bench"))
    for _ in range(iterations):
        start = time.perf_counter()
        result = fn()
        measurement.times.append(time.perf_counter() - start)
    measurement.result = float(result)
    return measurement


@dataclass
class Figure6Row:
    """One bar of Figure 6."""

    suite: str          # "Junicon" (embedded) or "Native"
    variant: str        # Sequential / Pipeline / DataParallel / MapReduce
    weight: str         # light / heavy
    mean: float
    ci99: float
    normalized: float   # mean / native-MapReduce mean for the same weight

    def key(self) -> str:
        return f"{self.weight}/{self.suite}/{self.variant}"


@dataclass
class Figure6Result:
    rows: List[Figure6Row]
    corpus_lines: int
    warmup: int
    iterations: int
    chunk_size: int

    def row(self, weight: str, suite: str, variant: str) -> Figure6Row:
        for row in self.rows:
            if (row.weight, row.suite, row.variant) == (weight, suite, variant):
                return row
        raise KeyError((weight, suite, variant))

    # -- the paper's three claims (checked by EXPERIMENTS.md / tests) --------

    def overhead_ratios(self, weight: str) -> Dict[str, float]:
        """Junicon/native mean ratio per variant (claim C1: < 10x)."""
        out = {}
        for variant in EMBEDDED_VARIANTS:
            embedded = self.row(weight, "Junicon", variant).mean
            native = self.row(weight, "Native", variant).mean
            out[variant] = embedded / native
        return out

    def ordering(self, weight: str, suite: str) -> List[str]:
        """Variants sorted fastest-first within one suite (claim C3)."""
        rows = [
            self.row(weight, suite, variant) for variant in EMBEDDED_VARIANTS
        ]
        return [row.variant for row in sorted(rows, key=lambda r: r.mean)]


def run_figure6(
    weights: Sequence[str] = ("light", "heavy"),
    num_lines: int = 60,
    words_per_line: int = 8,
    warmup: int = 20,
    iterations: int = 20,
    chunk_size: int = 100,
    verify: bool = True,
) -> Figure6Result:
    """Measure all Figure 6 bars.

    Defaults are scaled down from the paper's testbed so the full matrix
    finishes in minutes on a laptop; pass a larger corpus for longer runs.
    """
    lines = generate_lines(num_lines=num_lines, words_per_line=words_per_line)
    rows: List[Figure6Row] = []
    for weight_name in weights:
        weight: Weight = WEIGHTS[weight_name]
        reference = expected_total(lines, weight) if verify else None
        measurements: Dict[str, Measurement] = {}

        for variant, fn in NATIVE_VARIANTS.items():
            label = f"Native/{variant}/{weight_name}"
            measurements[f"Native/{variant}"] = measure(
                lambda fn=fn: fn(lines, weight),
                label,
                warmup=warmup,
                iterations=iterations,
            )

        suite = EmbeddedSuite(lines, weight, chunk_size=chunk_size)
        for variant in EMBEDDED_VARIANTS:
            label = f"Junicon/{variant}/{weight_name}"
            measurements[f"Junicon/{variant}"] = measure(
                suite.variant(variant), label, warmup=warmup, iterations=iterations
            )

        if reference is not None:
            for key, measurement in measurements.items():
                if not math.isclose(measurement.result, reference, rel_tol=1e-9):
                    raise AssertionError(
                        f"{key} computed {measurement.result!r}, "
                        f"expected {reference!r}"
                    )

        baseline = measurements["Native/MapReduce"].mean
        for key, measurement in measurements.items():
            suite_name, variant = key.split("/")
            rows.append(
                Figure6Row(
                    suite=suite_name,
                    variant=variant,
                    weight=weight_name,
                    mean=measurement.mean,
                    ci99=measurement.ci(0.99),
                    normalized=measurement.mean / baseline,
                )
            )
    return Figure6Result(
        rows=rows,
        corpus_lines=num_lines,
        warmup=warmup,
        iterations=iterations,
        chunk_size=chunk_size,
    )
