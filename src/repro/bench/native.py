"""The native suite — Python standing in for the paper's Java programs.

Section VII: "The suite of Java programs similarly consisted of a
sequential word-count, a pipelined version built using BlockingQueues over
two threads, a parallel stream-based version that implemented map-reduce,
and a data-parallel version that was also stream-based but that split out
the reduction."

Each variant takes the corpus and a :class:`~repro.bench.workloads.Weight`
and returns the summed hash — all four must agree with
:func:`~repro.bench.workloads.expected_total`.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List

from .workloads import Weight

#: Chunk size shared with the embedded suite (Figure 4 uses 1000 words).
CHUNK_SIZE = 250
#: Queue capacity for the pipelined variant (bounded, as the paper's
#: BlockingQueues are).
QUEUE_CAPACITY = 1024
_SENTINEL = object()


def native_sequential(lines: List[str], weight: Weight) -> float:
    """Plain single-threaded generator-expression word count."""
    word_to_number = weight.word_to_number
    hash_number = weight.hash_number
    return sum(
        hash_number(word_to_number(word)) for line in lines for word in line.split()
    )


def native_pipeline(lines: List[str], weight: Weight) -> float:
    """Two stages over blocking queues: the hash function split in half.

    Stage 1 (worker thread): split lines, convert words to numbers.
    Stage 2 (main thread): hash and sum.
    """
    word_to_number = weight.word_to_number
    hash_number = weight.hash_number
    numbers: queue.Queue = queue.Queue(QUEUE_CAPACITY)

    def stage_one() -> None:
        try:
            for line in lines:
                for word in line.split():
                    numbers.put(word_to_number(word))
        finally:
            numbers.put(_SENTINEL)

    worker = threading.Thread(target=stage_one, name="native-pipeline", daemon=True)
    worker.start()
    total = 0.0
    while True:
        item = numbers.get()
        if item is _SENTINEL:
            break
        total += hash_number(item)
    worker.join()
    return total


def _chunks(lines: List[str], size: int) -> List[List[str]]:
    """Word chunks of at most *size* (the map-reduce partitioning)."""
    words: List[str] = []
    out: List[List[str]] = []
    for line in lines:
        for word in line.split():
            words.append(word)
            if len(words) >= size:
                out.append(words)
                words = []
    if words:
        out.append(words)
    return out


def native_mapreduce(
    lines: List[str],
    weight: Weight,
    chunk_size: int = CHUNK_SIZE,
    max_workers: int | None = None,
) -> float:
    """Thread-pool map-reduce: each chunk maps *and reduces* locally."""
    word_to_number = weight.word_to_number
    hash_number = weight.hash_number

    def task(chunk: List[str]) -> float:
        subtotal = 0.0
        for word in chunk:
            subtotal += hash_number(word_to_number(word))
        return subtotal

    chunks = _chunks(lines, chunk_size)
    with ThreadPoolExecutor(max_workers=max_workers or 4) as pool:
        return sum(pool.map(task, chunks))


def native_dataparallel(
    lines: List[str],
    weight: Weight,
    chunk_size: int = CHUNK_SIZE,
    max_workers: int | None = None,
) -> float:
    """Data-parallel with the reduction split out: chunks map in parallel,
    the flattened sequence is summed serially by the caller."""
    word_to_number = weight.word_to_number
    hash_number = weight.hash_number

    def task(chunk: List[str]) -> List[float]:
        return [hash_number(word_to_number(word)) for word in chunk]

    chunks = _chunks(lines, chunk_size)
    total = 0.0
    with ThreadPoolExecutor(max_workers=max_workers or 4) as pool:
        for mapped in pool.map(task, chunks):
            for value in mapped:
                total += value
    return total


NATIVE_VARIANTS = {
    "Sequential": native_sequential,
    "Pipeline": native_pipeline,
    "DataParallel": native_dataparallel,
    "MapReduce": native_mapreduce,
}
