"""Figure 6 report generator — regenerates the paper's evaluation figure.

``python -m repro.bench.report`` (or the ``repro-bench`` console script)
measures the 8-variant × 2-weight matrix, prints a table and a log-scale
ASCII rendering of Figure 6 (normalized execution time, whiskers elided
into a ±CI column), and checks the paper's three claims:

* **C1** — the embedded penalty is "well under an order of magnitude";
* **C2** — the relative overhead "significantly decreases" as the weight
  of the computational nodes increases;
* **C3** — the relative ordering among embedded variants is "roughly
  consistent" with the ordering among the native variants.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List

from .harness import Figure6Result, run_figure6
from .workloads import calibrate_weight


def _bar(normalized: float, width: int = 40, max_value: float = 100.0) -> str:
    """A log-scale bar from 0.1x to max_value (Figure 6 is log-scale)."""
    if normalized <= 0:
        return ""
    low, high = math.log10(0.1), math.log10(max_value)
    frac = (math.log10(normalized) - low) / (high - low)
    return "#" * max(1, int(frac * width))


def format_report(result: Figure6Result, out=None) -> str:
    lines: List[str] = []
    lines.append(
        f"Figure 6 — normalized execution time "
        f"(corpus={result.corpus_lines} lines, "
        f"{result.warmup} warmup + {result.iterations} test iterations, "
        f"chunk={result.chunk_size})"
    )
    lines.append(
        "Normalization baseline per weight class: Native/MapReduce "
        "(the paper's Java parallel stream benchmark)."
    )
    weights = sorted({row.weight for row in result.rows}, reverse=True)
    for weight in weights:
        lines.append("")
        lines.append(f"=== {weight}weight ===")
        lines.append(
            f"{'suite':<8} {'variant':<13} {'mean(s)':>10} {'±CI99':>10} "
            f"{'norm':>8}  bar (log scale)"
        )
        for suite in ("Junicon", "Native"):
            for variant in ("Sequential", "Pipeline", "DataParallel", "MapReduce"):
                row = result.row(weight, suite, variant)
                lines.append(
                    f"{suite:<8} {variant:<13} {row.mean:>10.4f} "
                    f"{row.ci99:>10.4f} {row.normalized:>8.2f}  "
                    f"{_bar(row.normalized)}"
                )
        ratios = result.overhead_ratios(weight)
        lines.append(
            "overhead (Junicon/native): "
            + ", ".join(f"{k}={v:.1f}x" for k, v in ratios.items())
        )
    lines.append("")
    lines.append("--- claims ---")
    claims = check_claims(result)
    for claim, (ok, detail) in claims.items():
        lines.append(f"{claim}: {'PASS' if ok else 'FAIL'} — {detail}")
    text = "\n".join(lines)
    if out is not None:
        print(text, file=out)
    return text


def check_claims(result: Figure6Result) -> dict:
    """Evaluate the paper's claims C1-C3 against the measured rows."""
    claims = {}
    weights = sorted({row.weight for row in result.rows})

    # C1: embedded penalty under an order of magnitude — reported per
    # weight class.  On this substrate the light half is expected to
    # exceed 10x for some bars: CPython's native baseline is C-optimized
    # (int()/sqrt under a thin loop) while the embedded suite is a pure-
    # Python iterator runtime, and the GIL denies the embedded parallel
    # variants the multi-core recovery the JVM gave the paper.  See
    # EXPERIMENTS.md, "Threats".
    for weight in weights:
        worst = max(result.overhead_ratios(weight).values())
        claims[f"C1/{weight} (<10x embedded penalty)"] = (
            worst < 10.0,
            f"worst Junicon/native ratio = {worst:.2f}x",
        )

    # C2: overhead shrinks from light to heavy.
    if {"light", "heavy"} <= set(weights):
        light = result.overhead_ratios("light")
        heavy = result.overhead_ratios("heavy")
        shrunk = [v for v in light if heavy[v] < light[v]]
        mean_light = sum(light.values()) / len(light)
        mean_heavy = sum(heavy.values()) / len(heavy)
        claims["C2 (overhead shrinks with weight)"] = (
            mean_heavy < mean_light and len(shrunk) >= 3,
            f"mean ratio light={mean_light:.2f}x → heavy={mean_heavy:.2f}x; "
            f"shrank for {len(shrunk)}/4 variants",
        )

    # C3: embedded ordering tracks native ordering (rank correlation).
    agreements = []
    for weight in weights:
        embedded = result.ordering(weight, "Junicon")
        native = result.ordering(weight, "Native")
        # Count pairwise order agreements (Kendall-style).
        agree = total = 0
        for i in range(len(embedded)):
            for j in range(i + 1, len(embedded)):
                total += 1
                pair = (embedded[i], embedded[j])
                if native.index(pair[0]) < native.index(pair[1]):
                    agree += 1
        agreements.append(agree / total)
    mean_agreement = sum(agreements) / len(agreements)
    claims["C3 (ordering consistent)"] = (
        mean_agreement >= 0.5,
        f"pairwise order agreement = {mean_agreement:.0%}",
    )
    return claims


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description="Regenerate the paper's Figure 6."
    )
    parser.add_argument(
        "--weight",
        choices=["light", "heavy", "both"],
        default="both",
        help="which half of Figure 6 to run",
    )
    parser.add_argument("--lines", type=int, default=60, help="corpus size")
    parser.add_argument("--words", type=int, default=8, help="words per line")
    parser.add_argument("--warmup", type=int, default=20)
    parser.add_argument("--iterations", type=int, default=20)
    parser.add_argument("--chunk", type=int, default=100)
    parser.add_argument(
        "--calibrate",
        action="store_true",
        help="also print the measured heavy/light weight factor",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the rows and claim results as JSON",
    )
    args = parser.parse_args(argv)
    if args.calibrate:
        print(f"heavy/light weight factor: {calibrate_weight():.1f}x "
              f"(paper: ~80x)")
    weights = ("light", "heavy") if args.weight == "both" else (args.weight,)
    result = run_figure6(
        weights=weights,
        num_lines=args.lines,
        words_per_line=args.words,
        warmup=args.warmup,
        iterations=args.iterations,
        chunk_size=args.chunk,
    )
    format_report(result, out=sys.stdout)
    if args.json:
        write_json(result, args.json)
    return 0


def write_json(result: Figure6Result, path: str) -> None:
    """Persist the measured rows and claim outcomes as JSON."""
    import dataclasses
    import json

    payload = {
        "protocol": {
            "corpus_lines": result.corpus_lines,
            "warmup": result.warmup,
            "iterations": result.iterations,
            "chunk_size": result.chunk_size,
        },
        "rows": [dataclasses.asdict(row) for row in result.rows],
        "claims": {
            claim: {"passed": passed, "detail": detail}
            for claim, (passed, detail) in check_claims(result).items()
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
