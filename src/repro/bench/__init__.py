"""Benchmark suites and measurement harness for the Figure 6 evaluation.

``python -m repro.bench.report`` regenerates the paper's Figure 6 (both
weight classes, normalized to the native map-reduce baseline, 99% CIs)
and checks the paper's claims C1–C3.  The pytest-benchmark front-ends in
``benchmarks/`` drive the same code per-bar.
"""

from .workloads import (
    HEAVY,
    LIGHT,
    WEIGHTS,
    Weight,
    calibrate_weight,
    expected_total,
    generate_lines,
)
from .native import (
    NATIVE_VARIANTS,
    native_dataparallel,
    native_mapreduce,
    native_pipeline,
    native_sequential,
)
from .embedded import EMBEDDED_VARIANTS, JUNICON_PROGRAM, EmbeddedSuite
from .harness import Figure6Result, Figure6Row, Measurement, measure, run_figure6
from .report import check_claims, format_report

__all__ = [
    "EMBEDDED_VARIANTS",
    "EmbeddedSuite",
    "Figure6Result",
    "Figure6Row",
    "HEAVY",
    "JUNICON_PROGRAM",
    "LIGHT",
    "Measurement",
    "NATIVE_VARIANTS",
    "WEIGHTS",
    "Weight",
    "calibrate_weight",
    "check_claims",
    "expected_total",
    "format_report",
    "generate_lines",
    "measure",
    "native_dataparallel",
    "native_mapreduce",
    "native_pipeline",
    "native_sequential",
    "run_figure6",
]
