"""Monitoring events.

Each observable step of goal-directed evaluation maps onto one event kind,
mirroring Icon's classic monitoring vocabulary (as in Jeffery's Alamo/MT
Icon event model, which the paper's future-work points toward):

=========  =============================================================
enter      a node begins (or restarts) a pass of iteration
produce    a node yields a result (success)
suspend    a ``suspend``-ed result passes through the node (envelope)
resume     a node is re-entered after having produced (backtracking)
fail       a node's pass ends with no further result
=========  =============================================================
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any


class EventKind:
    ENTER = "enter"
    PRODUCE = "produce"
    SUSPEND = "suspend"
    RESUME = "resume"
    FAIL = "fail"

    # Pipe lifecycle transitions (the supervision layer's vocabulary):
    # a worker starting, a supervised restart, a cancellation, a deadline
    # expiry, and a retry budget running out.
    START = "start"
    RETRY = "retry"
    CANCEL = "cancel"
    TIMEOUT = "timeout"
    EXHAUST = "exhaust"

    # Batched transport: one event per producer-side flush, carrying
    # ``{"size": <elements moved>, "queued": <channel occupancy after>}``.
    BATCH = "batch"

    # Process-backed pipes (the crash-isolation tier): a child process
    # spawned for a worker (``{"pid": ...}``), the watchdog declaring a
    # worker lost (``{"reason": ..., "exitcode": ...}``), and the runtime
    # degrading a process request to the thread backend (value = reason).
    SPAWN = "spawn"
    WORKER_LOST = "worker-lost"
    DEGRADED = "degraded"

    # Remote pipes (the network tier): a client connecting to a
    # generator server (``{"address": ...}``), the server opening a
    # session for a request (``{"peer": ..., "request": ..., "name": ...}``),
    # and the client-side watchdog declaring the connection lost
    # (``{"reason": ..., "address": ...}``).
    NET_CONNECT = "net-connect"
    NET_SESSION = "net-session"
    NET_LOST = "net-lost"

    # Deadline propagation (the overload-protection layer): a budget
    # shipped across a process/socket boundary as remaining seconds
    # (``{"remaining": ..., "transport": "process" | "remote"}``) and a
    # budget running out (``{"where": "start" | "take" | "producer" |
    # "session", "remaining": 0.0}``) — ``start`` means the spawn was
    # short-circuited before any child forked or socket dialed.
    DEADLINE_PROPAGATED = "deadline-propagated"
    DEADLINE_EXPIRED = "deadline-expired"

    # Admission control and the client-side circuit breaker: a server
    # shedding a connection at capacity (``{"active": ..., "max_sessions":
    # ..., "retry_after": ...}``), the breaker tripping open for an
    # address (``{"address": ..., "failures": ..., "retry_after": ...}``),
    # a half-open probe being admitted, and the breaker closing again
    # after a healthy stream.
    SHED = "shed"
    BREAKER_OPEN = "breaker-open"
    BREAKER_PROBE = "breaker-probe"
    BREAKER_CLOSE = "breaker-close"

    # The cluster tier (replicated generator servers): a lost stream
    # reconnecting to a *different* replica (``{"key": ..., "from": ...,
    # "to": ...}``), routing passing over a candidate replica without a
    # session (``{"key": ..., "skipped": ..., "reason": ...}``), and a
    # DataParallel chunk stranded on a dead/shed replica being re-run
    # (``{"key": ..., "delivered": ..., "reason": ..., "fallback": ...}``).
    FAILOVER = "failover"
    REROUTE = "reroute"
    STEAL = "steal"

    # Live cluster membership: an address joining a pool's fleet
    # (``{"address": ..., "weight": ..., "source": "api" | "registry" |
    # "gossip" | "chaos"}``), an address leaving it (``{"address": ...,
    # "source": ...}``), and the health prober's verdict transitions —
    # a member probed back alive (``{"address": ...}``) and a member
    # declared dead after consecutive missed pings (``{"address": ...,
    # "reason": ..., "misses": ...}``).  Join/leave change *membership*;
    # up/down change *routability* of a member that stays in the fleet.
    MEMBER_JOIN = "member-join"
    MEMBER_LEAVE = "member-leave"
    MEMBER_UP = "member-up"
    MEMBER_DOWN = "member-down"

    # The async execution tier: a pipe body spawned as a task on the
    # shared event loop (``{"transport": "loop", "name": ...}``) or an
    # event-loop server admitting a session
    # (``{"peer": ..., "name": ..., "server": ...}``) — one kind for
    # both sides, distinguished by the payload, mirroring how
    # NET_CONNECT/NET_SESSION split the threaded tier.
    ASYNC_SESSION = "async-session"

    # The optimizing compile target: one event per translated unit
    # (``{"optimized": bool, "lowered": [shape, ...], "fallbacks":
    # [shape, ...]}``) — which normalized shapes became native Python
    # generators and which deferred to the interpreted runtime.
    COMPILE = "compile"

    ITERATION = (ENTER, PRODUCE, SUSPEND, RESUME, FAIL)
    LIFECYCLE = (
        START,
        RETRY,
        CANCEL,
        TIMEOUT,
        EXHAUST,
        BATCH,
        SPAWN,
        WORKER_LOST,
        DEGRADED,
        NET_CONNECT,
        NET_SESSION,
        NET_LOST,
        DEADLINE_PROPAGATED,
        DEADLINE_EXPIRED,
        SHED,
        BREAKER_OPEN,
        BREAKER_PROBE,
        BREAKER_CLOSE,
        FAILOVER,
        REROUTE,
        STEAL,
        MEMBER_JOIN,
        MEMBER_LEAVE,
        MEMBER_UP,
        MEMBER_DOWN,
        ASYNC_SESSION,
        COMPILE,
    )
    ALL = ITERATION + LIFECYCLE


_sequence = itertools.count(1)


@dataclass(frozen=True)
class Event:
    """One monitoring event: what happened, where, with which value."""

    kind: str
    node: str          # the wrapped node's label (class name or custom)
    depth: int         # nesting depth within the instrumented tree
    value: Any = None  # the produced/suspended value, if any
    seq: int = field(default_factory=lambda: next(_sequence))

    def __str__(self) -> str:
        indent = "  " * self.depth
        if self.kind in (EventKind.PRODUCE, EventKind.SUSPEND):
            return f"{indent}{self.node}: {self.kind} {self.value!r}"
        if self.kind in EventKind.LIFECYCLE and self.value is not None:
            return f"{indent}{self.node}: {self.kind} {self.value!r}"
        return f"{indent}{self.node}: {self.kind}"


# ---------------------------------------------------------------------------
# The lifecycle bus — where pipes and the supervision layer report
# start/retry/cancel/timeout/exhaust transitions.  Tracers (or any
# callable) subscribe to observe supervision decisions; with no
# subscribers, emission is a single truth test.
# ---------------------------------------------------------------------------

_lifecycle_sinks: list = []


def lifecycle_enabled() -> bool:
    """Cheap guard so the hot path can skip building Event objects."""
    return bool(_lifecycle_sinks)


def emit_lifecycle(event: Event) -> None:
    """Deliver *event* to every subscribed sink (exceptions propagate)."""
    for sink in tuple(_lifecycle_sinks):
        sink(event)


def add_lifecycle_sink(sink) -> None:
    _lifecycle_sinks.append(sink)


def remove_lifecycle_sink(sink) -> None:
    try:
        _lifecycle_sinks.remove(sink)
    except ValueError:
        pass


@contextmanager
def lifecycle_sink(sink):
    """Subscribe *sink* (any ``Event -> None`` callable) for a ``with`` block."""
    add_lifecycle_sink(sink)
    try:
        yield sink
    finally:
        remove_lifecycle_sink(sink)
