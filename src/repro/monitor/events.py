"""Monitoring events.

Each observable step of goal-directed evaluation maps onto one event kind,
mirroring Icon's classic monitoring vocabulary (as in Jeffery's Alamo/MT
Icon event model, which the paper's future-work points toward):

=========  =============================================================
enter      a node begins (or restarts) a pass of iteration
produce    a node yields a result (success)
suspend    a ``suspend``-ed result passes through the node (envelope)
resume     a node is re-entered after having produced (backtracking)
fail       a node's pass ends with no further result
=========  =============================================================
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any


class EventKind:
    ENTER = "enter"
    PRODUCE = "produce"
    SUSPEND = "suspend"
    RESUME = "resume"
    FAIL = "fail"

    ALL = (ENTER, PRODUCE, SUSPEND, RESUME, FAIL)


_sequence = itertools.count(1)


@dataclass(frozen=True)
class Event:
    """One monitoring event: what happened, where, with which value."""

    kind: str
    node: str          # the wrapped node's label (class name or custom)
    depth: int         # nesting depth within the instrumented tree
    value: Any = None  # the produced/suspended value, if any
    seq: int = field(default_factory=lambda: next(_sequence))

    def __str__(self) -> str:
        indent = "  " * self.depth
        if self.kind in (EventKind.PRODUCE, EventKind.SUSPEND):
            return f"{indent}{self.node}: {self.kind} {self.value!r}"
        return f"{indent}{self.node}: {self.kind}"
